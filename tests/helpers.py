"""Shared helpers for system-level tests: build a small deployment and
run transactions through it."""

from __future__ import annotations

from typing import List, Optional

from repro.net.topology import Topology, azure_topology
from repro.systems.base import Cluster, SystemConfig, TransactionSystem
from repro.systems.client import ClientDriver
from repro.txn.priority import Priority
from repro.txn.stats import StatsCollector
from repro.txn.transaction import TransactionSpec


def build_system(
    system: TransactionSystem,
    topology: Optional[Topology] = None,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    client_dcs: Optional[List[str]] = None,
):
    """Deploy ``system`` on a cluster with one client per datacenter."""
    cluster = Cluster(topology or azure_topology(), config or SystemConfig(), seed)
    system.setup(cluster)
    stats = StatsCollector()
    clients = []
    for dc in client_dcs or cluster.topology.datacenters:
        client = ClientDriver(
            cluster.sim,
            cluster.network,
            f"client-{dc}-{len(clients)}",
            dc,
            system,
            stats,
            clock=cluster.make_clock(f"client-{dc}-{len(clients)}"),
        )
        client.use_streams(cluster.streams)
        clients.append(client)
    return cluster, clients, stats


def rmw_spec(txn_id, keys, priority=Priority.LOW, marker="w"):
    """Read-modify-write over ``keys``: new value = old value + marker."""
    keys = tuple(keys)
    return TransactionSpec(
        txn_id=txn_id,
        read_keys=keys,
        write_keys=keys,
        priority=priority,
        compute_writes=lambda reads: {
            k: (reads[k] + marker)[-64:] for k in keys
        },
    )


def write_spec(txn_id, keys, value, priority=Priority.LOW):
    """Blind write of ``value`` to every key (still reads them — 2FI)."""
    keys = tuple(keys)
    return TransactionSpec(
        txn_id=txn_id,
        read_keys=keys,
        write_keys=keys,
        priority=priority,
        compute_writes=lambda reads: {k: value for k in keys},
    )


def read_spec(txn_id, keys, priority=Priority.LOW):
    keys = tuple(keys)
    return TransactionSpec(
        txn_id=txn_id,
        read_keys=keys,
        write_keys=(),
        priority=priority,
        compute_writes=lambda reads: {},
    )
