"""Tests for the 2PL lock table."""

from repro.store import LockMode, LockRequest, LockTable


def req(txn_id, shared=(), exclusive=(), timestamp=0.0, priority=0):
    modes = {k: LockMode.SHARED for k in shared}
    modes.update({k: LockMode.EXCLUSIVE for k in exclusive})
    return LockRequest(txn_id, modes, timestamp, priority)


def test_uncontended_exclusive_grant_is_immediate():
    table = LockTable()
    r = req("t1", exclusive=["a", "b"])
    future = table.request(r)
    assert future.done and future.value is True
    assert r.pending == set()


def test_shared_locks_coexist():
    table = LockTable()
    f1 = table.request(req("t1", shared=["k"], timestamp=1))
    f2 = table.request(req("t2", shared=["k"], timestamp=2))
    assert f1.done and f2.done


def test_exclusive_blocks_second_exclusive():
    table = LockTable()
    f1 = table.request(req("t1", exclusive=["k"], timestamp=1))
    f2 = table.request(req("t2", exclusive=["k"], timestamp=2))
    assert f1.done
    assert not f2.done
    table.release("t1")
    assert f2.done


def test_exclusive_blocks_shared_and_vice_versa():
    table = LockTable()
    table.request(req("writer", exclusive=["k"], timestamp=1))
    f_reader = table.request(req("reader", shared=["k"], timestamp=2))
    assert not f_reader.done
    table.release("writer")
    assert f_reader.done


def test_waiters_granted_in_timestamp_order():
    table = LockTable()
    table.request(req("holder", exclusive=["k"], timestamp=0))
    f_young = table.request(req("young", exclusive=["k"], timestamp=10))
    f_old = table.request(req("old", exclusive=["k"], timestamp=5))
    table.release("holder")
    assert f_old.done
    assert not f_young.done
    table.release("old")
    assert f_young.done


def test_no_barging_past_waiting_writer():
    table = LockTable()
    table.request(req("holder", shared=["k"], timestamp=0))
    f_writer = table.request(req("writer", exclusive=["k"], timestamp=1))
    f_reader = table.request(req("late-reader", shared=["k"], timestamp=2))
    # Reader queued behind the writer must not slip past it, even though
    # it is compatible with the current holder.
    assert not f_writer.done
    assert not f_reader.done
    table.release("holder")
    assert f_writer.done
    assert not f_reader.done


def test_partial_hold_while_waiting():
    table = LockTable()
    table.request(req("t1", exclusive=["b"], timestamp=0))
    r2 = req("t2", exclusive=["a", "b"], timestamp=1)
    f2 = table.request(r2)
    assert not f2.done
    assert r2.granted == {"a"}
    assert table.is_waiting("t2")
    table.release("t1")
    assert f2.done
    assert not table.is_waiting("t2")


def test_blockers_of_reports_conflicting_holders():
    table = LockTable()
    table.request(req("t1", exclusive=["k"], timestamp=0))
    table.request(req("t2", exclusive=["k"], timestamp=1))
    assert table.blockers_of("t2") == {"t1"}
    assert table.blockers_of("t1") == set()


def test_on_blocked_fires_with_blockers():
    events = []
    table = LockTable(on_blocked=lambda txn, key, who: events.append((txn, key, who)))
    table.request(req("t1", exclusive=["k"], timestamp=0))
    table.request(req("t2", exclusive=["k"], timestamp=1))
    assert ("t2", "k", {"t1"}) in events


def test_cancel_removes_waiter_and_releases_partial_holds():
    table = LockTable()
    table.request(req("t1", exclusive=["b"], timestamp=0))
    table.request(req("t2", exclusive=["a", "b"], timestamp=1))
    table.cancel("t2")
    # "a" is free again.
    f3 = table.request(req("t3", exclusive=["a"], timestamp=2))
    assert f3.done


def test_release_unknown_txn_is_noop():
    table = LockTable()
    table.release("ghost")


def test_duplicate_request_rejected():
    table = LockTable()
    table.request(req("t1", exclusive=["k"]))
    try:
        table.request(req("t1", exclusive=["j"]))
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_wound_wait_scenario_end_to_end():
    """Policy layer simulation: old wounds young, young waits for old."""
    table = LockTable()
    table.request(req("young", exclusive=["k"], timestamp=10))
    f_old = table.request(req("old", exclusive=["k"], timestamp=1))
    # Policy sees old blocked by young and wounds young:
    assert table.blockers_of("old") == {"young"}
    table.release("young")  # the wound resolves as a release
    assert f_old.done
