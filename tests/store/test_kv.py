"""Tests for the versioned KV store."""

from repro.store import KeyValueStore


def test_missing_key_materializes_default():
    store = KeyValueStore()
    v = store.read("user:1")
    assert v.version == 0
    assert v.writer is None
    assert len(v.value) == 64  # paper's 64-byte values


def test_default_factory_is_configurable():
    store = KeyValueStore(default_factory=lambda key: "zero")
    assert store.read("x").value == "zero"


def test_apply_bumps_version_and_records_writer():
    store = KeyValueStore()
    store.read("k")
    v1 = store.apply("k", "new-value", "txn-1")
    assert v1.version == 1
    assert v1.writer == "txn-1"
    assert store.read("k").value == "new-value"


def test_apply_to_untouched_key_starts_at_version_one():
    store = KeyValueStore()
    assert store.apply("fresh", "v", "t").version == 1


def test_apply_writes_batch():
    store = KeyValueStore()
    store.apply_writes({"a": "1", "b": "2"}, "txn-9")
    assert store.read("a").value == "1"
    assert store.read("b").writer == "txn-9"
    assert store.applied_writes == 2


def test_read_many():
    store = KeyValueStore()
    result = store.read_many(["a", "b"])
    assert set(result) == {"a", "b"}


def test_len_counts_materialized_keys_only():
    store = KeyValueStore()
    assert len(store) == 0
    store.read("a")
    store.apply("b", "x", "t")
    assert len(store) == 2


def test_version_monotonicity():
    store = KeyValueStore()
    versions = [store.apply("k", f"v{i}", f"t{i}").version for i in range(5)]
    assert versions == [1, 2, 3, 4, 5]
