"""Tests for the prepared-set conflict logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.store import PreparedSet, sets_conflict


def test_write_write_conflicts():
    assert sets_conflict([], ["k"], [], ["k"])


def test_write_read_conflicts_both_directions():
    assert sets_conflict(["k"], [], [], ["k"])
    assert sets_conflict([], ["k"], ["k"], [])


def test_read_read_does_not_conflict():
    assert not sets_conflict(["k"], [], ["k"], [])


def test_disjoint_sets_do_not_conflict():
    assert not sets_conflict(["a"], ["b"], ["c"], ["d"])


def test_prepared_set_add_and_conflict_lookup():
    prepared = PreparedSet()
    prepared.add("t1", reads=["a"], writes=["b"])
    assert prepared.conflicting(reads=["b"], writes=[]) == {"t1"}
    assert prepared.conflicting(reads=[], writes=["a"]) == {"t1"}
    assert prepared.conflicting(reads=["a"], writes=[]) == set()  # read-read
    assert prepared.is_free(reads=["x"], writes=["y"])


def test_remove_clears_indexes():
    prepared = PreparedSet()
    prepared.add("t1", reads=["a"], writes=["b"])
    assert prepared.remove("t1")
    assert prepared.is_free(reads=["b"], writes=["a"])
    assert not prepared.remove("t1")  # second remove is a no-op
    assert len(prepared) == 0


def test_duplicate_prepare_rejected():
    prepared = PreparedSet()
    prepared.add("t1", reads=[], writes=["k"])
    with pytest.raises(ValueError):
        prepared.add("t1", reads=[], writes=["k"])


def test_multiple_conflicting_transactions_all_reported():
    prepared = PreparedSet()
    prepared.add("t1", reads=["k"], writes=[])
    prepared.add("t2", reads=["k"], writes=[])
    assert prepared.conflicting(reads=[], writes=["k"]) == {"t1", "t2"}


def test_key_sets_returns_registered_sets():
    prepared = PreparedSet()
    prepared.add("t1", reads=["a", "b"], writes=["c"])
    reads, writes = prepared.key_sets("t1")
    assert reads == {"a", "b"}
    assert writes == {"c"}


@given(
    st.sets(st.integers(0, 8)),
    st.sets(st.integers(0, 8)),
    st.sets(st.integers(0, 8)),
    st.sets(st.integers(0, 8)),
)
def test_conflict_is_symmetric(ra, wa, rb, wb):
    a = sets_conflict(map(str, ra), map(str, wa), map(str, rb), map(str, wb))
    b = sets_conflict(map(str, rb), map(str, wb), map(str, ra), map(str, wa))
    assert a == b


@given(
    st.sets(st.integers(0, 8), min_size=1),
    st.sets(st.integers(0, 8)),
)
def test_prepared_set_agrees_with_sets_conflict(reads, writes):
    prepared = PreparedSet()
    prepared.add("t", map(str, reads), map(str, writes))
    probe_reads, probe_writes = ["3"], ["5"]
    expected = sets_conflict(
        probe_reads, probe_writes, map(str, reads), map(str, writes)
    )
    assert bool(prepared.conflicting(probe_reads, probe_writes)) == expected
