"""Property-based tests for the lock table.

Hypothesis drives random sequences of requests and releases and checks
the table's structural invariants after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.locks import LockMode, LockRequest, LockTable

KEYS = ["a", "b", "c"]


def make_request(txn_id, spec, timestamp):
    modes = {}
    for key, exclusive in spec.items():
        modes[key] = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
    return LockRequest(txn_id, modes, timestamp)


@st.composite
def schedules(draw):
    """A sequence of (request | release) operations."""
    n_txns = draw(st.integers(min_value=1, max_value=8))
    ops = []
    requested = []
    for i in range(n_txns):
        spec = draw(
            st.dictionaries(
                st.sampled_from(KEYS),
                st.booleans(),
                min_size=1,
                max_size=3,
            )
        )
        ops.append(("request", f"t{i}", spec, float(i)))
        requested.append(f"t{i}")
    releases = draw(
        st.lists(st.sampled_from(requested), max_size=n_txns, unique=True)
    )
    for txn in releases:
        ops.append(("release", txn, None, None))
    return ops


def check_invariants(table: LockTable) -> None:
    for key, state in table._keys.items():
        holders = state.holders
        # Invariant 1: at most one exclusive holder, and an exclusive
        # holder excludes all others.
        exclusive = [t for t, m in holders.items() if m is LockMode.EXCLUSIVE]
        if exclusive:
            assert len(holders) == 1, (key, holders)
        # Invariant 2: queue entries still have this key pending.
        for waiter in state.queue:
            assert key in waiter.pending, (key, waiter.txn_id)
        # Invariant 3: holders' requests list the key as granted.
        for txn in holders:
            request = table.request_of(txn)
            assert request is not None and key in request.granted


@given(schedules())
@settings(max_examples=200, deadline=None)
def test_invariants_hold_through_any_schedule(ops):
    table = LockTable()
    for op, txn, spec, timestamp in ops:
        if op == "request":
            table.request(make_request(txn, spec, timestamp))
        else:
            table.release(txn)
        check_invariants(table)


@given(schedules())
@settings(max_examples=200, deadline=None)
def test_releasing_everything_empties_the_table(ops):
    table = LockTable()
    txns = set()
    for op, txn, spec, timestamp in ops:
        if op == "request":
            table.request(make_request(txn, spec, timestamp))
            txns.add(txn)
        else:
            table.release(txn)
            txns.discard(txn)
    for txn in txns:
        table.release(txn)
    assert table._keys == {}
    assert table._requests == {}


@given(schedules())
@settings(max_examples=100, deadline=None)
def test_granted_requests_resolve_their_futures(ops):
    table = LockTable()
    futures = {}
    for op, txn, spec, timestamp in ops:
        if op == "request":
            futures[txn] = table.request(make_request(txn, spec, timestamp))
        else:
            table.release(txn)
    # Release everyone in timestamp order: every future must resolve
    # (no waiter is forgotten by the grant machinery).
    for txn in sorted(futures):
        table.release(txn)
    assert all(f.done or True for f in futures.values())
    # After total release, every request either resolved or was removed
    # while waiting (released before grant) — but never left half-granted.
    for txn, future in futures.items():
        request = table.request_of(txn)
        assert request is None
