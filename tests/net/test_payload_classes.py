"""Payload classes must be indistinguishable from the dicts they replaced.

Three layers of protection:

* **Wire-size parity** — every class's arithmetic ``wire_size`` must
  equal :func:`~repro.net.message.estimate_size` over ``as_dict()``
  exactly.  Wire size feeds the bandwidth pipes, so a one-byte slip
  shifts every downstream timestamp and silently changes experiment
  output.  A completeness guard fails if a payload class is added to
  :mod:`repro.net.payload` without a representative instance here.
* **Dict-compatible reads** — handlers (and their unit tests) use
  subscripts, ``get`` and ``in`` on payloads; equality against the
  literal dict form must hold both ways.
* **End-to-end fixture digests** — tiny single-point runs of all four
  system families, pinned to sha256 fingerprints over the full
  transaction record stream.  Any behavioral drift in the payload/
  messaging layer shows up here as a digest mismatch.
"""

from __future__ import annotations

import inspect

import pytest

from repro.net import payload as payload_mod
from repro.net.message import HEADER_BYTES, Message, estimate_size
from repro.net.payload import (
    TAPIR_ACK,
    TAPIR_VOTE_OK,
    AbortRequest,
    AppendEntries,
    AppendEntriesResponse,
    CarouselReadAndPrepare,
    CommitRequest,
    CommitTxn,
    CommitTxnReason,
    ConditionResolved,
    DecisionEvent,
    DecisionEventReason,
    FastCommitRequest,
    FastOutcome,
    LockRead,
    NattoCommitRequest,
    NattoReadAndPrepare,
    NattoVoteYes,
    PartitionValuesEvent,
    Payload,
    Probe,
    ProbeReply,
    ReadOk,
    ReadOkEpoch,
    ReadsEvent,
    RecsfForward,
    Refusal,
    ReleaseLocks,
    Reply,
    RequestVote,
    RequestVoteResponse,
    TapirAbort,
    TapirAck,
    TapirCommit,
    TapirFinalize,
    TapirPrepare,
    TapirRead,
    TapirReadResult,
    TapirVoteAbort,
    TapirVoteOk,
    TwoPLPrepare,
    Vote,
    VoteReason,
    WoundEvent,
)

# Representative instances: at least one per class, plus variants for
# every conditional-size branch (None vs str reasons, empty vs loaded
# containers, writes None vs dict, conditional None vs key list).
INSTANCES = [
    Reply("done"),
    Reply(None),
    Reply({"nested": [1, 2.5, "x"]}),
    Reply(ReadOk({"key-1": "v" * 64})),  # payload-in-payload result
    AppendEntries(3, "raft-0", 7, 2, [(3, {"op": "w", "key": "key-9"})], 6),
    AppendEntries(1, "raft-2", 0, 0, [], 0),  # idle heartbeat
    AppendEntriesResponse(3, True, "raft-1", 8),
    AppendEntriesResponse(4, False, "raft-2", 0),
    RequestVote(5, "raft-1", 12, 4),
    RequestVoteResponse(5, True, "raft-0"),
    RequestVoteResponse(5, False, "raft-2"),
    Probe(1.25),
    ProbeReply(2.5),
    ReadOk({"key-1": "v" * 64, "key-2": ""}),
    ReadOk({}),
    ReadOkEpoch({"key-3": "abc"}, 4),
    Refusal("preempted"),
    Refusal(None),
    Vote("c-1:0.0", 2, "yes", [0, 1, 2], "client-A"),
    VoteReason("c-1:0.0", 2, "no", [0, 1], "client-A", "late"),
    VoteReason("c-1:0.0", 2, "yes", [0], "client-A", None),
    NattoVoteYes("c-1:0.0", 1, "yes", 9, None, [0, 1], "client-A"),
    NattoVoteYes("c-1:0.0", 1, "yes", 9, ["key-1", "key-2"], [1], "cl"),
    CarouselReadAndPrepare(
        "c-1:0.0", ["key-1"], ["key-2"], "carousel-co-0", "client-A", [0, 1]
    ),
    NattoReadAndPrepare(
        "c-1:0.0", 1.5, 1, ["key-1"], ["key-1"], "natto-co-0", "client-A",
        [0, 2], {0: 0.04, 2: 0.08}, 0.08,
    ),
    LockRead(
        "c-1:0.0", ["key-1"], ["key-2"], 0.5, 0, "client-A", "co-1", [1]
    ),
    TwoPLPrepare("c-1:0.0", {"key-2": "v" * 64}, "co-1", "client-A", [1]),
    ReleaseLocks("c-1:0.0"),
    CommitRequest("c-1:0.0", "client-A", [0, 1], {"key-2": "v"}),
    NattoCommitRequest(
        "c-1:0.0", "client-A", [0, 1], {"key-2": "v"}, {0: 3, 1: 4}
    ),
    FastCommitRequest("c-1:0.0", "client-A", [0], {"key-1": "v"}, True),
    AbortRequest("c-1:0.0", "client-A", [0, 1]),
    CommitTxn("c-1:0.0", True, {"key-1": "v" * 64}),
    CommitTxn("c-1:0.0", False, None),
    CommitTxnReason("c-1:0.0", False, None, "cascade"),
    CommitTxnReason("c-1:0.0", False, {"key-1": "v"}, "late"),
    FastOutcome("c-1:0.0", False),
    DecisionEvent("c-1:0.0", True),
    DecisionEventReason("c-1:0.0", False, "preempted"),
    ReadsEvent("c-1:0.0", 2, {"key-5": "v"}, 7),
    PartitionValuesEvent("c-1:0.0", "recsf_base", 1, {"key-6": "w"}),
    PartitionValuesEvent("c-1:0.0", "recsf_reads", 1, {}),
    WoundEvent("c-1:0.0", "c-2:1.0"),
    RecsfForward("c-1:0.0", "c-2:1.0", "client-B", 2, ["key-1", "key-7"]),
    ConditionResolved("c-1:0.0", 2, True, 11),
    TapirRead(["key-1", "key-2"]),
    TapirReadResult({"key-1": ("v" * 64, 3), "key-2": ("", 0)}),
    TapirPrepare("c-1:0.0", {"key-1": 3}, ["key-2"]),
    TapirFinalize("c-1:0.0", "ok", {"key-1": 3}, ["key-2"]),
    TapirVoteOk(),
    TAPIR_VOTE_OK,
    TapirVoteAbort("conflict"),
    TapirAck(),
    TAPIR_ACK,
    TapirCommit("c-1:0.0", {"key-2": "v" * 64}),
    TapirAbort("c-1:0.0"),
]


def _all_payload_classes():
    return [
        cls
        for _, cls in inspect.getmembers(payload_mod, inspect.isclass)
        if issubclass(cls, Payload) and cls is not Payload
    ]


def test_every_payload_class_has_a_representative_instance():
    covered = {type(p) for p in INSTANCES}
    missing = [c.__name__ for c in _all_payload_classes() if c not in covered]
    assert not missing, f"no wire-size coverage for: {missing}"


@pytest.mark.parametrize(
    "instance", INSTANCES, ids=lambda p: type(p).__name__
)
def test_wire_size_matches_estimate_of_dict_form(instance):
    assert instance.wire_size == estimate_size(instance.as_dict())


@pytest.mark.parametrize(
    "instance", INSTANCES, ids=lambda p: type(p).__name__
)
def test_dict_compatible_reads(instance):
    as_dict = instance.as_dict()
    for key, value in as_dict.items():
        assert instance[key] == value
        assert instance.get(key) == value
        assert key in instance
    assert instance.get("no_such_key") is None
    assert instance.get("no_such_key", "fallback") == "fallback"
    assert "no_such_key" not in instance
    with pytest.raises(KeyError):
        instance["no_such_key"]
    # Equality matches the replaced dict in both directions, and payloads
    # stay unhashable (the dicts they replaced were too).
    assert instance == as_dict
    assert as_dict == instance.as_dict()
    assert instance != {**as_dict, "extra": 1}
    with pytest.raises(TypeError):
        hash(instance)


def test_payload_equality_across_objects():
    assert ReleaseLocks("t1") == ReleaseLocks("t1")
    assert ReleaseLocks("t1") != ReleaseLocks("t2")
    assert Refusal(None) != ReleaseLocks("t1")


def test_message_wire_size_uses_payload_precompute():
    request = AppendEntries(3, "raft-0", 7, 2, [(3, {"k": "v"})], 6)
    message = Message("append_entries", request, "raft-0", "raft-1")
    assert message.wire_size == HEADER_BYTES + estimate_size(
        request.as_dict()
    )
    # Dict payloads still take the estimate walk, to the same number.
    dict_message = Message(
        "append_entries", request.as_dict(), "raft-0", "raft-1"
    )
    assert dict_message.wire_size == message.wire_size


def test_raft_append_entries_round_trip_over_network():
    """A Raft payload delivered through the real network reads back
    exactly like the dict the old code shipped."""
    from repro.cluster.node import Node
    from repro.net.network import Network
    from repro.net.topology import Topology
    from repro.sim import Simulator

    sim = Simulator()
    topology = Topology(
        "two-dc",
        datacenters=("dc-a", "dc-b"),
        rtt_ms={("dc-a", "dc-b"): 10.0},
    )
    net = Network(sim, topology)

    received = []

    class Follower(Node):
        def handle_append_entries(self, payload, src):
            received.append((payload, src))

    leader = net.register(Node(sim, "leader", "dc-a"))
    net.register(Follower(sim, "follower", "dc-b"))

    sent = AppendEntries(2, "leader", 4, 1, [(2, {"op": "w"})], 3)
    net.send(leader, "follower", "append_entries", sent)
    sim.run()

    assert len(received) == 1
    payload, src = received[0]
    assert src == "leader"
    assert payload is sent  # no copy on the wire
    assert payload == sent.as_dict()
    assert payload["entries"] == [(2, {"op": "w"})]
    assert payload["leader_commit"] == 3


# ----------------------------------------------------------------------
# End-to-end behavior pins: tiny fixture runs, one per system family.

#: Recorded from the pre-payload-conversion code path (dict payloads):
#: the conversion — and any future change to this layer — must leave
#: every family's full transaction record stream bit-identical.
FIXTURE_DIGESTS = {
    "2PL+2PC":
        "c05d24fe62bdfcddcf0f1ecc90b4a4c3187c177f803f30e539aa8c551c9837b0",
    "TAPIR":
        "1995bd97fcb959b05fac9d116902b2b0decc9b2de697b893957b2ccd11301126",
    "Carousel Basic":
        "6ee04f0e311b82220d042c4605a7b063b3a7a212ecbedcebfefc11c69a8a775c",
    "Natto-RECSF":
        "d47a199f053adf3d36c70c3c1a6c3910730514e9575fb32df13b3d6860a37c98",
}


@pytest.mark.parametrize("system", sorted(FIXTURE_DIGESTS))
def test_family_fixture_digest(system):
    from repro.experiments.common import Scale
    from repro.harness.experiment import ExperimentSettings
    from repro.harness.parallel import PointSpec, WorkloadSpec, run_point
    from repro.verify.fingerprint import fingerprint_result
    from repro.workloads import YcsbTWorkload

    scale = Scale("fixture", duration=1.0, trim=0.25, repeats=1, drain=3.0)
    settings = scale.apply(ExperimentSettings()).scaled(seed=7)
    spec = PointSpec(
        system=system,
        x=60,
        input_rate=60.0,
        workload=WorkloadSpec.of(YcsbTWorkload, num_keys=400),
        settings=settings,
        repeats=1,
    )
    repeated = run_point(spec)
    assert fingerprint_result(repeated.results[0]) == FIXTURE_DIGESTS[system]
