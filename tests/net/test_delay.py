"""Tests for delay models."""

import numpy as np
import pytest

from repro.net import ConstantDelay, ParetoDelay, UniformJitterDelay, azure_topology
from repro.net.delay import make_delay_model, pareto_shape_for_cv


def test_constant_delay_equals_topology_base():
    topo = azure_topology()
    model = ConstantDelay(topo)
    assert model.sample("VA", "SG") == topo.one_way("VA", "SG")
    assert model.mean("VA", "SG") == topo.one_way("VA", "SG")


def test_uniform_jitter_bounds():
    topo = azure_topology()
    model = UniformJitterDelay(topo, np.random.default_rng(0), jitter=0.1)
    base = topo.one_way("VA", "WA")
    for _ in range(200):
        sample = model.sample("VA", "WA")
        assert base <= sample <= base * 1.1


def test_uniform_jitter_rejects_negative():
    with pytest.raises(ValueError):
        UniformJitterDelay(azure_topology(), np.random.default_rng(0), -0.1)


def test_pareto_shape_inverts_cv():
    for cv in (0.05, 0.15, 0.4):
        alpha = pareto_shape_for_cv(cv)
        # CV^2 = 1 / (alpha (alpha - 2))
        assert (1.0 / (alpha * (alpha - 2.0))) == pytest.approx(cv * cv)


def test_pareto_delay_matches_requested_mean_and_cv():
    topo = azure_topology()
    model = ParetoDelay(topo, np.random.default_rng(1), cv=0.2)
    base = topo.one_way("VA", "SG")
    samples = np.array([model.sample("VA", "SG") for _ in range(40000)])
    assert samples.mean() == pytest.approx(base, rel=0.03)
    assert samples.std() / samples.mean() == pytest.approx(0.2, rel=0.15)


def test_pareto_delay_never_below_scale():
    topo = azure_topology()
    model = ParetoDelay(topo, np.random.default_rng(2), cv=0.4)
    base = topo.one_way("VA", "WA")
    for _ in range(1000):
        assert model.sample("VA", "WA") > base * 0.3


def test_make_delay_model_zero_variance_is_constant():
    model = make_delay_model(azure_topology(), np.random.default_rng(0), 0.0)
    assert isinstance(model, ConstantDelay)


def test_make_delay_model_positive_variance_is_pareto():
    model = make_delay_model(azure_topology(), np.random.default_rng(0), 0.15)
    assert isinstance(model, ParetoDelay)


def test_invalid_cv_rejected():
    with pytest.raises(ValueError):
        pareto_shape_for_cv(0.0)
