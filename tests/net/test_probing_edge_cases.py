"""Edge cases of the delay estimator."""

import numpy as np
import pytest

from repro.cluster import Clock, ClockConfig, Node
from repro.net import Network, azure_topology
from repro.net.delay import ParetoDelay
from repro.net.probing import ClientDelayView, ProbeProxy, ProbeTargetMixin
from repro.sim import Simulator


class Server(ProbeTargetMixin, Node):
    pass


def test_estimate_tracks_a_delay_regime_change():
    """The sliding window forgets old samples: after delays change, the
    estimate converges to the new regime within ~a window."""
    sim = Simulator()
    topo = azure_topology()

    class SwitchableDelay:
        def __init__(self):
            self.extra = 0.0

        def sample(self, a, b):
            return topo.one_way(a, b) + self.extra

        def mean(self, a, b):
            return topo.one_way(a, b) + self.extra

    model = SwitchableDelay()
    net = Network(sim, topo, delay_model=model)
    net.register(Server(sim, "s", "WA"))
    proxy = ProbeProxy(sim, net, "VA", ["s"])
    proxy.start()
    sim.run(until=2.0)
    before = proxy.estimate("s")
    model.extra = 0.020  # the path got 20 ms slower
    sim.run(until=4.5)
    after = proxy.estimate("s")
    assert after == pytest.approx(before + 0.020, abs=0.003)


def test_percentile_parameter_controls_conservatism():
    sim = Simulator()
    topo = azure_topology()
    rng = np.random.default_rng(0)
    net = Network(sim, topo, delay_model=ParetoDelay(topo, rng, cv=0.2))
    net.register(Server(sim, "s", "SG"))
    p50 = ProbeProxy(sim, net, "VA", ["s"], percentile=50.0)
    p99 = ProbeProxy(sim, net, "PR", ["s"], percentile=99.0)
    p50.start()
    p99.start()
    sim.run(until=3.0)
    # Normalize out the different base delays before comparing.
    ratio50 = p50.estimate("s") / topo.one_way("VA", "SG")
    ratio99 = p99.estimate("s") / topo.one_way("PR", "SG")
    assert ratio99 > ratio50


def test_view_reflects_added_targets_after_refresh():
    sim = Simulator()
    net = Network(sim, azure_topology())
    net.register(Server(sim, "s1", "WA"))
    net.register(Server(sim, "s2", "PR"))
    proxy = ProbeProxy(sim, net, "VA", ["s1"])
    view = ClientDelayView(sim, proxy, refresh_interval=0.1)
    proxy.start()
    sim.run(until=1.0)
    assert view.estimate("s2") is None
    proxy.add_target("s2")
    sim.run(until=2.5)
    assert view.estimate("s2") is not None


def test_skewed_proxy_clock_cancels_out_of_round_trip():
    """The proxy's own skew shifts every sample equally; the *relative*
    estimate between two servers is unaffected."""
    sim = Simulator()
    topo = azure_topology()
    net = Network(sim, topo)
    net.register(Server(sim, "near", "WA"))
    net.register(Server(sim, "far", "SG"))
    proxy = ProbeProxy(sim, net, "VA", ["near", "far"])
    skewed = Clock(sim, ClockConfig(max_offset=0.0))
    skewed._offset = 0.050  # wildly skewed proxy
    proxy.clock = skewed
    proxy.start()
    sim.run(until=2.0)
    difference = proxy.estimate("far") - proxy.estimate("near")
    expected = topo.one_way("VA", "SG") - topo.one_way("VA", "WA")
    assert difference == pytest.approx(expected, abs=0.002)
