"""Tests for message sizing and identity."""

from repro.net.message import HEADER_BYTES, Message, estimate_size


def test_scalar_sizes():
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8
    assert estimate_size("abcd") == 4
    assert estimate_size(b"abcd") == 4


def test_container_sizes_sum_members():
    assert estimate_size(["ab", "cd"]) == 4
    assert estimate_size(("ab", 1)) == 10
    assert estimate_size({"k": "value"}) == 1 + 5


def test_nested_structures():
    payload = {"writes": {"key-1": "v" * 64}, "txn": "t1", "epoch": 0}
    expected = (
        len("writes") + len("key-1") + 64 + len("txn") + 2 + len("epoch") + 8
    )
    assert estimate_size(payload) == expected


def test_opaque_object_flat_cost():
    class Blob:
        pass

    assert estimate_size(Blob()) == 64


def test_opaque_object_self_reported_size():
    class Sized:
        wire_size = 1000

    assert estimate_size(Sized()) == 1000


def test_wire_size_includes_header_and_is_cached():
    message = Message("m", {"a": "xx"}, "src", "dst")
    first = message.wire_size
    assert first == HEADER_BYTES + 1 + 2
    # Cached: same object, same answer, no recompute of a mutated dict.
    message.payload["a"] = "x" * 100
    assert message.wire_size == first


def test_message_ids_are_unique_and_increasing():
    a = Message("m", {}, "s", "d")
    b = Message("m", {}, "s", "d")
    assert b.msg_id > a.msg_id


def test_large_payload_sizes_do_not_recurse():
    # A deep structure must not hit the recursion limit (iterative walk).
    deep = value = []
    for _ in range(5000):
        inner = []
        value.append(inner)
        value = inner
    assert estimate_size(deep) == 0
