"""Tests for Domino-style probing and delay estimation."""

import numpy as np
import pytest

from repro.cluster import Clock, ClockConfig, Node
from repro.net import Network, azure_topology
from repro.net.delay import ParetoDelay
from repro.net.probing import ClientDelayView, ProbeProxy, ProbeTargetMixin
from repro.sim import Simulator


class Server(ProbeTargetMixin, Node):
    pass


def build(delay_model=None, server_clock=None):
    sim = Simulator()
    topo = azure_topology()
    net = Network(sim, topo, delay_model=delay_model)
    server = Server(sim, "leader-sg", "SG", clock=server_clock and server_clock(sim))
    net.register(server)
    proxy = ProbeProxy(sim, net, "VA", ["leader-sg"])
    proxy.start()
    return sim, net, proxy, server


def test_estimate_converges_to_one_way_delay():
    sim, net, proxy, _ = build()
    sim.run(until=2.0)
    estimate = proxy.estimate("leader-sg")
    assert estimate == pytest.approx(0.107, abs=0.002)


def test_no_data_returns_none():
    sim = Simulator()
    net = Network(sim, azure_topology())
    server = Server(sim, "leader-sg", "SG")
    net.register(server)
    proxy = ProbeProxy(sim, net, "VA", ["leader-sg"])
    assert proxy.estimate("leader-sg") is None
    assert proxy.summary("leader-sg") is None


def test_estimate_includes_server_clock_skew():
    skew = 0.004

    def make_clock(sim):
        clock = Clock(sim, ClockConfig(max_offset=0.0))
        clock._offset = skew
        return clock

    sim, net, proxy, server = build(server_clock=make_clock)
    sim.run(until=2.0)
    # The sample is server_recv_clock - proxy_send_clock, so the skew is
    # baked into the estimate: delay + 4 ms.
    assert proxy.estimate("leader-sg") == pytest.approx(0.111, abs=0.002)


def test_p95_sits_in_upper_tail_under_jitter():
    rng = np.random.default_rng(0)
    model = ParetoDelay(azure_topology(), rng, cv=0.1)
    sim, net, proxy, _ = build(delay_model=model)
    sim.run(until=3.0)
    estimate = proxy.estimate("leader-sg")
    base = azure_topology().one_way("VA", "SG")
    assert estimate > base  # p95 of a right-skewed distribution


def test_window_discards_old_samples():
    sim, net, proxy, server = build()
    sim.run(until=2.0)
    summary = proxy.summary("leader-sg")
    # 10 ms probes over a 1 s window -> about 100 retained samples.
    assert 80 <= summary.samples <= 110


def test_client_view_is_stale_between_refreshes():
    sim, net, proxy, _ = build()
    view = ClientDelayView(sim, proxy, refresh_interval=0.1)
    # First probe replies arrive at ~0.214 s (full VA<->SG round trip);
    # the first view refresh that can see data is at 0.3 s.
    sim.run(until=0.45)
    before = view.estimate("leader-sg")
    assert before is not None
    # Proxy keeps probing, view only updates on its own refresh schedule;
    # the cached copy matches some recent proxy state.
    assert before == pytest.approx(0.107, abs=0.005)


def test_view_max_estimate_requires_all_targets():
    sim, net, proxy, _ = build()
    view = ClientDelayView(sim, proxy, refresh_interval=0.1)
    sim.run(until=0.5)
    assert view.max_estimate(["leader-sg"]) is not None
    assert view.max_estimate(["leader-sg", "missing"]) is None


def test_add_target_starts_collecting():
    sim = Simulator()
    net = Network(sim, azure_topology())
    s1 = Server(sim, "s1", "WA")
    s2 = Server(sim, "s2", "PR")
    net.register(s1)
    net.register(s2)
    proxy = ProbeProxy(sim, net, "VA", ["s1"])
    proxy.add_target("s2")
    proxy.start()
    sim.run(until=1.0)
    assert proxy.estimate("s1") == pytest.approx(0.067 / 2, abs=0.002)
    assert proxy.estimate("s2") == pytest.approx(0.080 / 2, abs=0.002)
