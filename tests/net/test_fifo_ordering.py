"""Per-connection FIFO delivery (TCP semantics) under jitter."""

import numpy as np

from repro.cluster import Node
from repro.net import Network, azure_topology
from repro.net.delay import ParetoDelay
from repro.sim import Simulator


class Sink(Node):
    def __init__(self, sim, name, dc):
        super().__init__(sim, name, dc)
        self.received = []

    def handle_message(self, message):
        self.received.append(message.payload["n"])


def build(cv=0.3, seed=0):
    sim = Simulator()
    topo = azure_topology()
    net = Network(
        sim, topo, delay_model=ParetoDelay(topo, np.random.default_rng(seed), cv)
    )
    a = net.register(Sink(sim, "a", "VA"))
    b = net.register(Sink(sim, "b", "SG"))
    return sim, net, a, b


def test_same_pair_messages_never_reorder():
    sim, net, a, b = build()
    for i in range(300):
        net.send(a, "b", "m", {"n": i})
    sim.run()
    assert b.received == list(range(300))


def test_fifo_holds_across_seeds_and_heavy_jitter():
    for seed in range(5):
        sim, net, a, b = build(cv=0.4, seed=seed)

        def staggered():
            for i in range(100):
                net.send(a, "b", "m", {"n": i})
                yield 0.001

        sim.spawn(staggered())
        sim.run()
        assert b.received == list(range(100))


def test_different_pairs_are_independent():
    sim, net, a, b = build()
    c = net.register(Sink(sim, "c", "SG"))
    # Saturate a->b ordering with a huge early message delay via jitter;
    # a->c deliveries must not be held behind a->b's.
    for i in range(50):
        net.send(a, "b", "m", {"n": i})
        net.send(a, "c", "m", {"n": i})
    sim.run()
    assert b.received == list(range(50))
    assert c.received == list(range(50))


def test_replies_are_fifo_too():
    sim, net, a, b = build()

    class Echo(Sink):
        def handle_echo(self, payload, src):
            return payload["n"]

    echo = net.register(Echo(sim, "echo", "SG"))
    results = []
    for i in range(100):
        net.call(a, "echo", "echo", {"n": i}).add_done_callback(
            lambda f: results.append(f.value)
        )
    sim.run()
    assert results == list(range(100))
