"""Tests for topologies and the Table 1 matrix."""

import pytest

from repro.net import (
    AZURE_DATACENTERS,
    AZURE_RTT_MS,
    azure_topology,
    hybrid_cloud_topology,
    local_cluster_topology,
)


def test_table1_values_are_verbatim():
    topo = azure_topology()
    assert topo.rtt("VA", "WA") == 67.0
    assert topo.rtt("VA", "PR") == 80.0
    assert topo.rtt("VA", "NSW") == 196.0
    assert topo.rtt("VA", "SG") == 214.0
    assert topo.rtt("WA", "PR") == 136.0
    assert topo.rtt("WA", "NSW") == 175.0
    assert topo.rtt("WA", "SG") == 163.0
    assert topo.rtt("PR", "NSW") == 234.0
    assert topo.rtt("PR", "SG") == 149.0
    assert topo.rtt("NSW", "SG") == 87.0


def test_rtt_is_symmetric():
    topo = azure_topology()
    for a in AZURE_DATACENTERS:
        for b in AZURE_DATACENTERS:
            assert topo.rtt(a, b) == topo.rtt(b, a)


def test_intra_dc_delay_is_small():
    topo = azure_topology()
    assert topo.rtt("VA", "VA") < 1.0


def test_one_way_is_half_rtt_in_seconds():
    topo = azure_topology()
    assert topo.one_way("VA", "SG") == pytest.approx(0.107)


def test_max_one_way_from_origin():
    topo = azure_topology()
    assert topo.max_one_way_from("VA", ["WA", "SG"]) == pytest.approx(0.107)


def test_unknown_pair_raises():
    topo = azure_topology()
    with pytest.raises(KeyError):
        topo.rtt("VA", "MARS")


def test_all_pairs_present():
    assert len(AZURE_RTT_MS) == 10  # C(5,2)


def test_local_cluster_uses_paper_rtts():
    topo = local_cluster_topology()
    values = sorted(
        topo.rtt(a, b)
        for i, a in enumerate(topo.datacenters)
        for b in topo.datacenters[i + 1:]
    )
    assert values == [4.0, 6.0, 8.0]


def test_local_cluster_requires_three_rtts():
    with pytest.raises(ValueError):
        local_cluster_topology((4.0, 6.0))


def test_hybrid_topology_replaces_us_datacenters():
    topo = hybrid_cloud_topology()
    assert "VA" not in topo.datacenters
    assert "WA" not in topo.datacenters
    assert "AWS-USE" in topo.datacenters
    assert "AWS-USW" in topo.datacenters
    # Geographic magnitudes preserved.
    assert topo.rtt("AWS-USE", "AWS-USW") == 67.0
    assert topo.rtt("AWS-USE", "SG") == 214.0


def test_hybrid_cross_provider_links_are_jittery():
    topo = hybrid_cloud_topology(cross_provider_jitter=4.0)
    assert topo.jitter_multiplier("AWS-USE", "PR") == 4.0
    assert topo.jitter_multiplier("PR", "AWS-USE") == 4.0
    assert topo.jitter_multiplier("PR", "SG") == 1.0
    assert topo.jitter_multiplier("AWS-USE", "AWS-USW") == 1.0
