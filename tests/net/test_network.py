"""Tests for message delivery and RPC."""

import numpy as np
import pytest

from repro.cluster import Node
from repro.net import LossConfig, Network, NetworkConfig, azure_topology
from repro.sim import Future, Simulator


class Echo(Node):
    """Test server: records one-way messages, echoes RPCs."""

    def __init__(self, sim, name, dc, **kwargs):
        super().__init__(sim, name, dc, **kwargs)
        self.received = []

    def handle_message(self, message):
        self.received.append((message.method, message.payload, self.sim.now))

    def handle_echo(self, payload, src):
        return {"echoed": payload["x"], "from": src}

    def handle_deferred(self, payload, src):
        future = Future()
        self.sim.schedule(payload["wait"], lambda: future.set_result("later"))
        return future


def build(topology=None, config=None, loss_rng=None):
    sim = Simulator()
    topo = topology or azure_topology()
    net = Network(sim, topo, config=config or NetworkConfig(), loss_rng=loss_rng)
    return sim, net


def test_one_way_message_delivered_after_propagation():
    sim, net = build()
    a = net.register(Echo(sim, "a", "VA"))
    b = net.register(Echo(sim, "b", "SG"))
    net.send(a, "b", "ping", {"x": 1})
    sim.run()
    assert len(b.received) == 1
    method, payload, at = b.received[0]
    assert method == "ping"
    # One-way VA->SG is 107 ms.
    assert at == pytest.approx(0.107, abs=0.005)


def test_rpc_round_trip_takes_full_rtt():
    sim, net = build()
    a = net.register(Echo(sim, "a", "VA"))
    net.register(Echo(sim, "b", "SG"))
    done_at = []
    future = net.call(a, "b", "echo", {"x": 42})
    future.add_done_callback(lambda f: done_at.append(sim.now))
    sim.run()
    assert future.value["echoed"] == 42
    assert done_at[0] == pytest.approx(0.214, abs=0.005)


def test_rpc_handler_may_return_future():
    sim, net = build()
    a = net.register(Echo(sim, "a", "VA"))
    net.register(Echo(sim, "b", "WA"))
    future = net.call(a, "b", "deferred", {"wait": 0.5})
    sim.run()
    assert future.value == "later"
    # RTT 67ms + 500ms server-side wait.
    assert sim.now >= 0.5 + 0.067 - 0.01


def test_intra_dc_messages_are_fast():
    sim, net = build()
    a = net.register(Echo(sim, "a", "VA"))
    net.register(Echo(sim, "b", "VA"))
    future = net.call(a, "b", "echo", {"x": 1})
    sim.run()
    assert future.done
    assert sim.now < 0.002


def test_duplicate_registration_rejected():
    sim, net = build()
    net.register(Echo(sim, "a", "VA"))
    with pytest.raises(ValueError):
        net.register(Echo(sim, "a", "WA"))


def test_service_time_delays_handling_and_queues():
    sim, net = build()
    a = net.register(Echo(sim, "a", "VA"))
    b = net.register(Echo(sim, "b", "VA", service_time=0.010))
    net.send(a, "b", "m1", {})
    net.send(a, "b", "m2", {})
    sim.run()
    t1 = b.received[0][2]
    t2 = b.received[1][2]
    # Second message waits for the first's service time.
    assert t2 - t1 == pytest.approx(0.010, abs=1e-6)


def test_loss_requires_rng():
    with pytest.raises(ValueError):
        build(config=NetworkConfig(loss=LossConfig(loss_rate=0.01)))


def test_loss_inflates_latency_tail():
    config = NetworkConfig(loss=LossConfig(loss_rate=0.3, rto=0.2))
    sim, net = build(config=config, loss_rng=np.random.default_rng(0))
    a = net.register(Echo(sim, "a", "VA"))
    b = net.register(Echo(sim, "b", "WA"))
    for i in range(200):
        net.send(a, "b", f"m{i}", {})
    sim.run()
    times = [at for _, _, at in b.received]
    # With 30% loss some messages must have paid at least one RTO.
    assert max(times) > 0.2


def test_bandwidth_pipe_serializes_large_messages():
    # Tiny capacity: 10 KB/s; two ~0.6KB messages must queue.
    config = NetworkConfig(
        loss=LossConfig(loss_rate=0.0, link_capacity_bytes_per_s=1e4)
    )
    sim, net = build(config=config)
    a = net.register(Echo(sim, "a", "VA"))
    b = net.register(Echo(sim, "b", "WA"))
    big = {"data": "x" * 500}
    net.send(a, "b", "m1", dict(big))
    net.send(a, "b", "m2", dict(big))
    sim.run()
    t1, t2 = b.received[0][2], b.received[1][2]
    # Transmission time of one message is ~62 ms at 10 KB/s.
    assert t2 - t1 > 0.05


def test_network_counts_traffic():
    sim, net = build()
    a = net.register(Echo(sim, "a", "VA"))
    net.register(Echo(sim, "b", "WA"))
    net.send(a, "b", "x", {"k": "v"})
    sim.run()
    assert net.messages_sent == 1
    assert net.bytes_sent > 100  # header alone is 120 bytes
