"""Tests for the packet-loss models."""

import numpy as np
import pytest

from repro.net import LossConfig, LossModel, mathis_throughput


def test_no_loss_means_full_capacity():
    assert mathis_throughput(0.0, 0.1, cap_bytes_per_s=1e9) == 1e9


def test_mathis_bound_decreases_with_loss():
    t1 = mathis_throughput(0.005, 0.1, cap_bytes_per_s=1e12)
    t2 = mathis_throughput(0.02, 0.1, cap_bytes_per_s=1e12)
    assert t2 < t1


def test_mathis_bound_decreases_with_rtt():
    t_short = mathis_throughput(0.01, 0.01, cap_bytes_per_s=1e12)
    t_long = mathis_throughput(0.01, 0.2, cap_bytes_per_s=1e12)
    assert t_long < t_short


def test_mathis_known_value():
    # B = 1.22 * MSS / (RTT * sqrt(p))
    value = mathis_throughput(0.01, 0.1, mss_bytes=1460, cap_bytes_per_s=1e12)
    assert value == pytest.approx(1.22 * 1460 / (0.1 * 0.1))


def test_capacity_caps_the_bound():
    assert mathis_throughput(1e-9, 0.1, cap_bytes_per_s=5e6) == 5e6


def test_zero_loss_has_zero_retransmission_delay():
    model = LossModel(LossConfig(loss_rate=0.0), np.random.default_rng(0))
    assert all(model.retransmission_delay() == 0.0 for _ in range(100))


def test_retransmission_delay_is_multiple_of_rto():
    config = LossConfig(loss_rate=0.3, rto=0.2)
    model = LossModel(config, np.random.default_rng(0))
    for _ in range(500):
        delay = model.retransmission_delay()
        assert delay >= 0.0
        assert abs(delay / 0.2 - round(delay / 0.2)) < 1e-9


def test_mean_retransmissions_match_geometric():
    config = LossConfig(loss_rate=0.2, rto=1.0)
    model = LossModel(config, np.random.default_rng(1))
    delays = [model.retransmission_delay() for _ in range(20000)]
    # E[attempts] = 1/(1-p) => E[extra] = p/(1-p) = 0.25
    assert np.mean(delays) == pytest.approx(0.25, rel=0.1)


def test_effective_bandwidth_uses_mathis():
    config = LossConfig(loss_rate=0.01, link_capacity_bytes_per_s=1e9)
    assert config.effective_bandwidth(0.1) == pytest.approx(
        mathis_throughput(0.01, 0.1, cap_bytes_per_s=1e9)
    )
