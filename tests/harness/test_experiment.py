"""Tests for the experiment harness."""

import math

import pytest

from repro.harness import (
    ExperimentSettings,
    make_system,
    run_experiment,
    run_repeated,
)
from repro.harness.systems import SYSTEM_FACTORIES
from repro.txn.priority import Priority
from repro.workloads import YcsbTWorkload

FAST = ExperimentSettings(duration=3.0, trim=0.5, drain=5.0)


def test_registry_covers_all_paper_lines():
    assert set(SYSTEM_FACTORIES) == {
        "2PL+2PC",
        "2PL+2PC(P)",
        "2PL+2PC(POW)",
        "TAPIR",
        "Carousel Basic",
        "Carousel Fast",
        "Natto-TS",
        "Natto-LECSF",
        "Natto-PA",
        "Natto-CP",
        "Natto-RECSF",
    }


def test_unknown_system_rejected():
    with pytest.raises(KeyError):
        make_system("FoundationDB")


def test_run_experiment_produces_metrics():
    result = run_experiment(
        lambda: make_system("Carousel Basic"),
        lambda rng: YcsbTWorkload(rng, num_keys=200_000),
        60,
        FAST,
    )
    assert result.system_name == "Carousel Basic"
    assert result.committed_per_second > 30
    assert 0.2 < result.p95_high_ms / 1000.0 < 3.0
    assert 0.2 < result.p95_low_ms / 1000.0 < 3.0
    assert result.system is not None


def test_input_rate_is_respected():
    result = run_experiment(
        lambda: make_system("Carousel Basic"),
        lambda rng: YcsbTWorkload(rng, num_keys=100_000),
        100,
        FAST,
    )
    # Open-loop arrivals at 100/s; goodput close to it at low contention.
    assert 70 < result.committed_per_second < 130


def test_window_trims_warmup_and_cooldown():
    result = run_experiment(
        lambda: make_system("Carousel Basic"),
        lambda rng: YcsbTWorkload(rng, num_keys=10_000),
        50,
        FAST,
    )
    start, end = result.window
    assert start == FAST.probe_warmup + FAST.trim
    assert end == FAST.probe_warmup + FAST.duration - FAST.trim
    for record in result.stats.committed(window=result.window):
        assert start <= record.start < end


def test_same_seed_reproduces_exactly():
    def run():
        return run_experiment(
            lambda: make_system("Carousel Basic"),
            lambda rng: YcsbTWorkload(rng, num_keys=10_000),
            50,
            FAST.scaled(seed=42),
        )

    a, b = run(), run()
    assert [r.txn_id for r in a.stats.records] == [
        r.txn_id for r in b.stats.records
    ]
    assert a.p95_low_ms == b.p95_low_ms


def test_different_seeds_differ():
    def run(seed):
        return run_experiment(
            lambda: make_system("Carousel Basic"),
            lambda rng: YcsbTWorkload(rng, num_keys=10_000),
            50,
            FAST.scaled(seed=seed),
        )

    assert run(1).p95_low_ms != run(2).p95_low_ms


def test_run_repeated_aggregates_with_ci():
    repeated = run_repeated(
        lambda: make_system("Carousel Basic"),
        lambda rng: YcsbTWorkload(rng, num_keys=10_000),
        50,
        FAST,
        repeats=2,
    )
    mean, half = repeated.p95_low_ms()
    assert mean > 0
    assert half >= 0
    assert not math.isnan(mean)


def test_priority_split_in_goodput():
    result = run_experiment(
        lambda: make_system("Carousel Basic"),
        lambda rng: YcsbTWorkload(rng, num_keys=100_000),
        100,
        FAST,
    )
    high = result.goodput(Priority.HIGH)
    low = result.goodput(Priority.LOW)
    assert high < low  # 10/90 split
    assert high + low == pytest.approx(result.goodput(), rel=1e-6)
