"""Tests for the report tables."""

import math

from repro.harness import SeriesTable, format_ms


def test_format_ms_styles():
    assert format_ms(1234.5) == "1234"
    assert format_ms(99.94) == "99.9"
    assert format_ms(float("nan")) == "-"


def test_add_and_lookup_points():
    table = SeriesTable("t", "x", [1, 2])
    table.add_point("sys", 10.0)
    table.add_point("sys", 20.0)
    assert table.value("sys", 1) == 10.0
    assert table.value("sys", 2) == 20.0


def test_render_contains_everything():
    table = SeriesTable("Figure X", "rate", [50, 350])
    table.add_point("A", 380.0, 12.0)
    table.add_point("A", 5000.0, 400.0)
    table.add_point("B", 400.0)
    text = table.render()
    assert "Figure X" in text
    assert "rate" in text
    assert "380" in text and "5000" in text
    assert "±" in text  # error bars rendered when provided


def test_render_handles_missing_points():
    table = SeriesTable("t", "x", [1, 2, 3])
    table.add_point("partial", 1.0)
    text = table.render()
    assert text.count("-") >= 2  # separator plus missing cells


def test_nan_error_not_rendered():
    table = SeriesTable("t", "x", [1])
    table.add_point("sys", 5.0, float("nan"))
    assert "±" not in table.render().split("\n")[-1]
