"""format_ms edge cases and SeriesTable JSON round-trips."""

import json
import math

from repro.harness.report import SeriesTable, format_ms


def test_format_ms_regular_values():
    assert format_ms(float("nan")) == "-"
    assert format_ms(42.25) == "42.2"
    assert format_ms(250.0) == "250"


def test_format_ms_infinity():
    assert format_ms(float("inf")) == "inf"
    assert format_ms(float("-inf")) == "-inf"


def test_render_with_infinite_cell_does_not_crash():
    table = SeriesTable("t", "x", [1, 2])
    table.add_point("sys", float("inf"))
    table.add_point("sys", 5.0)
    rendered = table.render()
    assert "inf" in rendered


def _example_table():
    table = SeriesTable(
        "Figure X — p95", "rate", [50, 100, 200], unit="ms"
    )
    table.add_point("Natto-RECSF", 120.5, 3.0)
    table.add_point("Natto-RECSF", float("nan"))
    table.add_point("Natto-RECSF", float("inf"), float("nan"))
    table.add_point("TAPIR", 99.0)
    return table


def test_to_json_is_strict_json():
    text = _example_table().to_json()
    # Strict parsers reject bare NaN/Infinity tokens; ours must not
    # emit them.
    data = json.loads(text, parse_constant=lambda _: pytest_fail())
    assert data["title"] == "Figure X — p95"


def pytest_fail():  # pragma: no cover - only hit on regression
    raise AssertionError("non-strict JSON constant emitted")


def test_round_trip_preserves_everything():
    original = _example_table()
    restored = SeriesTable.from_json(original.to_json())
    assert restored.title == original.title
    assert restored.x_label == original.x_label
    assert list(restored.x_values) == list(original.x_values)
    assert restored.unit == original.unit
    assert set(restored.series) == {"Natto-RECSF", "TAPIR"}
    natto = restored.series["Natto-RECSF"]
    assert natto[0] == 120.5
    assert math.isnan(natto[1])
    assert math.isinf(natto[2]) and natto[2] > 0
    errs = restored.errors["Natto-RECSF"]
    assert errs[0] == 3.0
    assert math.isnan(errs[1])


def test_round_trip_renders_identically():
    original = _example_table()
    restored = SeriesTable.from_json(original.to_json())
    assert restored.render() == original.render()
