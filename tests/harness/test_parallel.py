"""Parallel sweep executor: determinism, pickling, seed schedule, traces.

The load-bearing guarantee is that a sweep run at ``--jobs N`` is
byte-identical to the serial run — same tables, same per-point metrics —
so every figure can fan out over cores without changing a single number.
"""

import math
import os
import pickle

import pytest

from repro.experiments.common import Scale, trace_label
from repro.experiments import figure7
from repro.harness.experiment import (
    ExperimentSettings,
    seed_schedule,
    slugify,
)
from repro.harness.parallel import (
    PointSpec,
    WorkloadSpec,
    default_jobs,
    run_point,
    run_points,
)
from repro.workloads import YcsbTWorkload

TINY = Scale("tiny", duration=2.0, trim=0.5, repeats=1, drain=4.0)


def _tiny_spec(system="Natto-RECSF", seed=0, **settings_kwargs):
    settings = TINY.apply(ExperimentSettings(**settings_kwargs)).scaled(
        seed=seed
    )
    return PointSpec(
        system=system,
        x=50,
        input_rate=50.0,
        workload=WorkloadSpec.of(YcsbTWorkload),
        settings=settings,
        repeats=TINY.repeats,
    )


# ---------------------------------------------------------------------------
# seed schedule


def test_seed_schedule_matches_historical_derivation():
    # Existing figures used seed*1000 + rep for small repeat counts; the
    # schedule must reproduce those seeds exactly or every published
    # number shifts.
    assert list(seed_schedule(0, 3)) == [0, 1, 2]
    assert list(seed_schedule(7, 4)) == [7000, 7001, 7002, 7003]


def test_seed_schedule_is_injective_across_bases():
    seen = {}
    for base in range(50):
        for rep, seed in enumerate(seed_schedule(base, 40)):
            assert seed not in seen, (
                f"collision: base={base} rep={rep} vs {seen[seed]}"
            )
            seen[seed] = (base, rep)


def test_seed_schedule_injective_for_large_repeat_counts():
    # repeats > 1000 would have collided under the old stride-1000 rule.
    a = set(seed_schedule(1, 1500))
    b = set(seed_schedule(2, 1500))
    assert len(a) == 1500 and len(b) == 1500
    assert not (a & b)


# ---------------------------------------------------------------------------
# picklability and detach


def test_point_spec_and_workload_spec_pickle():
    spec = _tiny_spec()
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    workload = clone.workload.factory()(__import__("numpy").random.default_rng(0))
    assert workload is not None


def test_detached_result_pickles_and_preserves_metrics():
    repeated = run_point(_tiny_spec())
    clone = pickle.loads(pickle.dumps(repeated))
    assert clone.system_name == repeated.system_name
    assert clone.p95_high_ms() == repeated.p95_high_ms()
    assert clone.p95_low_ms() == repeated.p95_low_ms()
    assert clone.goodput() == repeated.goodput()
    # detach() dropped the live system and observability hooks.
    for result in repeated.results:
        assert result.system is None
        assert result.obs is None


# ---------------------------------------------------------------------------
# serial/parallel parity


def test_run_points_serial_and_parallel_agree():
    specs = [
        _tiny_spec(system=name, seed=seed)
        for name in ("Carousel Basic", "Natto-RECSF")
        for seed in (0, 1)
    ]
    serial = run_points(specs, jobs=1)
    parallel = run_points(specs, jobs=4)
    assert len(serial) == len(parallel) == len(specs)
    for left, right in zip(serial, parallel):
        assert left.system_name == right.system_name
        assert left.p95_high_ms() == right.p95_high_ms()
        assert left.p95_low_ms() == right.p95_low_ms()
        assert left.goodput() == right.goodput()


def test_figure_sweep_tables_identical_at_any_job_count():
    kwargs = dict(systems=("Carousel Basic", "Natto-RECSF"), rates=(50,))
    serial = figure7.run_ycsbt(TINY, jobs=1, **kwargs)
    parallel = figure7.run_ycsbt(TINY, jobs=4, **kwargs)
    assert serial.keys() == parallel.keys()
    for key in serial:
        assert serial[key].to_json() == parallel[key].to_json()


def test_default_jobs_is_positive():
    assert default_jobs() >= 1


# ---------------------------------------------------------------------------
# trace export under parallel workers


def test_trace_labels_unique_per_point():
    labels = {
        trace_label("fig7-ycsbt", system, x)
        for system in ("Natto-RECSF", "Carousel Basic", "2PL+2PC(P)")
        for x in (50, 150, 250)
    }
    assert len(labels) == 9
    assert trace_label(None, "Natto-RECSF", 50) is None


def test_parallel_trace_export_writes_one_file_per_point(tmp_path):
    trace_dir = str(tmp_path / "traces")
    specs = []
    for system in ("Carousel Basic", "Natto-RECSF"):
        settings = TINY.apply(
            ExperimentSettings(
                tracing=True,
                trace_dir=trace_dir,
                trace_label=trace_label("par", system, 50),
            )
        ).scaled(seed=3)
        specs.append(
            PointSpec(
                system=system,
                x=50,
                input_rate=50.0,
                workload=WorkloadSpec.of(YcsbTWorkload),
                settings=settings,
                repeats=1,
            )
        )
    run_points(specs, jobs=2)
    names = sorted(os.listdir(trace_dir))
    assert names == [
        "par-carousel-basic-x50-seed3000.trace.jsonl",
        "par-natto-recsf-x50-seed3000.trace.jsonl",
    ]


def test_slugify_flattens_labels():
    assert slugify("2PL+2PC(POW)") == "2pl-2pc-pow"
    assert slugify(0.65) == "0.65"
