"""The fault injector: per-kind semantics and deterministic logging.

Uses a two-node Echo network so each fault's effect on delivery timing
is directly observable, plus a small Raft group for the leader-pause
hook.
"""

import numpy as np
import pytest

from repro.cluster import Node
from repro.cluster.placement import PartitionPlacement
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    blackhole,
    clock_skew,
    delay_storm,
    leader_pause,
    link_partition,
    loss_burst,
    region_partition,
    server_crash,
)
from repro.net import Network, azure_topology
from repro.raft import RaftConfig, ReplicationGroup, Role
from repro.sim import Simulator


class Echo(Node):
    def __init__(self, sim, name, dc, **kwargs):
        super().__init__(sim, name, dc, **kwargs)
        self.received = []

    def handle_message(self, message):
        self.received.append((message.method, self.sim.now))


def build(schedule, seed=0):
    sim = Simulator()
    net = Network(sim, azure_topology())
    a = net.register(Echo(sim, "a", "VA"))
    b = net.register(Echo(sim, "b", "SG"))
    injector = FaultInjector(sim, net, schedule, seed=seed).attach()
    return sim, net, a, b, injector


VA_SG_ONE_WAY = 0.107  # seconds, from the Azure topology


def test_region_partition_holds_messages_until_heal():
    schedule = FaultSchedule(
        (region_partition(1.0, 4.0, ["VA"], ["SG", "WA", "PR", "NSW"]),)
    )
    sim, net, a, b, injector = build(schedule)
    sim.schedule(2.0, lambda: net.send(a, "b", "cut", {}))
    sim.schedule(8.0, lambda: net.send(a, "b", "clear", {}))
    sim.run()
    arrivals = dict(b.received)
    # Sent mid-partition: arrives at heal time (5.0), not 2.107.
    assert arrivals["cut"] == pytest.approx(5.0, abs=1e-9)
    # Sent after heal: normal propagation again.
    assert arrivals["clear"] == pytest.approx(8.0 + VA_SG_ONE_WAY, abs=0.005)


def test_partition_preserves_fifo_order_across_heal():
    schedule = FaultSchedule(
        (region_partition(1.0, 4.0, ["VA"], ["SG", "WA", "PR", "NSW"]),)
    )
    sim, net, a, b, injector = build(schedule)

    def send_burst():
        for i in range(3):
            net.send(a, "b", f"m{i}", {})

    sim.schedule(2.0, send_burst)
    sim.run()
    assert [method for method, _ in b.received] == ["m0", "m1", "m2"]


def test_link_partition_only_affects_named_pair():
    schedule = FaultSchedule((link_partition(0.0, 5.0, "VA", "SG"),))
    sim = Simulator()
    net = Network(sim, azure_topology())
    a = net.register(Echo(sim, "a", "VA"))
    b = net.register(Echo(sim, "b", "SG"))
    c = net.register(Echo(sim, "c", "WA"))
    FaultInjector(sim, net, schedule).attach()
    sim.schedule(1.0, lambda: net.send(a, "b", "held", {}))
    sim.schedule(1.0, lambda: net.send(a, "c", "fine", {}))
    sim.run()
    assert dict(b.received)["held"] == pytest.approx(5.0, abs=1e-9)
    assert dict(c.received)["fine"] < 1.2


def test_delay_storm_scales_delivery():
    schedule = FaultSchedule((delay_storm(0.0, 10.0, factor=3.0, extra=0.01),))
    sim, net, a, b, injector = build(schedule)
    sim.schedule(1.0, lambda: net.send(a, "b", "slow", {}))
    sim.run()
    assert dict(b.received)["slow"] == pytest.approx(
        1.0 + 3.0 * VA_SG_ONE_WAY + 0.01, abs=0.005
    )


def test_loss_burst_only_adds_nonnegative_rto_multiples():
    schedule = FaultSchedule((loss_burst(0.0, 100.0, loss_rate=0.5, rto=0.2),))
    sim, net, a, b, injector = build(schedule)
    for i in range(50):
        sim.schedule(float(i), lambda i=i: net.send(a, "b", f"m{i}", {}))
    sim.run()
    assert len(b.received) == 50
    penalties = []
    for method, at in b.received:
        sent = float(method[1:])
        # Never early, never dropped; penalty is retransmission latency
        # (possibly compounded by the per-pair FIFO floor).
        penalty = at - sent - VA_SG_ONE_WAY
        assert penalty >= -1e-9
        penalties.append(penalty)
    assert any(p >= 0.2 - 1e-9 for p in penalties)  # some retransmissions
    assert any(p < 0.2 for p in penalties)  # and some clean deliveries


def test_blackhole_drops_and_counts():
    schedule = FaultSchedule((blackhole(0.0, 5.0, src="a", dst="b"),))
    sim, net, a, b, injector = build(schedule)
    sim.schedule(1.0, lambda: net.send(a, "b", "gone", {}))
    sim.schedule(6.0, lambda: net.send(a, "b", "kept", {}))
    sim.run()
    assert [method for method, _ in b.received] == ["kept"]
    assert net.messages_dropped == 1


def test_server_crash_holds_both_directions_and_stalls_cpu():
    schedule = FaultSchedule((server_crash(1.0, 3.0, "b"),))
    sim = Simulator()
    net = Network(sim, azure_topology())
    a = net.register(Echo(sim, "a", "VA"))
    b = net.register(Echo(sim, "b", "SG", service_time=1e-4))
    FaultInjector(sim, net, schedule).attach()
    sim.schedule(2.0, lambda: net.send(a, "b", "inbound", {}))
    sim.schedule(2.0, lambda: net.send(b, "a", "outbound", {}))
    sim.run()
    # Held until recovery at t=4, then serviced after the CPU stall.
    assert dict(b.received)["inbound"] >= 4.0
    assert dict(a.received)["outbound"] >= 4.0
    assert b.service.busy_until >= 4.0


def test_clock_skew_applies_and_clears_symmetrically():
    schedule = FaultSchedule((clock_skew(1.0, 2.0, "a", 0.5),))
    sim, net, a, b, injector = build(schedule)
    baseline = a.clock.offset
    readings = {}
    sim.schedule(1.5, lambda: readings.update(during=a.clock.offset))
    sim.schedule(4.0, lambda: readings.update(after=a.clock.offset))
    sim.run()
    assert readings["during"] == pytest.approx(baseline + 0.5)
    assert readings["after"] == pytest.approx(baseline)


def test_leader_pause_suppresses_heartbeats_then_resumes():
    sim = Simulator()
    net = Network(sim, azure_topology())
    group = ReplicationGroup(
        sim,
        net,
        PartitionPlacement(0, ("VA", "WA", "PR")),
        config=RaftConfig(heartbeat_interval=0.05, election_timeout=None),
        rng=np.random.default_rng(0),
    )
    leader = group.leader
    schedule = FaultSchedule((leader_pause(1.0, 2.0, leader.name),))
    FaultInjector(sim, net, schedule).attach()
    sent_during = []
    sent_after = []
    sim.schedule(1.5, lambda: sent_during.append(net.messages_sent))
    sim.schedule(2.5, lambda: sent_during.append(net.messages_sent))
    sim.schedule(3.5, lambda: sent_after.append(net.messages_sent))
    sim.schedule(4.5, lambda: sent_after.append(net.messages_sent))
    sim.run(until=5.0)
    assert leader.role is Role.LEADER
    assert not leader.heartbeats_paused
    # No heartbeat traffic while paused; traffic resumes afterwards.
    assert sent_during[1] == sent_during[0]
    assert sent_after[1] > sent_after[0]


def test_fault_log_is_deterministic_and_fingerprinted():
    schedule = FaultSchedule(
        (
            loss_burst(0.5, 2.0, loss_rate=0.3, rto=0.1),
            region_partition(1.0, 2.0, ["VA"], ["SG", "WA", "PR", "NSW"]),
        )
    )

    def run_once():
        sim, net, a, b, injector = build(schedule, seed=9)
        for i in range(10):
            sim.schedule(0.3 * i, lambda i=i: net.send(a, "b", f"m{i}", {}))
        sim.run()
        return injector

    first = run_once()
    second = run_once()
    assert first.log_lines() == second.log_lines()
    assert first.fingerprint() == second.fingerprint()
    # Begin/end transitions for both events, in time order.
    phases = [(entry["phase"], entry["kind"]) for entry in first.log]
    assert phases == [
        ("begin", "loss_burst"),
        ("begin", "region_partition"),
        ("end", "loss_burst"),
        ("end", "region_partition"),
    ]


def test_injector_is_inert_without_active_windows():
    schedule = FaultSchedule((delay_storm(5.0, 1.0, factor=10.0),))
    sim, net, a, b, injector = build(schedule)
    assert injector.active is False
    sim.schedule(0.5, lambda: net.send(a, "b", "early", {}))
    sim.run(until=2.0)
    assert dict(b.received)["early"] == pytest.approx(
        0.5 + VA_SG_ONE_WAY, abs=0.005
    )


def test_attach_twice_rejected():
    schedule = FaultSchedule()
    sim, net, a, b, injector = build(schedule)
    with pytest.raises(RuntimeError):
        injector.attach()
