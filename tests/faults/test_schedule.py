"""Fault schedules: validation, serialization and seeded generation."""

import json

import pytest

from repro.faults import (
    FaultEvent,
    FaultSchedule,
    blackhole,
    clock_skew,
    delay_storm,
    leader_pause,
    link_partition,
    loss_burst,
    random_schedule,
    region_partition,
    server_crash,
)

DCS = ["VA", "WA", "PR", "NSW", "SG"]


def _sample_schedule():
    return FaultSchedule(
        (
            region_partition(1.0, 2.0, ["VA", "WA"], ["PR", "NSW", "SG"]),
            link_partition(2.0, 1.0, "VA", "SG"),
            loss_burst(0.5, 3.0, loss_rate=0.2, rto=0.05),
            delay_storm(4.0, 1.5, factor=3.0, extra=0.01),
            server_crash(5.0, 2.0, "p0-WA"),
            leader_pause(6.0, 0.5, "p0-VA"),
            clock_skew(1.5, 4.0, "p1-PR", 0.02),
            blackhole(7.0, 0.1, src="p0-VA"),
        )
    )


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent("meteor_strike", 0.0, 1.0)
    with pytest.raises(ValueError):
        FaultEvent("loss_burst", -1.0, 1.0)
    with pytest.raises(ValueError):
        FaultEvent("loss_burst", 0.0, 0.0)


def test_event_window():
    event = loss_burst(1.5, 2.5, loss_rate=0.1)
    assert event.end == 4.0
    assert event.describe().startswith("loss_burst[1.500s +2.500s]")


def test_schedule_json_round_trip_is_lossless():
    schedule = _sample_schedule()
    restored = FaultSchedule.from_json(schedule.to_json())
    assert restored == schedule
    # Floats survive exactly (json uses repr round-tripping).
    assert restored[3].params["extra"] == 0.01
    # And the JSON itself is canonical: re-serializing is a fixpoint.
    assert restored.to_json() == schedule.to_json()


def test_schedule_without_removes_one_event():
    schedule = _sample_schedule()
    smaller = schedule.without(2)
    assert len(smaller) == len(schedule) - 1
    assert all(event.kind != "loss_burst" for event in smaller)
    assert schedule[2].kind == "loss_burst"  # original untouched


def test_schedule_horizon():
    assert FaultSchedule().horizon == 0.0
    assert _sample_schedule().horizon == 7.1


def test_random_schedule_is_deterministic():
    kwargs = dict(
        horizon=10.0,
        datacenters=DCS,
        crashable=["p0-WA", "p1-PR"],
        pausable=["p0-VA"],
        skewable=["p0-VA", "p0-WA"],
    )
    a = random_schedule(42, **kwargs)
    b = random_schedule(42, **kwargs)
    assert a == b
    assert a.to_json() == b.to_json()
    assert random_schedule(43, **kwargs) != a


def test_random_schedule_respects_capabilities():
    # No crashable/pausable/skewable targets: only network-level kinds.
    schedule = random_schedule(
        0, horizon=10.0, datacenters=DCS, num_events=50
    )
    kinds = {event.kind for event in schedule}
    assert kinds <= {
        "loss_burst",
        "delay_storm",
        "region_partition",
        "link_partition",
    }
    # Blackholes are never generated (they hang TCP-modeled protocols).
    assert "blackhole" not in kinds


def test_random_schedule_windows_inside_horizon():
    schedule = random_schedule(
        7, horizon=10.0, datacenters=DCS, num_events=30
    )
    for event in schedule:
        assert 0.0 <= event.start <= 7.0  # first 70% of the horizon
        assert event.duration > 0.0


def test_random_partitions_are_proper_cuts():
    schedule = random_schedule(3, horizon=10.0, datacenters=DCS, num_events=40)
    for event in schedule:
        if event.kind == "region_partition":
            group_a = set(event.params["group_a"])
            group_b = set(event.params["group_b"])
            assert group_a and group_b
            assert not group_a & group_b
            assert group_a | group_b == set(DCS)
        elif event.kind == "link_partition":
            assert event.params["dc_a"] != event.params["dc_b"]


def test_schedule_dict_round_trip_via_plain_json():
    # The artifact path serializes through json.dumps on a plain dict.
    schedule = _sample_schedule()
    restored = FaultSchedule.from_dict(
        json.loads(json.dumps(schedule.to_dict()))
    )
    assert restored == schedule
