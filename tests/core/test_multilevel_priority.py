"""Tests for the multi-level priority extension (paper future work).

Three levels (LOW < MEDIUM < HIGH); every Natto mechanism compares
priorities relationally, so HIGH preempts MEDIUM preempts LOW.
"""

from repro.cluster.partition import Partitioner
from repro.core.config import natto_pa, natto_ts
from repro.core.server import NattoParticipant
from repro.net.network import Network
from repro.net.topology import azure_topology
from repro.raft.node import RaftConfig
from repro.sim import Simulator
from repro.txn.priority import Priority


def build(config):
    sim = Simulator()
    net = Network(sim, azure_topology())
    server = NattoParticipant(
        sim,
        net,
        "p0-VA",
        "VA",
        peers=["p0-VA"],
        config=RaftConfig(election_timeout=None),
        natto_config=config,
        partitioner=Partitioner(1),
    )
    server.current_term = 1
    server.become_leader()

    class Sink:
        pass

    from tests.core.test_natto_server_unit import Recorder

    client = Recorder(sim, "client")
    coord = Recorder(sim, "coord")
    net.register(client)
    net.register(coord)
    return sim, server, client, coord


def rap(txn, ts, priority, keys=("k",)):
    return {
        "txn": txn,
        "ts": ts,
        "priority": int(priority),
        "full_reads": list(keys),
        "full_writes": list(keys),
        "coordinator": "coord",
        "client": "client",
        "participants": [0],
        "arrival_estimates": {0: ts},
        "max_owd": 0.05,
    }


def test_priority_order():
    assert Priority.LOW < Priority.MEDIUM < Priority.HIGH
    assert not Priority.LOW.uses_locking
    assert Priority.MEDIUM.uses_locking
    assert Priority.HIGH.uses_locking


def test_medium_priority_uses_locking_prepare():
    sim, server, client, coord = build(natto_ts())
    server.handle_read_and_prepare(rap("t1", 0.05, Priority.LOW), "client")
    r2 = server.handle_read_and_prepare(
        rap("t2", 0.06, Priority.MEDIUM), "client"
    )
    sim.run(until=1.0)
    # MEDIUM waits for the conflicting earlier LOW instead of aborting.
    assert not r2.done
    assert [t.txn for t in server.waiting] == ["t2"]


def test_high_evicts_medium_and_low_in_queue():
    sim, server, client, coord = build(natto_pa())
    r_low = server.handle_read_and_prepare(
        rap("tlow", 0.20, Priority.LOW), "client"
    )
    r_mid = server.handle_read_and_prepare(
        rap("tmid", 0.21, Priority.MEDIUM), "client"
    )
    server.handle_read_and_prepare(rap("thigh", 0.22, Priority.HIGH), "client")
    assert server.stats["priority_aborts"] == 2
    assert r_low.value["ok"] is False
    assert r_mid.value["ok"] is False
    assert [t.txn for t in server.queue] == ["thigh"]


def test_medium_evicts_low_but_not_high():
    sim, server, client, coord = build(natto_pa())
    r_low = server.handle_read_and_prepare(
        rap("tlow", 0.20, Priority.LOW), "client"
    )
    server.handle_read_and_prepare(rap("thigh", 0.21, Priority.HIGH), "client")
    server.handle_read_and_prepare(rap("tmid", 0.22, Priority.MEDIUM), "client")
    # tlow evicted (by high and/or medium); thigh untouched; tmid queued.
    assert r_low.value["ok"] is False
    assert [t.txn for t in server.queue] == ["thigh", "tmid"]


def test_arriving_low_yields_to_queued_medium():
    sim, server, client, coord = build(natto_pa())
    server.handle_read_and_prepare(rap("tmid", 0.30, Priority.MEDIUM), "client")
    r_low = server.handle_read_and_prepare(
        rap("tlow", 0.29, Priority.LOW), "client"
    )
    assert r_low.value["ok"] is False  # priority-aborted on arrival
    assert server.stats["priority_aborts"] == 1


def test_equal_priorities_never_preempt_each_other():
    sim, server, client, coord = build(natto_pa())
    server.handle_read_and_prepare(rap("t1", 0.20, Priority.MEDIUM), "client")
    server.handle_read_and_prepare(rap("t2", 0.21, Priority.MEDIUM), "client")
    assert server.stats["priority_aborts"] == 0
    assert len(server.queue) == 2


def test_three_levels_end_to_end():
    from tests.helpers import build_system, rmw_spec
    from repro.core import Natto

    cluster, clients, stats = build_system(
        Natto(natto_pa()), client_dcs=["VA"]
    )
    cluster.sim.run(until=2.5)
    client = clients[0]

    def staged():
        client.submit(rmw_spec("tl", ["hot"], priority=Priority.LOW))
        yield 0.01
        client.submit(rmw_spec("tm", ["hot"], priority=Priority.MEDIUM))
        yield 0.01
        client.submit(rmw_spec("th", ["hot"], priority=Priority.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=60.0)
    assert all(r.committed for r in stats.records)
    high = next(r for r in stats.records if r.priority is Priority.HIGH)
    assert high.retries == 0
