"""Direct-drive unit tests for the Natto coordinator's vote machine."""

from repro.cluster.node import Node
from repro.cluster.partition import Partitioner
from repro.core.coordinator import NattoCoordinator
from repro.net.network import Network
from repro.net.topology import azure_topology
from repro.raft.node import RaftConfig
from repro.sim import Simulator


class Recorder(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name, "VA")
        self.events = []

    def handle_txn_event(self, payload, src):
        self.events.append(payload)

    def handle_commit_txn(self, payload, src):
        self.events.append(payload)

    def handle_message(self, message):
        self.events.append(message.payload)


def build():
    sim = Simulator()
    net = Network(sim, azure_topology())
    leaders = {0: "leader0", 1: "leader1"}
    coord = NattoCoordinator(
        sim,
        net,
        "p1000-VA",
        "VA",
        peers=["p1000-VA"],
        config=RaftConfig(election_timeout=None),
        partitioner=Partitioner(2),
        leader_names=leaders,
    )
    coord.current_term = 1
    coord.become_leader()
    client = Recorder(sim, "client")
    net.register(client)
    net.register(Recorder(sim, "leader0"))
    net.register(Recorder(sim, "leader1"))
    return sim, coord, client


def vote(coord, txn, pid, epoch=0, conditional=None, vote="yes"):
    coord.handle_vote(
        {
            "txn": txn,
            "partition": pid,
            "vote": vote,
            "epoch": epoch,
            "conditional": conditional,
            "participants": [0, 1],
            "client": "client",
        },
        "leaderX",
    )


def commit_request(coord, txn, epochs):
    coord.handle_commit_request(
        {
            "txn": txn,
            "client": "client",
            "participants": [0, 1],
            "writes": {"k": "v"},
            "epochs": epochs,
        },
        "client",
    )


def decisions(client):
    return [e for e in client.events if e.get("kind") == "decision"]


def test_commits_when_all_votes_firm_and_epochs_match():
    sim, coord, client = build()
    vote(coord, "t1", 0)
    vote(coord, "t1", 1)
    commit_request(coord, "t1", {0: 0, 1: 0})
    sim.run(until=1.0)
    assert decisions(client) == [
        {"txn": "t1", "kind": "decision", "committed": True}
    ]


def test_conditional_vote_blocks_commit_until_resolved():
    sim, coord, client = build()
    vote(coord, "t1", 0)
    vote(coord, "t1", 1, conditional=["blocker"])
    commit_request(coord, "t1", {0: 0, 1: 0})
    sim.run(until=1.0)
    assert decisions(client) == []  # waiting on the condition
    coord.handle_condition_resolved(
        {"txn": "t1", "partition": 1, "ok": True, "epoch": 0}, "leader1"
    )
    sim.run(until=2.0)
    assert decisions(client)[0]["committed"] is True


def test_failed_condition_discards_vote_and_waits_for_new_epoch():
    sim, coord, client = build()
    vote(coord, "t1", 0)
    vote(coord, "t1", 1, conditional=["blocker"])
    commit_request(coord, "t1", {0: 0, 1: 0})
    coord.handle_condition_resolved(
        {"txn": "t1", "partition": 1, "ok": False, "epoch": 0}, "leader1"
    )
    sim.run(until=1.0)
    assert decisions(client) == []
    # The normal path re-votes at epoch 1 and the client re-sends writes
    # computed from the epoch-1 reads.
    vote(coord, "t1", 1, epoch=1)
    commit_request(coord, "t1", {0: 0, 1: 1})
    sim.run(until=2.0)
    assert decisions(client)[-1]["committed"] is True


def test_epoch_mismatch_blocks_commit():
    """Writes computed from stale (conditional) reads must not commit
    against a newer-epoch vote."""
    sim, coord, client = build()
    vote(coord, "t1", 0)
    vote(coord, "t1", 1, epoch=1)        # normal path, second epoch
    commit_request(coord, "t1", {0: 0, 1: 0})  # stale client writes
    sim.run(until=1.0)
    assert decisions(client) == []
    commit_request(coord, "t1", {0: 0, 1: 1})  # recomputed writes
    sim.run(until=2.0)
    assert decisions(client)[-1]["committed"] is True


def test_no_vote_aborts_immediately():
    sim, coord, client = build()
    vote(coord, "t1", 0, vote="no")
    sim.run(until=1.0)
    assert decisions(client) == [
        {"txn": "t1", "kind": "decision", "committed": False}
    ]


def test_recsf_forward_served_on_commit():
    sim, coord, client = build()
    coord.handle_recsf_forward(
        {
            "txn": "t1",
            "reader": "t2",
            "reader_client": "client",
            "partition": 0,
            "keys": ["k"],
        },
        "leader0",
    )
    vote(coord, "t1", 0)
    vote(coord, "t1", 1)
    commit_request(coord, "t1", {0: 0, 1: 0})
    sim.run(until=1.0)
    recsf = [e for e in client.events if e.get("kind") == "recsf_reads"]
    assert recsf == [
        {
            "txn": "t2",
            "kind": "recsf_reads",
            "partition": 0,
            "values": {"k": "v"},
        }
    ]


def test_recsf_forward_dropped_on_abort():
    sim, coord, client = build()
    coord.handle_recsf_forward(
        {
            "txn": "t1",
            "reader": "t2",
            "reader_client": "client",
            "partition": 0,
            "keys": ["k"],
        },
        "leader0",
    )
    vote(coord, "t1", 0, vote="no")
    sim.run(until=1.0)
    assert [e for e in client.events if e.get("kind") == "recsf_reads"] == []


def test_recsf_forward_after_commit_served_immediately():
    sim, coord, client = build()
    vote(coord, "t1", 0)
    vote(coord, "t1", 1)
    commit_request(coord, "t1", {0: 0, 1: 0})
    sim.run(until=1.0)
    coord.handle_recsf_forward(
        {
            "txn": "t1",
            "reader": "t2",
            "reader_client": "client",
            "partition": 0,
            "keys": ["k"],
        },
        "leader0",
    )
    sim.run(until=2.0)
    assert [e for e in client.events if e.get("kind") == "recsf_reads"]


def test_rereplication_on_updated_writes():
    """A second commit request re-replicates; only the latest version's
    durability enables the commit."""
    sim, coord, client = build()
    commit_request(coord, "t1", {0: 0, 1: 0})
    commit_request(coord, "t1", {0: 0, 1: 1})
    vote(coord, "t1", 0)
    vote(coord, "t1", 1, epoch=1)
    sim.run(until=2.0)
    assert decisions(client)[-1]["committed"] is True
    assert getattr(coord.txn_state("t1"), "writes_version", 0) == 2
