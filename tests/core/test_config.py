"""Tests for the Natto variant ladder."""

from repro.core import natto_cp, natto_lecsf, natto_pa, natto_recsf, natto_ts
from repro.core.config import NattoConfig


def test_ladder_is_cumulative():
    assert natto_ts() == NattoConfig()
    assert natto_lecsf().lecsf and not natto_lecsf().pa
    assert natto_pa().lecsf and natto_pa().pa and not natto_pa().cp
    assert natto_cp().pa and natto_cp().cp and not natto_cp().recsf
    full = natto_recsf()
    assert full.lecsf and full.pa and full.cp and full.recsf


def test_variant_names_match_paper_labels():
    assert natto_ts().variant_name == "Natto-TS"
    assert natto_lecsf().variant_name == "Natto-LECSF"
    assert natto_pa().variant_name == "Natto-PA"
    assert natto_cp().variant_name == "Natto-CP"
    assert natto_recsf().variant_name == "Natto-RECSF"


def test_default_margin_is_small_but_positive():
    config = natto_ts()
    assert 0.0 < config.timestamp_margin < 0.01


def test_overrides():
    config = natto_recsf(timestamp_margin=0.0)
    assert config.timestamp_margin == 0.0
    promoted = config.with_overrides(promote_after_aborts=2)
    assert promoted.promote_after_aborts == 2
    assert config.promote_after_aborts is None  # frozen original


def test_promotion_off_by_default():
    assert natto_recsf().promote_after_aborts is None


def test_configs_are_hashable_and_comparable():
    assert natto_pa() == natto_pa()
    assert natto_pa() != natto_cp()
    assert hash(natto_pa()) == hash(natto_pa())
