"""Starvation mitigation: promotion after repeated priority aborts.

§3.3.1: "a low-priority transaction can be promoted to high priority if
it is aborted one or more times."  With ``promote_after_aborts=n``, a
low-priority transaction's (n+1)-th attempt runs at high priority, so a
steady stream of high-priority traffic cannot starve it forever.
"""

from repro.core import Natto, natto_pa
from repro.txn.priority import Priority

from tests.helpers import build_system, rmw_spec

WARMUP = 2.5


def run_scenario(promote_after):
    cluster, clients, stats = build_system(
        Natto(natto_pa(promote_after_aborts=promote_after)),
        client_dcs=["VA"],
    )
    cluster.sim.run(until=WARMUP)
    client = clients[0]

    def staged():
        # The victim: a low-priority transaction on the hot key.
        client.submit(rmw_spec("victim", ["hot", "far"], priority=Priority.LOW))
        # A dense stream of conflicting high-priority transactions: the
        # victim's ~110 ms buffering window (the far participant's
        # timestamp) always contains at least one VIP arrival, so every
        # attempt is priority-abortable until promotion kicks in.
        for i in range(30):
            yield 0.05
            client.submit(
                rmw_spec(f"vip-{i}", ["hot", "far"], priority=Priority.HIGH)
            )

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 120)
    victim = next(r for r in stats.records if r.txn_id == "victim")
    return victim


def test_promotion_bounds_the_victims_retries():
    without = run_scenario(promote_after=None)
    with_promotion = run_scenario(promote_after=2)
    assert with_promotion.committed
    # Once promoted, the victim stops being priority-abortable, so its
    # retry count is capped near the promotion threshold.
    assert with_promotion.retries <= 4
    # Without promotion the victim suffers more under the same stream.
    assert without.retries > with_promotion.retries


def test_promotion_preserves_commitment_of_everyone():
    cluster, clients, stats = build_system(
        Natto(natto_pa(promote_after_aborts=1)), client_dcs=["VA"]
    )
    cluster.sim.run(until=WARMUP)
    client = clients[0]

    def staged():
        client.submit(rmw_spec("victim", ["hot"], priority=Priority.LOW))
        for i in range(5):
            yield 0.1
            client.submit(
                rmw_spec(f"vip-{i}", ["hot"], priority=Priority.HIGH)
            )

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
