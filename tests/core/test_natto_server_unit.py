"""Direct-drive unit tests for the Natto participant server.

These bypass the client protocol and feed crafted payloads straight to
one participant leader, so branches that are hard to reach end-to-end
(mispredicted conditional prepares, late-arrival rules, tombstones) get
deterministic coverage.
"""

import pytest

from repro.cluster.node import Node
from repro.cluster.partition import Partitioner
from repro.cluster.placement import PartitionPlacement
from repro.core.config import natto_cp, natto_recsf, natto_ts
from repro.core.server import NattoParticipant
from repro.net.network import Network
from repro.net.topology import azure_topology
from repro.raft.node import RaftConfig
from repro.sim import Simulator


class Recorder(Node):
    """Stub client/coordinator that records every message."""

    def __init__(self, sim, name):
        super().__init__(sim, name, "VA")
        self.messages = []

    def handle_message(self, message):
        self.messages.append((message.method, message.payload))

    def handle_txn_event(self, payload, src):
        self.messages.append(("txn_event", payload))

    def handle_vote(self, payload, src):
        self.messages.append(("vote", payload))

    def handle_condition_resolved(self, payload, src):
        self.messages.append(("condition_resolved", payload))

    def handle_recsf_forward(self, payload, src):
        self.messages.append(("recsf_forward", payload))

    def of_kind(self, kind):
        return [p for (m, p) in self.messages if m == kind]


def build(config):
    sim = Simulator()
    net = Network(sim, azure_topology())
    server = NattoParticipant(
        sim,
        net,
        "p0-VA",
        "VA",
        peers=["p0-VA"],  # single-replica group: propose commits instantly
        config=RaftConfig(election_timeout=None),
        natto_config=config,
        partitioner=Partitioner(8),
    )
    # RaftReplica registers itself with the network at construction.
    server.current_term = 1
    server.become_leader()
    client = Recorder(sim, "client")
    coord = Recorder(sim, "coord")
    net.register(client)
    net.register(coord)
    return sim, server, client, coord


PARTITIONER = Partitioner(8)


def key_on(pid, tag="k"):
    """A key name that hashes to partition ``pid``."""
    i = 0
    while True:
        key = f"{tag}-{i}"
        if PARTITIONER.partition_of(key) == pid:
            return key
        i += 1


K0 = key_on(0)          # a key on the server's own partition
K7 = key_on(7, "r")     # a key on the "remote" partition 7


def rap(txn, ts, priority, keys, arrival_estimates=None, max_owd=0.05):
    return {
        "txn": txn,
        "ts": ts,
        "priority": priority,
        "full_reads": list(keys),
        "full_writes": list(keys),
        "coordinator": "coord",
        "client": "client",
        "participants": [0],
        "arrival_estimates": arrival_estimates or {0: ts},
        "max_owd": max_owd,
    }


def test_prepare_serves_reads_and_votes_after_replication():
    sim, server, client, coord = build(natto_ts())
    reply = server.handle_read_and_prepare(rap("t1", 0.05, 0, [K0]), "client")
    sim.run(until=1.0)
    assert reply.value["ok"] is True
    assert K0 in reply.value["values"]
    votes = coord.of_kind("vote")
    assert votes and votes[0]["vote"] == "yes"
    assert "t1" in server.prepared


def test_low_priority_conflict_aborts_at_dispatch():
    sim, server, client, coord = build(natto_ts())
    server.handle_read_and_prepare(rap("t1", 0.05, 0, [K0]), "client")
    r2 = server.handle_read_and_prepare(rap("t2", 0.06, 0, [K0]), "client")
    sim.run(until=1.0)
    assert r2.value["ok"] is False
    assert server.stats["occ_aborts"] == 1
    no_votes = [v for v in coord.of_kind("vote") if v["vote"] == "no"]
    assert [v["txn"] for v in no_votes] == ["t2"]


def test_high_priority_conflict_waits_then_prepares():
    sim, server, client, coord = build(natto_ts())
    server.handle_read_and_prepare(rap("t1", 0.05, 0, [K0]), "client")
    r2 = server.handle_read_and_prepare(rap("t2", 0.06, 1, [K0]), "client")
    sim.run(until=1.0)
    assert not r2.done  # waiting, not aborted
    server.handle_commit_txn({"txn": "t1", "decision": True,
                              "writes": {K0: "v1"}}, "coord")
    sim.run(until=2.0)
    assert r2.value["ok"] is True
    # Without LECSF the read must still see t1's committed write.
    assert r2.value["values"][K0] == "v1"


def test_late_high_priority_with_smaller_ts_conflict_aborts():
    sim, server, client, coord = build(natto_ts())
    server.handle_read_and_prepare(rap("t1", 0.01, 0, [K0]), "client")
    sim.run(until=0.5)  # t1 dispatched and prepared; clock now 0.5
    late = server.handle_read_and_prepare(rap("t2", 0.02, 1, [K0]), "client")
    assert late.value["ok"] is False
    assert server.stats["late_aborts"] == 1


def test_late_transaction_without_conflict_proceeds():
    sim, server, client, coord = build(natto_ts())
    sim.run(until=0.5)
    late = server.handle_read_and_prepare(
        rap("t1", 0.01, 1, [key_on(0, "solo")]), "client"
    )
    sim.run(until=1.0)
    assert late.value["ok"] is True


def test_late_low_priority_aborts_if_larger_ts_conflict_dispatched():
    sim, server, client, coord = build(natto_ts())
    server.handle_read_and_prepare(rap("t2", 0.01, 0, [K0]), "client")
    sim.run(until=0.5)  # t2 (ts 0.01) prepared
    late = server.handle_read_and_prepare(rap("t1", 0.005, 0, [K0]), "client")
    assert late.value["ok"] is False
    assert server.stats["late_aborts"] == 1


def test_abort_tombstone_refuses_reordered_request():
    sim, server, client, coord = build(natto_ts())
    # The abort decision arrives before the read-and-prepare.
    server.handle_commit_txn({"txn": "ghost", "decision": False,
                              "writes": None}, "coord")
    reply = server.handle_read_and_prepare(
        rap("ghost", 0.05, 0, [K0]), "client"
    )
    assert reply.value["ok"] is False
    assert server.queue == []
    assert "ghost" not in server.prepared


def test_conditional_prepare_failure_falls_back_to_normal_path():
    sim, server, client, coord = build(natto_cp())
    # tlow prepared here; its participants include remote partition 7.
    low = rap("tlow", 0.01, 0, [K0, K7])
    low["participants"] = [0, 7]
    low["arrival_estimates"] = {0: 0.01, 7: 0.01}
    server.handle_read_and_prepare(low, "client")
    sim.run(until=0.1)
    assert "tlow" in server.prepared

    # thigh conflicts here and at "partition 7"; its estimates claim it
    # reaches 7 before tlow's timestamp -> predicted priority abort.
    high = rap("thigh", 0.12, 1, [K0, K7])
    high["participants"] = [0, 7]
    high["arrival_estimates"] = {0: 0.12, 7: 0.005}
    reply = server.handle_read_and_prepare(high, "client")
    sim.run(until=0.3)
    assert server.stats["conditional_prepares"] == 1
    assert reply.value["epoch"] == 0
    cond_votes = [v for v in coord.of_kind("vote") if v.get("conditional")]
    assert cond_votes and cond_votes[0]["txn"] == "thigh"

    # The prediction was wrong: tlow COMMITS.
    server.handle_commit_txn(
        {"txn": "tlow", "decision": True, "writes": {K0: "vlow"}}, "coord"
    )
    sim.run(until=0.6)
    assert server.stats["conditions_failed"] == 1
    resolved = coord.of_kind("condition_resolved")
    assert resolved and resolved[0]["ok"] is False
    # Normal path re-prepared thigh with a bumped epoch and fresh reads.
    events = [p for p in client.of_kind("txn_event") if p["kind"] == "reads"]
    assert events and events[-1]["epoch"] == 1
    assert events[-1]["values"][K0] == "vlow"  # post-tlow state
    epoch1_votes = [
        v for v in coord.of_kind("vote")
        if v["txn"] == "thigh" and v.get("epoch") == 1
    ]
    assert epoch1_votes and not epoch1_votes[0].get("conditional")


def test_conditional_prepare_success_upgrades_in_place():
    sim, server, client, coord = build(natto_cp())
    low = rap("tlow", 0.01, 0, [K0, K7])
    low["participants"] = [0, 7]
    low["arrival_estimates"] = {0: 0.01, 7: 0.01}
    server.handle_read_and_prepare(low, "client")
    sim.run(until=0.1)
    high = rap("thigh", 0.12, 1, [K0, K7])
    high["participants"] = [0, 7]
    high["arrival_estimates"] = {0: 0.12, 7: 0.005}
    server.handle_read_and_prepare(high, "client")
    sim.run(until=0.3)
    # The prediction was right: tlow ABORTS (priority abort elsewhere).
    server.handle_commit_txn(
        {"txn": "tlow", "decision": False, "writes": None}, "coord"
    )
    sim.run(until=0.6)
    assert server.stats["conditions_ok"] == 1
    resolved = coord.of_kind("condition_resolved")
    assert resolved and resolved[0]["ok"] is True
    assert "thigh" in server.prepared
    assert server.waiting == []


def test_recsf_forward_sent_for_blocked_high_priority():
    sim, server, client, coord = build(natto_recsf())
    server.handle_read_and_prepare(rap("tlow", 0.01, 0, [K0]), "client")
    sim.run(until=0.1)
    # High-priority conflict, no CP prediction (no common remote pid).
    server.handle_read_and_prepare(rap("thigh", 0.12, 1, [K0]), "client")
    sim.run(until=0.3)
    forwards = coord.of_kind("recsf_forward")
    assert forwards
    assert forwards[0]["txn"] == "tlow"
    assert forwards[0]["reader"] == "thigh"
    assert forwards[0]["keys"] == [K0]


def test_queue_dispatches_in_timestamp_order_not_arrival_order():
    sim, server, client, coord = build(natto_ts())
    order = []
    r_late_ts = server.handle_read_and_prepare(
        rap("bigger-ts", 0.30, 0, [key_on(0, "a")]), "client"
    )
    r_early_ts = server.handle_read_and_prepare(
        rap("smaller-ts", 0.20, 0, [key_on(0, "b")]), "client"
    )
    r_early_ts.add_done_callback(lambda f: order.append("smaller-ts"))
    r_late_ts.add_done_callback(lambda f: order.append("bigger-ts"))
    sim.run(until=1.0)
    assert order == ["smaller-ts", "bigger-ts"]


def test_priority_abort_on_queue_insert():
    sim, server, client, coord = build(
        natto_cp()  # pa enabled via the ladder
    )
    r_low = server.handle_read_and_prepare(rap("tlow", 0.20, 0, [K0]), "client")
    server.handle_read_and_prepare(rap("thigh", 0.21, 1, [K0]), "client")
    assert server.stats["priority_aborts"] == 1
    assert r_low.value["ok"] is False
    assert [t.txn for t in server.queue] == ["thigh"]


def test_arriving_low_yields_to_queued_higher_priority():
    sim, server, client, coord = build(natto_cp())
    # High-priority conflict already queued with a *larger* timestamp;
    # the arriving low-priority transaction must refuse itself (the
    # yield branch of PA, which scans queue then waiting).
    server.handle_read_and_prepare(rap("thigh", 0.30, 1, [K0]), "client")
    r_low = server.handle_read_and_prepare(rap("tlow", 0.20, 0, [K0]), "client")
    assert r_low.value["ok"] is False
    assert server.stats["priority_aborts"] == 1
    assert [t.txn for t in server.queue] == ["thigh"]
    sim.run(until=0.1)  # deliver the no-vote to the coordinator
    no_votes = [v for v in coord.of_kind("vote") if v["vote"] == "no"]
    assert [v["txn"] for v in no_votes] == ["tlow"]


def test_priority_abort_skip_rule_unit():
    sim, server, client, coord = build(natto_cp())
    # tlow's completion estimate: ts + 2*max_owd + 0.05 = 0.2+0.06+0.05.
    server.handle_read_and_prepare(
        rap("tlow", 0.20, 0, [K0], max_owd=0.03), "client"
    )
    # thigh executes comfortably after that -> no need to abort.
    server.handle_read_and_prepare(rap("thigh", 0.90, 1, [K0]), "client")
    assert server.stats["priority_aborts"] == 0
    assert len(server.queue) == 2
