"""Scenario tests for Natto's prioritization mechanisms (PA/CP/ECSF).

These use deterministic clocks (zero skew) and hand-placed keys so each
mechanism fires in a controlled geometry mirroring the paper's Figures
3-6.
"""

import pytest

from repro.cluster.clock import ClockConfig
from repro.core import (
    Natto,
    natto_cp,
    natto_lecsf,
    natto_pa,
    natto_recsf,
    natto_ts,
)
from repro.systems.base import SystemConfig
from repro.txn.priority import Priority

from tests.helpers import build_system, rmw_spec

WARMUP = 2.5


def key_for_partition(partitioner, pid, salt=""):
    i = 0
    while True:
        key = f"key{salt}-{i}"
        if partitioner.partition_of(key) == pid:
            return key
        i += 1


def exact_clock_config():
    return SystemConfig(clock=ClockConfig(max_offset=0.0))


def build(config, client_dcs, seed=0):
    cluster, clients, stats = build_system(
        Natto(config),
        config=exact_clock_config(),
        client_dcs=client_dcs,
        seed=seed,
    )
    cluster.sim.run(until=WARMUP)
    return cluster, clients, stats


def leader_stats(system, name):
    return {
        pid: group.leader.stats[name] for pid, group in system.groups.items()
    }


# ---------------------------------------------------------------------------
# Priority Abort (Figure 3)


def test_priority_abort_evicts_queued_low_priority_transaction():
    cluster, clients, stats = build(natto_pa(), ["VA"])
    partitioner = cluster.partitioner
    near = key_for_partition(partitioner, 0)   # leader in VA
    far = key_for_partition(partitioner, 4)    # leader in SG
    client = clients[0]

    def staged():
        # Low-priority txn: buffered at the VA leader until its (far-
        # dominated) timestamp.
        client.submit(rmw_spec("tlow", [near, far], priority=Priority.LOW))
        yield 0.020
        # High-priority txn with a larger timestamp conflicts at VA while
        # tlow is still queued there -> priority abort.
        client.submit(rmw_spec("thigh", [near, far], priority=Priority.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
    high = next(r for r in stats.records if r.priority is Priority.HIGH)
    low = next(r for r in stats.records if r.priority is Priority.LOW)
    assert high.retries == 0
    assert low.retries >= 1  # it was priority-aborted and retried
    aborts = leader_stats(client.system, "priority_aborts")
    assert sum(aborts.values()) >= 1


def test_priority_abort_skipped_when_low_priority_completes_in_time():
    """The completion-time estimate: a low-priority transaction that will
    finish well before the high-priority execution time is left alone."""
    cluster, clients, stats = build(natto_pa(), ["VA"])
    partitioner = cluster.partitioner
    near = key_for_partition(partitioner, 0)   # VA-only: tiny timestamp
    far = key_for_partition(partitioner, 4)
    client = clients[0]

    def staged():
        client.submit(rmw_spec("tlow", [near], priority=Priority.LOW))
        yield 0.005
        # The high-priority timestamp is ~107 ms out (SG participant);
        # tlow completes in ~50 ms, so no abort is necessary.
        client.submit(rmw_spec("thigh", [near, far], priority=Priority.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
    assert all(r.retries == 0 for r in stats.records)
    aborts = leader_stats(clients[0].system, "priority_aborts")
    assert sum(aborts.values()) == 0


def test_without_pa_low_priority_is_not_evicted():
    cluster, clients, stats = build(natto_lecsf(), ["VA"])
    partitioner = cluster.partitioner
    near = key_for_partition(partitioner, 0)
    far = key_for_partition(partitioner, 4)
    client = clients[0]

    def staged():
        client.submit(rmw_spec("tlow", [near, far], priority=Priority.LOW))
        yield 0.020
        client.submit(rmw_spec("thigh", [near, far], priority=Priority.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
    low = next(r for r in stats.records if r.priority is Priority.LOW)
    assert low.retries == 0  # never aborted
    aborts = leader_stats(client.system, "priority_aborts")
    assert sum(aborts.values()) == 0


def test_pa_reduces_high_priority_latency():
    latencies = {}
    for label, config in (("pa", natto_pa()), ("no_pa", natto_lecsf())):
        cluster, clients, stats = build(config, ["VA"])
        partitioner = cluster.partitioner
        near = key_for_partition(partitioner, 0)
        far = key_for_partition(partitioner, 4)
        client = clients[0]

        def staged():
            client.submit(rmw_spec("tlow", [near, far], priority=Priority.LOW))
            yield 0.020
            client.submit(
                rmw_spec("thigh", [near, far], priority=Priority.HIGH)
            )

        cluster.sim.spawn(staged())
        cluster.sim.run(until=WARMUP + 60)
        high = next(r for r in stats.records if r.priority is Priority.HIGH)
        latencies[label] = high.latency
    assert latencies["pa"] < latencies["no_pa"]


# ---------------------------------------------------------------------------
# Conditional Prepare (Figure 4)


def test_conditional_prepare_fires_and_condition_succeeds():
    # Client (and thus coordinator) in WA; the blocker partition's leader
    # is in VA, so the priority-abort notification detours WA before
    # reaching SG — leaving a ~60 ms window where SG holds the prepared
    # low-priority transaction and must conditionally prepare.
    cluster, clients, stats = build(natto_cp(), ["WA"])
    partitioner = cluster.partitioner
    near = key_for_partition(partitioner, 0)   # participant A (VA)
    far = key_for_partition(partitioner, 4)    # participant B (SG)
    client = clients[0]

    def staged():
        client.submit(rmw_spec("tlow", [near, far], priority=Priority.LOW))
        yield 0.020
        client.submit(rmw_spec("thigh", [near, far], priority=Priority.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
    high = next(r for r in stats.records if r.priority is Priority.HIGH)
    assert high.retries == 0
    system = client.system
    cps = leader_stats(system, "conditional_prepares")
    oks = leader_stats(system, "conditions_ok")
    # tlow was priority-aborted at VA; at SG it was already prepared, so
    # thigh must have conditionally prepared there, and the condition
    # must have resolved successfully.
    assert sum(cps.values()) >= 1
    assert sum(oks.values()) >= 1
    assert sum(leader_stats(system, "conditions_failed").values()) == 0


def test_cp_latency_not_worse_than_pa_only():
    latencies = {}
    for label, config in (("cp", natto_cp()), ("pa", natto_pa())):
        cluster, clients, stats = build(config, ["WA"])
        partitioner = cluster.partitioner
        near = key_for_partition(partitioner, 0)
        far = key_for_partition(partitioner, 4)
        client = clients[0]

        def staged():
            client.submit(rmw_spec("tlow", [near, far], priority=Priority.LOW))
            yield 0.020
            client.submit(
                rmw_spec("thigh", [near, far], priority=Priority.HIGH)
            )

        cluster.sim.spawn(staged())
        cluster.sim.run(until=WARMUP + 60)
        high = next(r for r in stats.records if r.priority is Priority.HIGH)
        latencies[label] = high.latency
    assert latencies["cp"] <= latencies["pa"] + 1e-9


# ---------------------------------------------------------------------------
# LECSF (Figure 5)


def lecsf_scenario(config):
    cluster, clients, stats = build(config, ["VA"])
    partitioner = cluster.partitioner
    far = key_for_partition(partitioner, 4)    # SG partition only
    client = clients[0]

    def staged():
        client.submit(rmw_spec("t1", [far], priority=Priority.LOW))
        yield 0.010
        client.submit(rmw_spec("t2", [far], priority=Priority.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
    high = next(r for r in stats.records if r.priority is Priority.HIGH)
    return high.latency


def test_lecsf_cuts_a_replication_round_for_blocked_transactions():
    with_lecsf = lecsf_scenario(natto_lecsf())
    without = lecsf_scenario(natto_ts())
    # The SG leader's write replication (nearest follower round trip,
    # 163 ms) is off the blocked transaction's critical path with LECSF.
    assert without - with_lecsf > 0.10


# ---------------------------------------------------------------------------
# RECSF (Figure 6)


def recsf_scenario(config):
    cluster, clients, stats = build(config, ["PR"])
    partitioner = cluster.partitioner
    nsw = key_for_partition(partitioner, 3)    # leader in NSW
    client = clients[0]

    def staged():
        client.submit(rmw_spec("t1", [nsw], priority=Priority.LOW))
        yield 0.010
        client.submit(rmw_spec("t2", [nsw], priority=Priority.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
    high = next(r for r in stats.records if r.priority is Priority.HIGH)
    return high.latency, clients[0].system


def test_recsf_forwards_reads_and_reduces_latency():
    recsf_latency, system = recsf_scenario(natto_recsf())
    cp_latency, _ = recsf_scenario(natto_cp())
    forwards = leader_stats(system, "recsf_forwards")
    assert sum(forwards.values()) >= 1
    # PR's coordinator replication is slower than NSW's prepare
    # replication, so serving the reads from t1's coordinator moves the
    # client's write round off the critical path.
    assert recsf_latency < cp_latency - 0.02
