"""Integration tests for Natto's basic timestamp prioritization (TS)."""

import pytest

from repro.core import Natto, natto_ts
from repro.txn.priority import Priority

from tests.helpers import build_system, rmw_spec

WARMUP = 2.5  # probe proxies need ~1 s of samples + a round trip


def build(config=None, client_dcs=None, seed=0):
    cluster, clients, stats = build_system(
        Natto(config or natto_ts()), client_dcs=client_dcs or ["VA"], seed=seed
    )
    cluster.sim.run(until=WARMUP)  # warm the delay estimates
    return cluster, clients, stats


def test_single_transaction_commits():
    cluster, clients, stats = build()
    clients[0].submit(rmw_spec("t1", ["alpha", "beta"]))
    cluster.sim.run(until=WARMUP + 10)
    (record,) = stats.records
    assert record.committed
    assert record.retries == 0


def test_latency_close_to_carousel_basic_at_no_contention():
    """Figure 7(a) at 50 txn/s: Natto-TS ~= Carousel Basic, because the
    timestamp wait is masked by the furthest participant's RTT."""
    from repro.systems.carousel import CarouselBasic

    results = {}
    for label, system_factory in (
        ("natto", lambda: Natto(natto_ts())),
        ("carousel", lambda: CarouselBasic()),
    ):
        cluster, clients, stats = build_system(
            system_factory(), client_dcs=["VA"]
        )
        cluster.sim.run(until=WARMUP)
        clients[0].submit(rmw_spec("t1", [f"key-{i}" for i in range(10)]))
        cluster.sim.run(until=WARMUP + 10)
        results[label] = stats.records[0].latency
    assert results["natto"] == pytest.approx(results["carousel"], rel=0.25)


def test_timestamps_are_in_the_future_at_enqueue():
    cluster, clients, stats = build()
    clients[0].submit(rmw_spec("t1", ["k"]))
    cluster.sim.run(until=WARMUP + 10)
    system = clients[0].system
    late = sum(
        g.leader.stats["late_aborts"] for g in system.groups.values()
    )
    assert late == 0
    assert stats.records[0].committed


def test_conflicting_transactions_commit_without_occ_aborts_in_ts_order():
    """Two conflicting low-priority transactions submitted a full RTT
    apart process in timestamp order with no aborts — Natto's ordering
    removes the arrival-order races Carousel aborts on."""
    cluster, clients, stats = build(client_dcs=["VA", "SG"])

    def staged():
        clients[0].submit(rmw_spec("t1", ["hot"], marker="A"))
        yield 0.5
        clients[1].submit(rmw_spec("t2", ["hot"], marker="B"))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 30)
    assert all(r.committed for r in stats.records)
    assert all(r.retries == 0 for r in stats.records)


def test_high_priority_waits_for_earlier_conflicts_instead_of_aborting():
    cluster, clients, stats = build(client_dcs=["VA", "SG"])

    def staged():
        clients[0].submit(rmw_spec("tlow", ["hot"], priority=Priority.LOW,
                                   marker="L"))
        yield 0.05
        clients[1].submit(rmw_spec("thigh", ["hot"], priority=Priority.HIGH,
                                   marker="H"))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=WARMUP + 30)
    assert len(stats.records) == 2
    assert all(r.committed for r in stats.records)
    high = next(r for r in stats.records if r.priority is Priority.HIGH)
    assert high.retries == 0  # waited, never aborted


def test_store_state_serializes_conflicting_writers():
    cluster, clients, stats = build(client_dcs=["VA", "SG"])
    clients[0].submit(rmw_spec("t1", ["hot"], marker="A"))
    clients[1].submit(rmw_spec("t2", ["hot"], marker="B"))
    cluster.sim.run(until=WARMUP + 60)
    assert all(r.committed for r in stats.records)
    system = clients[0].system
    pid = cluster.partitioner.partition_of("hot")
    value = system.groups[pid].leader.store.read("hot").value
    assert value.count("A") == 1 and value.count("B") == 1


def test_server_structures_drain_after_quiescence():
    cluster, clients, stats = build(client_dcs=["VA", "PR"])
    for i, client in enumerate(clients):
        for j in range(5):
            client.submit(rmw_spec(f"t{i}-{j}", [f"k{j % 2}"]))
    cluster.sim.run(until=WARMUP + 120)
    assert all(r.committed for r in stats.records)
    for group in clients[0].system.groups.values():
        leader = group.leader
        assert len(leader.prepared) == 0
        assert leader.queue == []
        assert leader.waiting == []
        assert leader._conditions == {}


def test_follower_stores_converge():
    cluster, clients, stats = build()
    for i in range(5):
        clients[0].submit(rmw_spec(f"t{i}", [f"key-{i}"]))
    cluster.sim.run(until=WARMUP + 30)
    assert all(r.committed for r in stats.records)
    for group in clients[0].system.groups.values():
        for replica in group.replicas:
            for key, versioned in replica.store._data.items():
                if versioned.writer is not None:
                    leader_value = group.leader.store.read(key).value
                    assert versioned.value == leader_value


def test_variant_names():
    from repro.core import natto_cp, natto_lecsf, natto_pa, natto_recsf

    assert Natto(natto_ts()).name == "Natto-TS"
    assert Natto(natto_lecsf()).name == "Natto-LECSF"
    assert Natto(natto_pa()).name == "Natto-PA"
    assert Natto(natto_cp()).name == "Natto-CP"
    assert Natto(natto_recsf()).name == "Natto-RECSF"
