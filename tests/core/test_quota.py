"""Tests for priority quotas (the untrusted-client extension)."""

import pytest

from repro.core.quota import PriorityQuota
from repro.txn.priority import Priority


def test_low_priority_is_never_charged():
    quota = PriorityQuota(rate=0.0, burst=1.0)
    for i in range(10):
        assert quota.authorize("c", f"t{i}", Priority.LOW, 0.0) is Priority.LOW
    assert quota.available_tokens("c", 0.0) == 1.0


def test_high_priority_consumes_tokens_then_demotes():
    quota = PriorityQuota(rate=0.0, burst=2.0)
    assert quota.authorize("c", "t1", Priority.HIGH, 0.0) is Priority.HIGH
    assert quota.authorize("c", "t2", Priority.HIGH, 0.0) is Priority.HIGH
    assert quota.authorize("c", "t3", Priority.HIGH, 0.0) is Priority.LOW
    assert quota.demotions == 1


def test_tokens_refill_over_time():
    quota = PriorityQuota(rate=1.0, burst=1.0)
    assert quota.authorize("c", "t1", Priority.HIGH, 0.0) is Priority.HIGH
    assert quota.authorize("c", "t2", Priority.HIGH, 0.1) is Priority.LOW
    # One second later a token has accrued.
    assert quota.authorize("c", "t3", Priority.HIGH, 1.2) is Priority.HIGH


def test_burst_caps_accumulation():
    quota = PriorityQuota(rate=100.0, burst=3.0)
    assert quota.available_tokens("c", 100.0) == 3.0


def test_clients_have_independent_buckets():
    quota = PriorityQuota(rate=0.0, burst=1.0)
    assert quota.authorize("a", "ta", Priority.HIGH, 0.0) is Priority.HIGH
    assert quota.authorize("b", "tb", Priority.HIGH, 0.0) is Priority.HIGH


def test_retries_are_not_recharged():
    quota = PriorityQuota(rate=0.0, burst=1.0)
    assert quota.authorize("c", "t1", Priority.HIGH, 0.0) is Priority.HIGH
    # The same transaction retrying keeps its admission without paying.
    for _ in range(5):
        assert quota.authorize("c", "t1", Priority.HIGH, 0.0) is Priority.HIGH
    # A demoted transaction stays demoted across retries (stable order).
    assert quota.authorize("c", "t2", Priority.HIGH, 0.0) is Priority.LOW
    assert quota.authorize("c", "t2", Priority.HIGH, 0.0) is Priority.LOW


def test_finish_clears_sticky_admission():
    quota = PriorityQuota(rate=0.0, burst=1.0)
    quota.authorize("c", "t1", Priority.HIGH, 0.0)
    quota.finish("t1")
    assert "t1" not in quota._admitted


def test_medium_priority_is_also_charged():
    quota = PriorityQuota(rate=0.0, burst=1.0)
    assert quota.authorize("c", "t1", Priority.MEDIUM, 0.0) is Priority.MEDIUM
    assert quota.authorize("c", "t2", Priority.MEDIUM, 0.0) is Priority.LOW


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PriorityQuota(rate=-1.0, burst=1.0)
    with pytest.raises(ValueError):
        PriorityQuota(rate=1.0, burst=0.0)


def test_quota_demotes_in_live_system():
    """End to end: a zero-rate quota turns every 'high' transaction into
    a low-priority one — PA never fires."""
    from repro.core import Natto, natto_pa
    from tests.helpers import build_system, rmw_spec
    from repro.txn.priority import Priority as P

    quota = PriorityQuota(rate=0.0, burst=1.0)
    cluster, clients, stats = build_system(
        Natto(natto_pa(), quota=quota), client_dcs=["VA"]
    )
    cluster.sim.run(until=2.5)
    client = clients[0]

    def staged():
        client.submit(rmw_spec("t1", ["hot"], priority=P.HIGH))
        yield 0.02
        client.submit(rmw_spec("t2", ["hot"], priority=P.HIGH))
        yield 0.02
        client.submit(rmw_spec("t3", ["hot"], priority=P.HIGH))

    cluster.sim.spawn(staged())
    cluster.sim.run(until=30.0)
    assert all(r.committed for r in stats.records)
    # Only the first high-priority admission fit the burst of 1.
    assert quota.demotions == 2
