"""Cross-variant integration checks: every Natto variant under the same
moderate contention commits everything and keeps the mechanism ladder's
latency ordering loosely monotonic."""

import pytest

from repro.core import (
    Natto,
    natto_cp,
    natto_lecsf,
    natto_pa,
    natto_recsf,
    natto_ts,
)
from repro.txn.priority import Priority

from tests.helpers import build_system, rmw_spec

WARMUP = 2.5
LADDER = [
    ("Natto-TS", natto_ts),
    ("Natto-LECSF", natto_lecsf),
    ("Natto-PA", natto_pa),
    ("Natto-CP", natto_cp),
    ("Natto-RECSF", natto_recsf),
]


def run_burst(config_factory, seed=0):
    cluster, clients, stats = build_system(
        Natto(config_factory()), client_dcs=["VA", "SG"], seed=seed
    )
    cluster.sim.run(until=WARMUP)

    def burst():
        for i in range(6):
            for j, client in enumerate(clients):
                priority = Priority.HIGH if (i + j) % 3 == 0 else Priority.LOW
                client.submit(
                    rmw_spec(
                        f"t{i}-{j}",
                        [f"hot-{(i + j) % 2}"],
                        priority=priority,
                    )
                )
            yield 0.25

    cluster.sim.spawn(burst())
    cluster.sim.run(until=WARMUP + 120)
    return cluster, clients, stats


@pytest.mark.parametrize("name,factory", LADDER)
def test_every_variant_commits_the_burst(name, factory):
    cluster, clients, stats = run_burst(factory)
    assert len(stats.records) == 12
    assert all(r.committed for r in stats.records), name


@pytest.mark.parametrize("name,factory", LADDER)
def test_no_variant_leaves_server_state_behind(name, factory):
    cluster, clients, stats = run_burst(factory)
    for group in clients[0].system.groups.values():
        leader = group.leader
        assert len(leader.prepared) == 0, name
        assert leader.queue == [], name
        assert leader.waiting == [], name
        assert leader._conditions == {}, name
        assert leader._applied_early == set(), name


def test_high_priority_p95_never_worse_up_the_ladder():
    """Each added mechanism must not hurt the high-priority class in a
    scenario with genuine low/high conflicts (allow 10% noise)."""
    import numpy as np

    p95s = []
    for name, factory in LADDER:
        _, _, stats = run_burst(factory)
        highs = [
            r.latency for r in stats.records if r.priority is Priority.HIGH
        ]
        p95s.append((name, float(np.percentile(highs, 95))))
    for (prev_name, prev), (name, current) in zip(p95s, p95s[1:]):
        assert current <= prev * 1.10, (prev_name, prev, name, current)
