"""Property-based tests of Natto's timestamp ordering at one server."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partition import Partitioner
from repro.core.config import natto_ts
from repro.core.server import NattoParticipant
from repro.net.network import Network
from repro.net.topology import azure_topology
from repro.raft.node import RaftConfig
from repro.sim import Simulator

from tests.core.test_natto_server_unit import Recorder


def build_server():
    sim = Simulator()
    net = Network(sim, azure_topology())
    server = NattoParticipant(
        sim,
        net,
        "p0-VA",
        "VA",
        peers=["p0-VA"],
        config=RaftConfig(election_timeout=None),
        natto_config=natto_ts(),
        partitioner=Partitioner(1),
    )
    server.current_term = 1
    server.become_leader()
    net.register(Recorder(sim, "client"))
    net.register(Recorder(sim, "coord"))
    return sim, server


def rap(txn, ts, priority, keys):
    return {
        "txn": txn,
        "ts": ts,
        "priority": priority,
        "full_reads": list(keys),
        "full_writes": list(keys),
        "coordinator": "coord",
        "client": "client",
        "participants": [0],
        "arrival_estimates": {0: ts},
        "max_owd": 0.05,
    }


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=0.5),  # timestamp
            st.integers(min_value=0, max_value=2),     # priority
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_nonconflicting_transactions_dispatch_in_timestamp_order(specs):
    """With disjoint key sets, reads resolve exactly in (ts, id) order."""
    sim, server = build_server()
    completions = []
    expected = []
    for i, (ts, priority) in enumerate(specs):
        txn = f"t{i:02d}"
        reply = server.handle_read_and_prepare(
            rap(txn, ts, priority, [f"key-{i}"]), "client"
        )
        reply.add_done_callback(lambda f, txn=txn: completions.append(txn))
        expected.append(((ts, txn), txn))
    sim.run(until=2.0)
    assert completions == [txn for _, txn in sorted(expected)]


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=0.3),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_no_arrival_pattern_wedges_the_server(specs):
    """All-conflicting transactions on one key: every reply resolves
    once conflicts clear, and server structures drain."""
    sim, server = build_server()
    replies = []
    for i, (ts, priority) in enumerate(specs):
        replies.append(
            server.handle_read_and_prepare(
                rap(f"t{i:02d}", ts, priority, ["hot"]), "client"
            )
        )
    sim.run(until=1.0)
    # Resolve each prepared transaction so waiters advance.
    for _ in range(len(specs) + 1):
        for txn in sorted(server.prepared.txn_ids):
            server.handle_commit_txn(
                {"txn": txn, "decision": True, "writes": {"hot": txn}},
                "coord",
            )
        sim.run(until=sim.now + 1.0)
    assert all(r.done for r in replies)
    assert server.queue == []
    assert server.waiting == []
    assert len(server.prepared) == 0
