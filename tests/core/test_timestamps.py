"""Tests for timestamp assignment."""

import pytest

from repro.core.timestamps import (
    FALLBACK_HEADROOM,
    FALLBACK_SAFETY,
    TimestampAssigner,
)
from repro.net.topology import azure_topology


class FakeView:
    def __init__(self, estimates):
        self._estimates = estimates

    def estimate(self, target):
        return self._estimates.get(target)


def make_assigner(estimates, margin=0.0, client_dc="VA"):
    return TimestampAssigner(
        FakeView(estimates), azure_topology(), client_dc, margin
    )


LEADERS = {0: "p0-VA", 4: "p4-SG"}
LEADER_DCS = {0: "VA", 4: "SG"}


def test_timestamp_is_now_plus_max_estimate():
    assigner = make_assigner({"p0-VA": 0.001, "p4-SG": 0.108})
    assignment = assigner.assign(10.0, [0, 4], LEADERS, LEADER_DCS)
    assert assignment.timestamp == pytest.approx(10.108)
    assert assignment.max_owd == pytest.approx(0.108)


def test_per_participant_arrival_estimates():
    assigner = make_assigner({"p0-VA": 0.001, "p4-SG": 0.108})
    assignment = assigner.assign(10.0, [0, 4], LEADERS, LEADER_DCS)
    assert assignment.arrival_estimates[0] == pytest.approx(10.001)
    assert assignment.arrival_estimates[4] == pytest.approx(10.108)


def test_margin_adds_headroom_to_timestamp_only():
    assigner = make_assigner({"p0-VA": 0.001}, margin=0.002)
    assignment = assigner.assign(5.0, [0], LEADERS, LEADER_DCS)
    assert assignment.timestamp == pytest.approx(5.003)
    # Arrival estimates are raw (used for CP predictions, not waits).
    assert assignment.arrival_estimates[0] == pytest.approx(5.001)


def test_cold_start_falls_back_to_topology():
    assigner = make_assigner({})  # no probe data yet
    base = azure_topology().one_way("VA", "SG")
    estimate = assigner.estimate_owd("p4-SG", "SG")
    assert estimate == pytest.approx(base * FALLBACK_SAFETY + FALLBACK_HEADROOM)


def test_partial_probe_data_mixes_sources():
    assigner = make_assigner({"p0-VA": 0.0004})
    assignment = assigner.assign(0.0, [0, 4], LEADERS, LEADER_DCS)
    # The SG estimate is a fallback, so it dominates.
    assert assignment.max_owd > 0.1


def test_single_participant():
    assigner = make_assigner({"p0-VA": 0.0004})
    assignment = assigner.assign(1.0, [0], LEADERS, LEADER_DCS)
    assert assignment.timestamp == pytest.approx(1.0004)
