"""Tests for the Zipfian generator."""

import numpy as np
import pytest

from repro.workloads.zipf import ZipfianGenerator, ZipfianKeys, fnv_hash, zeta


def test_zeta_small_values():
    assert zeta(1, 0.5) == 1.0
    assert zeta(2, 0.5) == pytest.approx(1.0 + 2 ** -0.5)


def test_samples_stay_in_range():
    gen = ZipfianGenerator(1000, 0.65, np.random.default_rng(0))
    for _ in range(5000):
        assert 0 <= gen.sample() < 1000


def test_rank_zero_is_most_popular():
    gen = ZipfianGenerator(10_000, 0.9, np.random.default_rng(1))
    samples = [gen.sample() for _ in range(20_000)]
    counts = np.bincount(samples, minlength=10_000)
    assert counts[0] == max(counts)
    assert counts[0] > counts[100]


def test_higher_theta_is_more_skewed():
    def top1_share(theta):
        gen = ZipfianGenerator(10_000, theta, np.random.default_rng(2))
        samples = [gen.sample() for _ in range(20_000)]
        return np.mean(np.array(samples) == 0)

    assert top1_share(0.95) > top1_share(0.65)


def test_frequencies_follow_power_law():
    n, theta = 1000, 0.8
    gen = ZipfianGenerator(n, theta, np.random.default_rng(3))
    samples = [gen.sample() for _ in range(200_000)]
    counts = np.bincount(samples, minlength=n).astype(float)
    # P(rank 0) / P(rank 9) should be about 10^theta.
    ratio = counts[0] / counts[9]
    assert ratio == pytest.approx(10 ** theta, rel=0.3)


def test_invalid_parameters_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(1000, 0.0, rng)
    with pytest.raises(ValueError):
        ZipfianGenerator(1000, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfianGenerator(1, 0.5, rng)


def test_fnv_hash_is_deterministic_and_spreads():
    assert fnv_hash(42) == fnv_hash(42)
    values = {fnv_hash(i) % 1000 for i in range(100)}
    assert len(values) > 80  # hot ranks land on spread-out keys


def test_scrambled_keys_spread_over_partitions():
    from repro.cluster.partition import Partitioner

    keys = ZipfianKeys(1_000_000, 0.9, np.random.default_rng(4))
    partitioner = Partitioner(5)
    hot_partitions = {
        partitioner.partition_of(keys.sample_key()) for _ in range(500)
    }
    assert hot_partitions == {0, 1, 2, 3, 4}


def test_sample_distinct_returns_unique_keys():
    keys = ZipfianKeys(100, 0.95, np.random.default_rng(5))
    chosen = keys.sample_distinct(10)
    assert len(chosen) == len(set(chosen)) == 10


def test_unscrambled_keys_concentrate_low_ranks():
    keys = ZipfianKeys(1000, 0.9, np.random.default_rng(6), scramble=False)
    assert keys.sample_distinct(3)[0].startswith("key-")
