"""Tests for the three paper workloads."""

import numpy as np
import pytest

from repro.txn.priority import Priority
from repro.workloads import (
    RetwisWorkload,
    SmallBankWorkload,
    UniformKeys,
    YcsbTWorkload,
)
from repro.workloads.smallbank import INITIAL_BALANCE, parse_balance


def rng(seed=0):
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# YCSB+T


def test_ycsbt_is_six_rmw_operations():
    w = YcsbTWorkload(rng(), num_keys=1000)
    spec = w.next_transaction("c1")
    assert len(spec.read_keys) == 6
    assert spec.read_keys == spec.write_keys
    assert len(set(spec.read_keys)) == 6  # distinct keys


def test_ycsbt_writes_modify_read_values():
    w = YcsbTWorkload(rng(), num_keys=1000)
    spec = w.next_transaction("c1")
    reads = {k: f"value-of-{k}" for k in spec.read_keys}
    writes = spec.make_writes(reads)
    assert set(writes) == set(spec.write_keys)
    for key, value in writes.items():
        assert len(value) <= 64


def test_ycsbt_txn_ids_are_unique_per_client():
    w = YcsbTWorkload(rng(), num_keys=1000)
    ids = {w.next_transaction("c1").txn_id for _ in range(50)}
    ids |= {w.next_transaction("c2").txn_id for _ in range(50)}
    assert len(ids) == 100


def test_priority_fraction_default_ten_percent():
    w = YcsbTWorkload(rng(), num_keys=1000)
    specs = [w.next_transaction("c") for _ in range(4000)]
    high = sum(1 for s in specs if s.priority is Priority.HIGH)
    assert 0.07 < high / len(specs) < 0.13


def test_priority_fraction_override():
    w = YcsbTWorkload(rng(), num_keys=1000, high_priority_fraction=0.5)
    specs = [w.next_transaction("c") for _ in range(2000)]
    high = sum(1 for s in specs if s.priority is Priority.HIGH)
    assert 0.45 < high / len(specs) < 0.55


# ---------------------------------------------------------------------------
# Retwis


def test_retwis_mix_matches_paper_profile():
    w = RetwisWorkload(rng(), num_keys=10_000)
    counts = {}
    for _ in range(10_000):
        spec = w.next_transaction("c")
        counts[spec.txn_type] = counts.get(spec.txn_type, 0) + 1
    total = sum(counts.values())
    assert counts["add_user"] / total == pytest.approx(0.05, abs=0.02)
    assert counts["follow"] / total == pytest.approx(0.15, abs=0.02)
    assert counts["post_tweet"] / total == pytest.approx(0.30, abs=0.02)
    assert counts["load_timeline"] / total == pytest.approx(0.50, abs=0.02)


def test_retwis_key_counts_per_type():
    w = RetwisWorkload(rng(1), num_keys=10_000)
    seen = set()
    for _ in range(2000):
        spec = w.next_transaction("c")
        seen.add(spec.txn_type)
        if spec.txn_type == "add_user":
            assert len(spec.read_keys) == 1 and len(spec.write_keys) == 3
        elif spec.txn_type == "follow":
            assert len(spec.read_keys) == 2 and len(spec.write_keys) == 2
        elif spec.txn_type == "post_tweet":
            assert len(spec.read_keys) == 3 and len(spec.write_keys) == 5
        else:
            assert 1 <= len(spec.read_keys) <= 10
            assert spec.write_keys == ()
    assert seen == {"add_user", "follow", "post_tweet", "load_timeline"}


def test_retwis_with_uniform_keys():
    w = RetwisWorkload(
        rng(), key_chooser=UniformKeys(1000, rng(7))
    )
    spec = w.next_transaction("c")
    assert all(key.startswith("key-") for key in spec.all_keys)


# ---------------------------------------------------------------------------
# SmallBank


def test_smallbank_mix_matches_oltpbench():
    w = SmallBankWorkload(rng(), num_users=10_000, hot_users=100)
    counts = {}
    for _ in range(10_000):
        spec = w.next_transaction("c")
        counts[spec.txn_type] = counts.get(spec.txn_type, 0) + 1
    total = sum(counts.values())
    assert counts["send_payment"] / total == pytest.approx(0.25, abs=0.02)
    for txn_type in (
        "balance",
        "deposit_checking",
        "transact_savings",
        "amalgamate",
        "write_check",
    ):
        assert counts[txn_type] / total == pytest.approx(0.15, abs=0.02)


def test_smallbank_hot_users_receive_most_traffic():
    w = SmallBankWorkload(rng(2), num_users=100_000, hot_users=100)
    hot = 0
    trials = 2000
    for _ in range(trials):
        spec = w.next_transaction("c")
        users = {int(k.split(":")[1]) for k in spec.all_keys}
        if any(u < 100 for u in users):
            hot += 1
    assert hot / trials > 0.85


def test_send_payment_transfers_conserve_money():
    w = SmallBankWorkload(rng(3), num_users=1000, hot_users=10)
    spec = None
    while spec is None or spec.txn_type != "send_payment":
        spec = w.next_transaction("c")
    src, dst = spec.read_keys
    writes = spec.make_writes({src: "500", dst: "200"})
    if writes:
        total_after = parse_balance(writes[src]) + parse_balance(writes[dst])
        assert total_after == 700


def test_send_payment_insufficient_funds_writes_nothing():
    w = SmallBankWorkload(rng(4), num_users=1000, hot_users=10)
    spec = None
    while spec is None or spec.txn_type != "send_payment":
        spec = w.next_transaction("c")
    src, dst = spec.read_keys
    assert spec.make_writes({src: "0", dst: "50"}) == {}


def test_amalgamate_zeroes_source_accounts():
    w = SmallBankWorkload(rng(5), num_users=1000, hot_users=10)
    spec = None
    while spec is None or spec.txn_type != "amalgamate":
        spec = w.next_transaction("c")
    ss, sc, dc = spec.read_keys
    writes = spec.make_writes({ss: "100", sc: "200", dc: "50"})
    assert writes[ss] == "0"
    assert writes[sc] == "0"
    assert parse_balance(writes[dc]) == 350


def test_parse_balance_handles_init_pattern():
    assert parse_balance("init:checking:5" + "0" * 50) == INITIAL_BALANCE
    assert parse_balance("123") == 123


def test_high_priority_by_type():
    w = SmallBankWorkload(
        rng(6),
        num_users=1000,
        hot_users=10,
        high_priority_types={"send_payment"},
    )
    for _ in range(500):
        spec = w.next_transaction("c")
        expected = (
            Priority.HIGH
            if spec.txn_type == "send_payment"
            else Priority.LOW
        )
        assert spec.priority is expected


def test_two_user_transactions_pick_distinct_users():
    w = SmallBankWorkload(rng(7), num_users=1000, hot_users=10)
    for _ in range(300):
        spec = w.next_transaction("c")
        if spec.txn_type in ("send_payment", "amalgamate"):
            users = [int(k.split(":")[1]) for k in spec.all_keys]
            checking_users = [
                int(k.split(":")[1])
                for k in spec.all_keys
                if k.startswith("checking:")
            ]
            assert len(set(checking_users)) == len(checking_users)
