"""Integration tests for TAPIR."""

from repro.systems.carousel import CarouselBasic, CarouselFast
from repro.systems.tapir import Tapir

from tests.helpers import build_system, rmw_spec, write_spec


def test_single_transaction_commits():
    cluster, clients, stats = build_system(Tapir(), client_dcs=["VA"])
    clients[0].submit(rmw_spec("t1", ["alpha", "beta"]))
    cluster.sim.run(until=10.0)
    (record,) = stats.records
    assert record.committed
    assert record.retries == 0


def test_latency_between_fast_and_basic_at_no_contention():
    latencies = {}
    for label, system in (
        ("basic", CarouselBasic()),
        ("fast", CarouselFast()),
        ("tapir", Tapir()),
    ):
        cluster, clients, stats = build_system(system, client_dcs=["VA"])
        clients[0].submit(rmw_spec("t1", [f"key-{i}" for i in range(10)]))
        cluster.sim.run(until=10.0)
        latencies[label] = stats.records[0].latency
    # Paper, Figure 7(a) at 50 txn/s: Fast < TAPIR < Basic.
    assert latencies["fast"] < latencies["tapir"] < latencies["basic"]


def test_conflicting_transactions_serialize_with_retries():
    cluster, clients, stats = build_system(Tapir(), client_dcs=["VA", "SG"])
    clients[0].submit(rmw_spec("tva", ["hot"], marker="A"))
    clients[1].submit(rmw_spec("tsg", ["hot"], marker="B"))
    cluster.sim.run(until=60.0)
    assert len(stats.records) == 2
    assert all(r.committed for r in stats.records)
    system = clients[0].system
    pid = cluster.partitioner.partition_of("hot")
    values = {
        replica.store.read("hot").value
        for replica in system.groups[pid].replicas
    }
    assert len(values) == 1  # replicas converged
    (value,) = values
    assert value.count("A") == 1
    assert value.count("B") == 1


def test_stale_read_is_caught_by_validation():
    cluster, clients, stats = build_system(Tapir(), client_dcs=["VA"])
    client = clients[0]
    system = client.system
    pid = cluster.partitioner.partition_of("k")
    group = system.groups[pid]

    def sequence():
        yield client.submit(write_spec("t1", ["k"], "fresh"))
        yield 2.0  # commits propagate everywhere
        # Manually stale-ify one replica that is NOT the read replica, to
        # simulate a laggard (IR's sync protocol, which would repair a
        # stale read replica, is out of scope).
        closest = group.closest_replica_name("VA", cluster.topology)
        victim = next(r for r in group.replicas if r.name != closest)
        victim.store._data.pop("k", None)
        # The new transaction sees mixed votes (2 ok / 1 stale-abort) and
        # must commit through the slow path — never wedge.
        yield client.submit(rmw_spec("t2", ["k"]))

    cluster.sim.spawn(sequence())
    cluster.sim.run(until=60.0)
    assert all(r.committed for r in stats.records)


def test_prepared_sets_drain_after_quiescence():
    cluster, clients, stats = build_system(Tapir(), client_dcs=["VA", "PR"])
    for i, client in enumerate(clients):
        for j in range(5):
            client.submit(rmw_spec(f"t{i}-{j}", [f"k{j % 2}"]))
    cluster.sim.run(until=120.0)
    assert all(r.committed for r in stats.records)
    for group in clients[0].system.groups.values():
        for replica in group.replicas:
            assert len(replica.prepared) == 0


def test_reads_use_closest_replica():
    cluster, clients, stats = build_system(Tapir(), client_dcs=["VA"])
    system = clients[0].system
    # For every partition, the chosen read replica from VA is the one
    # with minimal RTT.
    for group in system.groups.values():
        chosen = group.closest_replica_name("VA", cluster.topology)
        rtts = {
            r.name: cluster.topology.rtt("VA", r.datacenter)
            for r in group.replicas
        }
        assert rtts[chosen] == min(rtts.values())
