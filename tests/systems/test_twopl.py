"""Integration tests for the 2PL+2PC family."""

import pytest

from repro.systems.carousel import CarouselBasic
from repro.systems.twopl import (
    PreemptOnWaitPolicy,
    PreemptPolicy,
    TwoPL,
    WoundWaitPolicy,
)
from repro.txn.priority import Priority

from tests.helpers import build_system, rmw_spec


def test_single_transaction_commits():
    cluster, clients, stats = build_system(TwoPL(), client_dcs=["VA"])
    clients[0].submit(rmw_spec("t1", ["alpha", "beta"]))
    cluster.sim.run(until=10.0)
    (record,) = stats.records
    assert record.committed
    assert record.retries == 0


def test_sequential_structure_is_slower_than_carousel():
    latencies = {}
    for label, system in (("2pl", TwoPL()), ("carousel", CarouselBasic())):
        cluster, clients, stats = build_system(system, client_dcs=["VA"])
        clients[0].submit(rmw_spec("t1", [f"key-{i}" for i in range(10)]))
        cluster.sim.run(until=10.0)
        latencies[label] = stats.records[0].latency
    # Paper: ~715 ms vs ~370 ms at low load.
    assert latencies["2pl"] > latencies["carousel"] * 1.4


def test_conflicting_transactions_serialize_without_deadlock():
    cluster, clients, stats = build_system(TwoPL(), client_dcs=["VA", "SG"])
    clients[0].submit(rmw_spec("tva", ["hot"], marker="A"))
    clients[1].submit(rmw_spec("tsg", ["hot"], marker="B"))
    cluster.sim.run(until=60.0)
    assert len(stats.records) == 2
    assert all(r.committed for r in stats.records)
    system = clients[0].system
    pid = cluster.partitioner.partition_of("hot")
    value = system.groups[pid].leader.store.read("hot").value
    assert value.count("A") == 1 and value.count("B") == 1


def test_cross_partition_contention_resolves_via_wound_wait():
    """Two transactions lock two hot keys in opposite arrival orders —
    the classic distributed deadlock shape; wound-wait must resolve it."""
    cluster, clients, stats = build_system(TwoPL(), client_dcs=["VA", "SG"])
    keys = ["deadlock-a", "deadlock-b"]
    clients[0].submit(rmw_spec("t1", keys, marker="X"))
    clients[1].submit(rmw_spec("t2", list(reversed(keys)), marker="Y"))
    cluster.sim.run(until=120.0)
    assert len(stats.records) == 2
    assert all(r.committed for r in stats.records)


def test_locks_drain_after_quiescence():
    cluster, clients, stats = build_system(TwoPL(), client_dcs=["VA", "PR"])
    for i, client in enumerate(clients):
        for j in range(4):
            client.submit(rmw_spec(f"t{i}-{j}", [f"k{j % 2}"]))
    cluster.sim.run(until=120.0)
    assert all(r.committed for r in stats.records)
    for group in clients[0].system.groups.values():
        leader = group.leader
        assert leader.locks._requests == {}
        assert leader.pending_writes == {}


@pytest.mark.parametrize(
    "policy_cls", [WoundWaitPolicy, PreemptPolicy, PreemptOnWaitPolicy]
)
def test_all_variants_commit_mixed_priorities(policy_cls):
    cluster, clients, stats = build_system(
        TwoPL(policy_cls()), client_dcs=["VA", "SG"]
    )
    clients[0].submit(rmw_spec("th", ["hot"], priority=Priority.HIGH))
    clients[1].submit(rmw_spec("tl", ["hot"], priority=Priority.LOW))
    cluster.sim.run(until=120.0)
    assert len(stats.records) == 2
    assert all(r.committed for r in stats.records)


def test_preemption_wounds_low_priority_holder():
    """(P): a high-priority requester evicts a younger AND older
    low-priority lock holder still in its read phase."""
    cluster, clients, stats = build_system(
        TwoPL(PreemptPolicy()), client_dcs=["SG", "VA"]
    )
    # Low-priority txn from SG grabs the lock first (it is older).
    clients[0].submit(rmw_spec("tlow", ["hot"], priority=Priority.LOW))

    def later():
        yield 0.02
        clients[1].submit(rmw_spec("thigh", ["hot"], priority=Priority.HIGH))

    cluster.sim.spawn(later())
    cluster.sim.run(until=120.0)
    assert all(r.committed for r in stats.records)
    system = clients[0].system
    total_wounds = sum(
        g.leader.wounds_sent for g in system.groups.values()
    )
    # Plain wound-wait would never wound here (the holder is older);
    # preemption must have.
    assert total_wounds >= 1


def test_policy_names_match_paper_labels():
    assert TwoPL().name == "2PL+2PC"
    assert TwoPL(PreemptPolicy()).name == "2PL+2PC(P)"
    assert TwoPL(PreemptOnWaitPolicy()).name == "2PL+2PC(POW)"
