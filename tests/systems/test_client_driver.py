"""Tests for the client driver's retry loop and event routing."""

from repro.net.network import Network
from repro.net.topology import azure_topology
from repro.sim import Simulator
from repro.systems.base import TransactionSystem
from repro.systems.client import ClientDriver
from repro.txn.priority import Priority
from repro.txn.stats import StatsCollector, TxnOutcome
from repro.txn.transaction import TransactionSpec


class ScriptedSystem(TransactionSystem):
    """Fails each transaction a scripted number of times, then commits."""

    name = "scripted"

    def __init__(self, failures_before_commit=0, attempt_cost=0.1):
        self.failures = failures_before_commit
        self.cost = attempt_cost
        self.attempts_seen = []

    def setup(self, cluster):
        pass

    def execute(self, client, spec, attempt):
        self.attempts_seen.append((spec.txn_id, attempt))
        yield self.cost
        return attempt >= self.failures


def build(system):
    sim = Simulator()
    net = Network(sim, azure_topology())
    stats = StatsCollector()
    client = ClientDriver(sim, net, "c1", "VA", system, stats)
    return sim, client, stats


def spec(txn_id="t1"):
    return TransactionSpec(
        txn_id, ("k",), ("k",), compute_writes=lambda r: {"k": "v"}
    )


def test_success_on_first_attempt():
    system = ScriptedSystem(failures_before_commit=0)
    sim, client, stats = build(system)
    client.submit(spec())
    sim.run()
    (record,) = stats.records
    assert record.committed and record.retries == 0
    assert record.latency == 0.1


def test_retries_until_success_and_latency_includes_them():
    system = ScriptedSystem(failures_before_commit=3)
    sim, client, stats = build(system)
    client.submit(spec())
    sim.run()
    (record,) = stats.records
    assert record.committed
    assert record.retries == 3
    assert record.latency == 0.4  # four attempts at 0.1 each
    assert [a for _, a in system.attempts_seen] == [0, 1, 2, 3]


def test_exhausting_retry_budget_marks_failed():
    system = ScriptedSystem(failures_before_commit=10**9)
    sim, client, stats = build(system)
    client.max_retries = 5
    client.submit(spec())
    sim.run()
    (record,) = stats.records
    assert record.outcome is TxnOutcome.FAILED
    assert record.retries == 5
    assert len(system.attempts_seen) == 6


def test_inflight_counter_tracks_open_transactions():
    system = ScriptedSystem(failures_before_commit=0, attempt_cost=1.0)
    sim, client, stats = build(system)
    client.submit(spec("a"))
    client.submit(spec("b"))
    sim.run(until=0.5)
    assert client.inflight == 2
    sim.run()
    assert client.inflight == 0


def test_start_time_registry_cleaned_up():
    system = ScriptedSystem(failures_before_commit=1)
    sim, client, stats = build(system)
    client.submit(spec())
    sim.run(until=0.05)
    assert "t1" in client.txn_start_times
    sim.run()
    assert client.txn_start_times == {}


def test_event_routing_by_attempt_id():
    system = ScriptedSystem()
    sim, client, stats = build(system)
    seen = []
    client.register_attempt("t1.0", lambda p, src: seen.append(p))
    client.handle_txn_event({"txn": "t1.0", "kind": "x"}, "someone")
    client.handle_txn_event({"txn": "other", "kind": "y"}, "someone")
    assert seen == [{"txn": "t1.0", "kind": "x"}]
    client.unregister_attempt("t1.0")
    client.handle_txn_event({"txn": "t1.0", "kind": "z"}, "someone")
    assert len(seen) == 1


def test_open_loop_submission_rate():
    system = ScriptedSystem(attempt_cost=0.01)
    sim, client, stats = build(system)

    class OneKeyWorkload:
        count = 0

        def next_transaction(self, client_name):
            OneKeyWorkload.count += 1
            return spec(f"w{OneKeyWorkload.count}")

    client.run_open_loop(OneKeyWorkload(), rate_per_second=100.0, until=10.0)
    sim.run(until=12.0)
    # Poisson arrivals at 100/s for 10 s: ~1000 transactions (loose CI).
    assert 800 < len(stats.records) < 1200


def test_records_preserve_priority_and_type():
    system = ScriptedSystem()
    sim, client, stats = build(system)
    client.submit(
        TransactionSpec(
            "tp",
            ("k",),
            (),
            priority=Priority.HIGH,
            compute_writes=lambda r: {},
            txn_type="special",
        )
    )
    sim.run()
    (record,) = stats.records
    assert record.priority is Priority.HIGH
    assert record.txn_type == "special"
