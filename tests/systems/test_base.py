"""Tests for the shared deployment scaffolding."""

import pytest

from repro.cluster.clock import ClockConfig
from repro.net.loss import LossConfig
from repro.net.topology import azure_topology, local_cluster_topology
from repro.systems.base import Cluster, SystemConfig, attempt_id
from repro.txn.transaction import TransactionSpec


def test_default_config_matches_paper_deployment():
    config = SystemConfig()
    assert config.num_partitions == 5
    assert config.replication_factor == 3
    assert config.probe_interval == 0.010   # 10 ms probes
    assert config.probe_window == 1.0       # 1 s sliding window
    assert config.client_view_refresh == 0.1  # 100 ms client refresh


def test_with_overrides_returns_new_config():
    base = SystemConfig()
    changed = base.with_overrides(num_partitions=12)
    assert changed.num_partitions == 12
    assert base.num_partitions == 5


def test_cluster_builds_placements_for_every_partition():
    cluster = Cluster(azure_topology(), SystemConfig(num_partitions=5))
    assert len(cluster.placements) == 5
    leaders = {p.leader_datacenter for p in cluster.placements}
    assert leaders == set(azure_topology().datacenters)


def test_coordinator_placement_is_leader_local():
    cluster = Cluster(azure_topology(), SystemConfig())
    for dc in azure_topology().datacenters:
        placement = cluster.coordinator_placement(dc)
        assert placement.leader_datacenter == dc
        assert len(placement.datacenters) == 3
        assert placement.partition_id >= 1000  # out of the data range


def test_make_clock_derives_independent_streams():
    cluster = Cluster(
        azure_topology(),
        SystemConfig(clock=ClockConfig(max_offset=0.005)),
        seed=1,
    )
    a = cluster.make_clock("node-a")
    b = cluster.make_clock("node-b")
    assert a.offset != b.offset  # overwhelmingly likely with max_offset>0


def test_same_seed_same_clock_offsets():
    def offsets(seed):
        cluster = Cluster(
            azure_topology(),
            SystemConfig(clock=ClockConfig(max_offset=0.005)),
            seed=seed,
        )
        return [cluster.make_clock(f"n{i}").offset for i in range(3)]

    assert offsets(7) == offsets(7)
    assert offsets(7) != offsets(8)


def test_loss_config_requires_rng_wiring():
    config = SystemConfig(loss=LossConfig(loss_rate=0.01))
    cluster = Cluster(azure_topology(), config)
    assert cluster.network._loss is not None


def test_local_cluster_supports_twelve_partitions():
    cluster = Cluster(
        local_cluster_topology(), SystemConfig(num_partitions=12)
    )
    assert len(cluster.placements) == 12


def test_attempt_ids_encode_txn_and_attempt():
    spec = TransactionSpec("client:42", ("k",), ())
    assert attempt_id(spec, 0) == "client:42.0"
    assert attempt_id(spec, 17) == "client:42.17"
    assert attempt_id(spec, 0) != attempt_id(spec, 1)
