"""Integration tests for Carousel Basic."""

import pytest

from repro.systems.carousel import CarouselBasic
from repro.txn.priority import Priority

from tests.helpers import build_system, read_spec, rmw_spec, write_spec


def run(cluster, until=10.0):
    cluster.sim.run(until=until)


def test_single_transaction_commits():
    cluster, clients, stats = build_system(CarouselBasic(), client_dcs=["VA"])
    clients[0].submit(rmw_spec("t1", ["alpha", "beta"]))
    run(cluster)
    (record,) = stats.records
    assert record.committed
    assert record.retries == 0


def test_commit_latency_is_about_two_wan_round_trips():
    cluster, clients, stats = build_system(CarouselBasic(), client_dcs=["VA"])
    # Keys spread over all partitions: the furthest leader dominates.
    clients[0].submit(rmw_spec("t1", [f"key-{i}" for i in range(10)]))
    run(cluster)
    (record,) = stats.records
    # Read round: RTT to the furthest leader (VA->SG, 214 ms).  Commit:
    # prepare replication + vote transit, bounded by ~2x the furthest
    # RTT overall.  The paper's Carousel Basic measures ~350-450 ms.
    assert 0.25 < record.latency < 0.60


def test_writes_become_visible_to_later_transactions():
    cluster, clients, stats = build_system(CarouselBasic(), client_dcs=["VA"])
    client = clients[0]

    observed = {}

    def sequence():
        done = yield client.submit(write_spec("t1", ["k"], "hello"))
        assert done
        yield 1.0  # let commit messages reach participants and apply
        reader = read_spec("t2", ["k"])
        values = {}
        original = reader.compute_writes

        def capture(reads):
            observed.update(reads)
            return original(reads)

        yield client.submit(
            reader.__class__(
                txn_id="t2",
                read_keys=("k",),
                write_keys=(),
                compute_writes=capture,
            )
        )

    cluster.sim.spawn(sequence())
    run(cluster)
    assert observed.get("k") == "hello"


def test_conflicting_transactions_serialize_with_retries():
    cluster, clients, stats = build_system(
        CarouselBasic(), client_dcs=["VA", "SG"]
    )
    # Both transactions hammer the same key from different continents.
    clients[0].submit(rmw_spec("tva", ["hot"], marker="A"))
    clients[1].submit(rmw_spec("tsg", ["hot"], marker="B"))
    run(cluster, until=30.0)
    assert len(stats.records) == 2
    assert all(r.committed for r in stats.records)
    # The value must contain both markers exactly once each.
    system_store = None
    for group in _groups(cluster):
        leader = group.leader
        if "hot" in leader.store._data:
            system_store = leader.store
    value = system_store.read("hot").value
    assert value.count("A") == 1
    assert value.count("B") == 1


def _groups(cluster):
    # The system object holds groups; fish it off any registered client.
    for node in cluster.network._nodes.values():
        system = getattr(node, "system", None)
        if system is not None:
            return system.groups.values()
    raise AssertionError("no client registered")


def test_follower_stores_converge_to_leader():
    cluster, clients, stats = build_system(CarouselBasic(), client_dcs=["VA"])
    for i in range(5):
        clients[0].submit(write_spec(f"t{i}", [f"key-{i}"], f"value-{i}"))
    run(cluster, until=20.0)
    assert all(r.committed for r in stats.records)
    for group in _groups(cluster):
        leader_data = {
            k: v.value for k, v in group.leader.store._data.items()
        }
        for replica in group.replicas:
            for key, versioned in replica.store._data.items():
                if versioned.writer is not None:  # a committed write
                    assert leader_data[key] == versioned.value


def test_prepared_sets_drain_after_quiescence():
    cluster, clients, stats = build_system(CarouselBasic(), client_dcs=["VA"])
    for i in range(10):
        clients[0].submit(rmw_spec(f"t{i}", [f"k{i % 3}"]))
    run(cluster, until=60.0)
    assert all(r.committed for r in stats.records)
    for group in _groups(cluster):
        assert len(group.leader.prepared) == 0


def test_high_and_low_priority_treated_identically():
    """Carousel has no prioritization: a high-priority transaction aborts
    under conflict just like a low-priority one."""
    cluster, clients, stats = build_system(
        CarouselBasic(), client_dcs=["VA", "SG"]
    )
    clients[0].submit(rmw_spec("th", ["hot"], priority=Priority.HIGH))
    clients[1].submit(rmw_spec("tl", ["hot"], priority=Priority.LOW))
    run(cluster, until=30.0)
    assert all(r.committed for r in stats.records)


def test_voluntary_abort_after_reads_counts_as_complete():
    cluster, clients, stats = build_system(CarouselBasic(), client_dcs=["VA"])
    from repro.txn.transaction import TransactionSpec

    spec = TransactionSpec(
        txn_id="tv",
        read_keys=("a",),
        write_keys=("a",),
        compute_writes=lambda reads: None,
    )
    clients[0].submit(spec)
    run(cluster)
    (record,) = stats.records
    assert record.committed
    # And the prepared marks were released, so a second txn commits fast.
    clients[0].submit(rmw_spec("t2", ["a"]))
    run(cluster, until=20.0)
    assert all(r.committed for r in stats.records)
