"""Direct-drive unit tests for the 2PL participant server."""

from repro.cluster.node import Node
from repro.net.network import Network
from repro.net.topology import azure_topology
from repro.raft.node import RaftConfig
from repro.sim import Simulator
from repro.systems.twopl.policy import PreemptPolicy, WoundWaitPolicy
from repro.systems.twopl.server import TwoPLParticipant


class Recorder(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name, "VA")
        self.events = []

    def handle_txn_event(self, payload, src):
        self.events.append(("txn_event", payload))

    def handle_vote(self, payload, src):
        self.events.append(("vote", payload))

    def handle_message(self, message):
        self.events.append((message.method, message.payload))

    def of_kind(self, kind):
        return [p for k, p in self.events if k == kind]


def build(policy=None):
    sim = Simulator()
    net = Network(sim, azure_topology())
    server = TwoPLParticipant(
        sim,
        net,
        "p0-VA",
        "VA",
        peers=["p0-VA"],
        config=RaftConfig(election_timeout=None),
        policy=policy or WoundWaitPolicy(),
    )
    server.current_term = 1
    server.become_leader()
    client = Recorder(sim, "client")
    coord = Recorder(sim, "coord")
    net.register(client)
    net.register(coord)
    return sim, server, client, coord


def lock_read(server, txn, ts, priority=0, reads=("k",), writes=("k",)):
    return server.handle_lock_read(
        {
            "txn": txn,
            "reads": list(reads),
            "writes": list(writes),
            "ts": ts,
            "priority": priority,
            "client": "client",
            "coordinator": "coord",
            "participants": [0],
        },
        "client",
    )


def test_uncontended_lock_read_returns_values():
    sim, server, client, coord = build()
    reply = lock_read(server, "t1", 1.0)
    sim.run(until=0.5)
    assert reply.value["ok"] is True
    assert "k" in reply.value["values"]


def test_younger_conflicting_txn_waits():
    sim, server, client, coord = build()
    lock_read(server, "old", 1.0)
    young_reply = lock_read(server, "young", 2.0)
    sim.run(until=0.5)
    assert not young_reply.done
    assert server.locks.is_waiting("young")
    assert server.wounds_sent == 0  # young waits, never wounds


def test_older_requester_wounds_younger_holder():
    sim, server, client, coord = build()
    lock_read(server, "young", 2.0)
    lock_read(server, "old", 1.0)
    sim.run(until=0.5)
    assert server.wounds_sent == 1
    wounds = [p for p in client.of_kind("txn_event") if p["kind"] == "wound"]
    assert wounds and wounds[0]["txn"] == "young"


def test_release_locks_unblocks_waiter_and_fails_pending_read():
    sim, server, client, coord = build()
    lock_read(server, "holder", 1.0)
    waiting = lock_read(server, "waiter", 2.0)   # blocked behind holder
    third = lock_read(server, "third", 3.0)      # blocked behind both
    sim.run(until=0.5)
    assert not waiting.done
    # The waiter's client gives up its attempt (wounded elsewhere).
    server.handle_release_locks({"txn": "waiter"}, "client")
    sim.run(until=1.0)
    assert waiting.value["ok"] is False  # the abandoned read resolved
    # Releasing the holder now grants the third directly.
    server.handle_release_locks({"txn": "holder"}, "client")
    sim.run(until=1.5)
    assert third.value["ok"] is True


def test_prepare_replicates_writes_and_votes():
    sim, server, client, coord = build()
    lock_read(server, "t1", 1.0)
    sim.run(until=0.5)
    server.handle_twopl_prepare(
        {
            "txn": "t1",
            "writes": {"k": "new"},
            "coordinator": "coord",
            "client": "client",
            "participants": [0],
        },
        "client",
    )
    sim.run(until=1.0)
    votes = coord.of_kind("vote")
    assert votes and votes[0]["vote"] == "yes"
    assert server.pending_writes["t1"] == {"k": "new"}


def test_commit_applies_stashed_writes_and_releases():
    sim, server, client, coord = build()
    lock_read(server, "t1", 1.0)
    sim.run(until=0.5)
    server.handle_twopl_prepare(
        {
            "txn": "t1",
            "writes": {"k": "new"},
            "coordinator": "coord",
            "client": "client",
            "participants": [0],
        },
        "client",
    )
    sim.run(until=1.0)
    server.handle_commit_txn({"txn": "t1", "decision": True}, "coord")
    sim.run(until=2.0)
    assert server.store.read("k").value == "new"
    assert server.locks.request_of("t1") is None
    assert "t1" not in server.pending_writes


def test_prepare_after_release_votes_no():
    """A wound that raced the prepare: the server must vote no so the
    coordinator aborts cleanly."""
    sim, server, client, coord = build()
    server.handle_twopl_prepare(
        {
            "txn": "ghost",
            "writes": {"k": "x"},
            "coordinator": "coord",
            "client": "client",
            "participants": [0],
        },
        "client",
    )
    sim.run(until=0.5)
    votes = coord.of_kind("vote")
    assert votes and votes[0]["vote"] == "no"


def test_preempt_policy_wounds_low_priority_holder():
    sim, server, client, coord = build(PreemptPolicy())
    lock_read(server, "batch", 1.0, priority=0)
    lock_read(server, "vip", 2.0, priority=2)  # younger but high priority
    sim.run(until=0.5)
    assert server.wounds_sent == 1
    wounds = [p for p in client.of_kind("txn_event") if p["kind"] == "wound"]
    assert wounds[0]["txn"] == "batch"


def test_wound_deduplicated_per_victim():
    sim, server, client, coord = build()
    lock_read(server, "young", 5.0, reads=("a", "b"), writes=("a", "b"))
    lock_read(server, "old", 1.0, reads=("a",), writes=("a",))
    lock_read(server, "old2", 2.0, reads=("b",), writes=("b",))
    sim.run(until=0.5)
    wounds = [p for p in client.of_kind("txn_event") if p["kind"] == "wound"]
    assert len([w for w in wounds if w["txn"] == "young"]) == 1
