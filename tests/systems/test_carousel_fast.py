"""Integration tests for Carousel Fast."""

from repro.systems.carousel import CarouselBasic, CarouselFast

from tests.helpers import build_system, rmw_spec, write_spec


def test_single_transaction_commits():
    cluster, clients, stats = build_system(CarouselFast(), client_dcs=["VA"])
    clients[0].submit(rmw_spec("t1", ["alpha", "beta"]))
    cluster.sim.run(until=10.0)
    (record,) = stats.records
    assert record.committed


def test_fast_path_beats_basic_at_no_contention():
    latencies = {}
    for label, system in (("basic", CarouselBasic()), ("fast", CarouselFast())):
        cluster, clients, stats = build_system(system, client_dcs=["VA"])
        clients[0].submit(rmw_spec("t1", [f"key-{i}" for i in range(10)]))
        cluster.sim.run(until=10.0)
        latencies[label] = stats.records[0].latency
    assert latencies["fast"] < latencies["basic"]


def test_conflicting_transactions_still_serialize():
    cluster, clients, stats = build_system(
        CarouselFast(), client_dcs=["VA", "SG"]
    )
    clients[0].submit(rmw_spec("tva", ["hot"], marker="A"))
    clients[1].submit(rmw_spec("tsg", ["hot"], marker="B"))
    cluster.sim.run(until=60.0)
    assert len(stats.records) == 2
    assert all(r.committed for r in stats.records)


def test_follower_prepared_marks_drain_after_quiescence():
    cluster, clients, stats = build_system(CarouselFast(), client_dcs=["VA"])
    for i in range(6):
        clients[0].submit(rmw_spec(f"t{i}", [f"k{i % 2}"]))
    cluster.sim.run(until=60.0)
    assert all(r.committed for r in stats.records)
    system = clients[0].system
    for group in system.groups.values():
        for replica in group.replicas:
            assert len(replica.prepared) == 0


def test_sequential_writes_all_apply():
    cluster, clients, stats = build_system(CarouselFast(), client_dcs=["VA"])
    client = clients[0]

    def sequence():
        for i in range(4):
            yield client.submit(write_spec(f"t{i}", ["k"], f"v{i}"))
            yield 0.5
    cluster.sim.spawn(sequence())
    cluster.sim.run(until=60.0)
    assert all(r.committed for r in stats.records)
    system = client.system
    pid = cluster.partitioner.partition_of("k")
    assert system.groups[pid].leader.store.read("k").value == "v3"
