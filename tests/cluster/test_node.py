"""Tests for the node service-time model."""

import pytest

from repro.cluster import Node, ServiceModel
from repro.sim import Simulator


def test_zero_cost_tasks_have_no_delay():
    sim = Simulator()
    model = ServiceModel(sim, service_time=0.0)
    assert model.admission_delay(0.0) == 0.0


def test_single_task_costs_its_service_time():
    sim = Simulator()
    model = ServiceModel(sim)
    assert model.admission_delay(0.002) == 0.002


def test_back_to_back_tasks_queue_fifo():
    sim = Simulator()
    model = ServiceModel(sim)
    assert model.admission_delay(0.001) == 0.001
    assert model.admission_delay(0.001) == 0.002
    assert model.admission_delay(0.001) == 0.003


def test_idle_gap_resets_queue():
    sim = Simulator()
    model = ServiceModel(sim)
    model.admission_delay(0.001)
    sim.schedule(1.0, sim.stop)
    sim.run()
    # Long idle period: queue drained, next task only pays its own cost.
    assert model.admission_delay(0.001) == pytest.approx(0.001)


def test_utilization_ahead_reports_backlog():
    sim = Simulator()
    model = ServiceModel(sim)
    model.admission_delay(0.005)
    assert abs(model.utilization_ahead() - 0.005) < 1e-12


def test_node_defaults_to_perfect_clock_and_free_cpu():
    sim = Simulator()
    node = Node(sim, "n1", "DC1")
    assert node.clock.now() == 0.0
    assert node.service.service_time == 0.0


def test_node_repr_mentions_name_and_dc():
    sim = Simulator()
    node = Node(sim, "leader-0", "VA")
    assert "leader-0" in repr(node)
    assert "VA" in repr(node)
