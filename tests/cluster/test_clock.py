"""Tests for skewed clocks."""

import numpy as np

from repro.cluster import Clock, ClockConfig
from repro.sim import Simulator


def test_zero_offset_clock_tracks_sim_time():
    sim = Simulator()
    clock = Clock(sim, ClockConfig(max_offset=0.0))
    sim.schedule(3.0, sim.stop)
    sim.run()
    assert clock.now() == sim.now == 3.0


def test_offset_is_bounded():
    sim = Simulator()
    for seed in range(20):
        clock = Clock(
            sim,
            ClockConfig(max_offset=0.002),
            np.random.default_rng(seed),
        )
        assert abs(clock.offset) <= 0.002


def test_drift_accumulates_over_time():
    sim = Simulator()
    clock = Clock(
        sim,
        ClockConfig(max_offset=0.0, drift_ppm=100.0),
        np.random.default_rng(0),
    )
    sim.schedule(1000.0, sim.stop)
    sim.run()
    # 100 ppm over 1000 s = 0.1 s
    assert abs(clock.offset - 0.1) < 1e-9


def test_sync_step_bounds_drifting_clock():
    sim = Simulator()
    clock = Clock(
        sim,
        ClockConfig(
            max_offset=0.0,
            drift_ppm=500.0,
            sync_interval=1.0,
            sync_error=0.0005,
        ),
        np.random.default_rng(0),
    )
    sim.run(until=100.0)
    # Without sync the offset would be 500ppm * 100s = 50 ms; with 1 s
    # sync period it stays within sync_error + one interval of drift.
    assert abs(clock.offset) < 0.0005 + 500e-6 * 1.0 + 1e-9


def test_until_converts_clock_deadline_to_sim_delay():
    sim = Simulator()
    clock = Clock(sim, ClockConfig(max_offset=0.0))
    assert clock.until(5.0) == 5.0
    assert clock.until(-1.0) == 0.0  # past deadlines clamp to zero


def test_until_accounts_for_offset():
    sim = Simulator()
    clock = Clock(sim, ClockConfig(max_offset=0.0))
    clock._offset = 0.25  # reading is ahead of true time
    assert abs(clock.until(5.0) - 4.75) < 1e-12


def test_two_clocks_disagree_but_relative_skew_is_stable():
    sim = Simulator()
    a = Clock(sim, ClockConfig(max_offset=0.01), np.random.default_rng(1))
    b = Clock(sim, ClockConfig(max_offset=0.01), np.random.default_rng(2))
    skew_at_0 = a.now() - b.now()
    sim.schedule(10.0, sim.stop)
    sim.run()
    assert abs((a.now() - b.now()) - skew_at_0) < 1e-12


def test_fault_skew_shifts_readings_additively():
    sim = Simulator()
    clock = Clock(sim, ClockConfig(max_offset=0.0))
    baseline = clock.now()
    clock.fault_skew += 0.5
    assert abs(clock.now() - (baseline + 0.5)) < 1e-12
    clock.fault_skew -= 0.5
    assert clock.now() == baseline  # exact: zero skew restores bit-identity
