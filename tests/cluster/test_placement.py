"""Tests for partition placement."""

import pytest

from repro.cluster import place_partitions


def test_paper_layout_5dc_5partitions_3replicas():
    dcs = ("VA", "WA", "PR", "NSW", "SG")
    placements = place_partitions(dcs, 5, 3)
    # One partition leader per datacenter.
    leaders = [p.leader_datacenter for p in placements]
    assert sorted(leaders) == sorted(dcs)
    # At most one replica of a partition per datacenter.
    for p in placements:
        assert len(set(p.datacenters)) == 3


def test_every_dc_hosts_balanced_replica_count():
    dcs = ("VA", "WA", "PR", "NSW", "SG")
    placements = place_partitions(dcs, 5, 3)
    hosted = {dc: 0 for dc in dcs}
    for p in placements:
        for dc in p.datacenters:
            hosted[dc] += 1
    assert set(hosted.values()) == {3}  # 5 partitions * 3 replicas / 5 DCs


def test_more_partitions_than_datacenters_wraps():
    placements = place_partitions(("DC1", "DC2", "DC3"), 12, 3)
    assert len(placements) == 12
    for p in placements:
        assert set(p.datacenters) == {"DC1", "DC2", "DC3"}


def test_leader_is_first_datacenter():
    p = place_partitions(("A", "B", "C"), 1, 2)[0]
    assert p.leader_datacenter == "A"
    assert p.follower_datacenters == ("B",)


def test_replication_factor_exceeding_dcs_rejected():
    with pytest.raises(ValueError):
        place_partitions(("A", "B"), 3, 3)
