"""Tests for hash partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Partitioner


def test_partition_ids_in_range():
    p = Partitioner(5)
    for i in range(1000):
        assert 0 <= p.partition_of(f"key-{i}") < 5


def test_mapping_is_deterministic():
    a, b = Partitioner(5), Partitioner(5)
    for i in range(100):
        key = f"user:{i}"
        assert a.partition_of(key) == b.partition_of(key)


def test_group_keys_preserves_order_within_partition():
    p = Partitioner(3)
    keys = [f"k{i}" for i in range(30)]
    groups = p.group_keys(keys)
    for pid, group in groups.items():
        assert group == [k for k in keys if p.partition_of(k) == pid]


def test_participants_unions_key_sets():
    p = Partitioner(4)
    reads = ["a", "b", "c"]
    writes = ["c", "d"]
    expected = {p.partition_of(k) for k in reads + writes}
    assert p.participants(reads, writes) == expected


def test_single_partition_maps_everything_to_zero():
    p = Partitioner(1)
    assert p.participants(["x", "y", "z"]) == {0}


def test_zero_partitions_rejected():
    with pytest.raises(ValueError):
        Partitioner(0)


@given(st.text(min_size=1, max_size=32), st.integers(min_value=1, max_value=64))
def test_partition_always_valid_for_any_key(key, n):
    assert 0 <= Partitioner(n).partition_of(key) < n


def test_distribution_is_roughly_uniform():
    p = Partitioner(5)
    counts = [0] * 5
    for i in range(10000):
        counts[p.partition_of(f"key-{i:06d}")] += 1
    for count in counts:
        assert 1700 < count < 2300  # within ~15% of 2000
