"""The public API surface stays importable and coherent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.cluster",
    "repro.raft",
    "repro.store",
    "repro.txn",
    "repro.core",
    "repro.systems",
    "repro.systems.carousel",
    "repro.systems.tapir",
    "repro.systems.twopl",
    "repro.workloads",
    "repro.harness",
    "repro.verify",
    "repro.faults",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} is dangling"


def test_version():
    import repro

    assert repro.__version__


def test_headline_objects_are_reachable_from_core():
    from repro.core import Natto, natto_recsf

    system = Natto(natto_recsf())
    assert system.name == "Natto-RECSF"
