"""Invariant checkers: pass on healthy runs, catch seeded corruption.

Most tests drive the checkers against small fake deployments whose
state is corrupted in precisely one way; the mutation smoke test runs a
*real* 2PL deployment with a deliberately broken commit-apply path and
proves the 2PC-atomicity checker catches it.
"""

import numpy as np
import pytest

from repro.cluster.placement import PartitionPlacement
from repro.faults import FaultSchedule
from repro.net import Network, azure_topology
from repro.obs.trace import Tracer
from repro.raft import RaftConfig, ReplicationGroup
from repro.sim import Simulator
from repro.store.kv import KeyValueStore
from repro.systems.twopl.server import TwoPLParticipant
from repro.txn.priority import Priority
from repro.txn.stats import TxnOutcome, TxnRecord
from repro.verify import (
    ExecutionTrace,
    check_all,
    check_atomicity,
    check_monotonicity,
    check_priority,
    check_raft,
    check_replica_consistency,
)
from repro.verify.fuzz import ScenarioSpec, run_scenario


# ----------------------------------------------------------------------
# Fakes


class FakeReplica:
    def __init__(self, name, store):
        self.name = name
        self.store = store


class FakeGroup:
    def __init__(self, replicas, leader=None):
        self.replicas = replicas
        if leader is not None:
            self.leader = leader


class FakeSystem:
    def __init__(self, groups, name="2PL+2PC"):
        self.groups = groups
        self.name = name


def _store(chains):
    """A history-recording store holding the given {key: [writer]} chains."""
    store = KeyValueStore(record_history=True)
    for key, writers in chains.items():
        for writer in writers:
            store.apply(key, f"{writer.rsplit('.', 1)[0]}@{key}", writer)
    return store


def _record(txn_id, committed=True, priority=Priority.LOW, start=0.0, end=1.0,
            abort_reasons=()):
    return TxnRecord(
        txn_id=txn_id,
        priority=priority,
        txn_type="rmw",
        start=start,
        end=end,
        retries=len(abort_reasons),
        outcome=TxnOutcome.COMMITTED if committed else TxnOutcome.FAILED,
        abort_reasons=tuple(abort_reasons),
    )


# ----------------------------------------------------------------------
# 2PC atomicity


def test_atomicity_ok_on_clean_state():
    store = _store({"k": ["t1.0", "t2.1"]})
    system = FakeSystem({0: FakeGroup([FakeReplica("p0", store)])})
    trace = ExecutionTrace()
    trace.record("t1", {}, {"k": "t1@k"})
    trace.record("t2", {"k": "t1@k"}, {"k": "t2@k"})
    records = [_record("t1"), _record("t2")]
    assert check_atomicity(system, records, trace).ok


def test_atomicity_catches_missing_install():
    store = _store({"k": ["t1.0"]})  # t2's write never landed
    system = FakeSystem({0: FakeGroup([FakeReplica("p0", store)])})
    trace = ExecutionTrace()
    trace.record("t2", {}, {"k": "t2@k"})
    report = check_atomicity(system, [_record("t2")], trace)
    assert not report.ok
    assert "0 times" in report.violations[0].detail


def test_atomicity_catches_failed_txn_leaking_writes():
    store = _store({"k": ["dead.3"]})
    system = FakeSystem({0: FakeGroup([FakeReplica("p0", store)])})
    trace = ExecutionTrace()
    trace.record("dead", {}, {"k": "dead@k"})
    report = check_atomicity(system, [_record("dead", committed=False)], trace)
    assert not report.ok
    assert "failed dead" in report.violations[0].detail


def test_atomicity_catches_split_attempt_commit():
    # Key a installed by attempt 0, key b by attempt 1 — 2PC must not
    # mix attempts inside one committed transaction.
    store = _store({"a": ["t1.0"], "b": ["t1.1"]})
    system = FakeSystem({0: FakeGroup([FakeReplica("p0", store)])})
    trace = ExecutionTrace()
    trace.record("t1", {}, {"a": "t1@a", "b": "t1@b"})
    report = check_atomicity(system, [_record("t1")], trace)
    assert not report.ok
    assert "several attempts" in str(report.violations)


# ----------------------------------------------------------------------
# Replica consistency


def test_replica_consistency_accepts_prefix_followers():
    leader = FakeReplica("lead", _store({"k": ["t1.0", "t2.0", "t3.0"]}))
    follower = FakeReplica("foll", _store({"k": ["t1.0", "t2.0"]}))
    system = FakeSystem(
        {0: FakeGroup([leader, follower], leader=leader)}
    )
    assert check_replica_consistency(system).ok


def test_replica_consistency_rejects_diverged_follower():
    leader = FakeReplica("lead", _store({"k": ["t1.0", "t2.0"]}))
    follower = FakeReplica("foll", _store({"k": ["t1.0", "t9.0"]}))
    system = FakeSystem({0: FakeGroup([leader, follower], leader=leader)})
    report = check_replica_consistency(system)
    assert not report.ok
    assert "not a prefix" in report.violations[0].detail


def test_replica_consistency_skips_leaderless_groups():
    a = FakeReplica("a", _store({"k": ["t1.0"]}))
    b = FakeReplica("b", _store({"k": ["t9.0"]}))  # diverged, but TAPIR-style
    system = FakeSystem({0: FakeGroup([a, b])})
    assert check_replica_consistency(system).ok


# ----------------------------------------------------------------------
# Raft


def _raft_system(until=3.0, proposals=5):
    sim = Simulator()
    net = Network(sim, azure_topology())
    group = ReplicationGroup(
        sim,
        net,
        PartitionPlacement(0, ("VA", "WA", "PR")),
        config=RaftConfig(heartbeat_interval=0.05, election_timeout=None),
        rng=np.random.default_rng(0),
    )
    for i in range(proposals):
        sim.schedule(0.1 * (i + 1), lambda i=i: group.replicate(("op", i)))
    sim.run(until=until)
    return FakeSystem({0: group})


def test_raft_invariants_hold_on_healthy_group():
    system = _raft_system()
    leader = system.groups[0].leader
    assert leader.commit_index == 5
    assert check_raft(system).ok


def test_raft_commit_safety_violation_detected():
    system = _raft_system()
    # Corrupt both followers: drop their last entry while the leader
    # still counts it committed.
    group = system.groups[0]
    for replica in group.replicas:
        if replica is not group.leader:
            del replica.log._entries[-1]
            replica.commit_index = min(
                replica.commit_index, replica.log.last_index
            )
            replica.last_applied = min(
                replica.last_applied, replica.commit_index
            )
    report = check_raft(system)
    assert any(v.invariant == "raft-commit-safety" for v in report.violations)


def test_raft_apply_order_violation_detected():
    system = _raft_system()
    leader = system.groups[0].leader
    leader.commit_index = leader.log.last_index + 3
    report = check_raft(system)
    assert any(v.invariant == "raft-apply-order" for v in report.violations)


# ----------------------------------------------------------------------
# Priority ordering


def test_priority_check_flags_upside_down_wound():
    tracer = Tracer()
    tracer.event(
        "priority_abort",
        node="p0",
        txn="low.0",
        by="high.0",
        victim_priority=2,
        winner_priority=0,  # winner does NOT outrank victim
    )
    system = FakeSystem({}, name="Natto-RECSF")
    report = check_priority(system, [], tracer=tracer)
    assert not report.ok


def test_priority_check_flags_preempted_high():
    system = FakeSystem({}, name="Natto-RECSF")
    record = _record(
        "h1", committed=False, priority=Priority.HIGH,
        abort_reasons=("PREEMPTED",),
    )
    report = check_priority(system, [record])
    assert not report.ok
    assert "HIGH" in report.violations[0].detail


def test_priority_check_skipped_for_wound_wait_families():
    # 2PL wounds by age: HIGH being PREEMPTED is legitimate there.
    system = FakeSystem({}, name="2PL+2PC")
    record = _record(
        "h1", committed=False, priority=Priority.HIGH,
        abort_reasons=("PREEMPTED",),
    )
    assert check_priority(system, [record]).ok


# ----------------------------------------------------------------------
# Session monotonicity


def _mono_fixture(second_reads):
    store = _store({"k": ["t1.0", "t2.0"]})
    system = FakeSystem({0: FakeGroup([FakeReplica("p0", store)])})
    trace = ExecutionTrace()
    trace.record("r1", {"k": "t2@k"}, {})
    trace.record("r2", {"k": second_reads}, {})
    records = [
        _record("r1", start=0.0, end=1.0),
        _record("r2", start=2.0, end=3.0),  # strictly after r1
    ]
    sessions = {"client": ["r1", "r2"]}
    return system, records, trace, sessions


def test_monotonic_reads_ok_forward():
    system, records, trace, sessions = _mono_fixture("t2@k")
    assert check_monotonicity(system, records, trace, sessions).ok


def test_monotonic_reads_catches_time_travel():
    system, records, trace, sessions = _mono_fixture("t1@k")  # older version
    report = check_monotonicity(system, records, trace, sessions)
    assert not report.ok
    assert "after" in report.violations[0].detail


def test_monotonic_reads_ignores_overlapping_txns():
    system, records, trace, sessions = _mono_fixture("t1@k")
    records[1] = _record("r2", start=0.5, end=3.0)  # overlaps r1
    assert check_monotonicity(system, records, trace, sessions).ok


# ----------------------------------------------------------------------
# Mutation smoke test (satellite): a deliberately broken commit path in
# a real 2PL deployment must be caught by the 2PC-atomicity checker.


def _broken_on_apply(self, payload, index):
    kind = payload[0]
    if kind == "prepare":
        _, txn, writes = payload
        self.pending_writes[txn] = writes
    elif kind == "commit":
        # BUG: release the transaction's buffered writes without
        # installing them — the commit "succeeds" but the data is gone.
        _, txn = payload
        self.pending_writes.pop(txn, None)


def test_mutation_broken_commit_apply_is_caught(monkeypatch):
    monkeypatch.setattr(TwoPLParticipant, "on_apply", _broken_on_apply)
    outcome = run_scenario(
        ScenarioSpec(system="2PL+2PC", seed=0, schedule=FaultSchedule())
    )
    assert not outcome.ok
    atomicity = [
        v for v in outcome.violations if v.invariant == "atomicity"
    ]
    assert atomicity, f"atomicity checker missed the bug: {outcome.violations}"
    assert any("times" in v.detail for v in atomicity)
