"""Fuzz harness: seeded determinism, shrinking, and replay artifacts.

The determinism contract is the backbone of the whole fault layer: the
same seed must produce a byte-identical fault event log and an
identical failure fingerprint on replay, or failing seeds would not be
actionable.
"""

import json

import pytest

from repro.faults import FaultSchedule, loss_burst
from repro.systems.twopl.server import TwoPLParticipant
from repro.verify.fuzz import (
    FUZZ_SYSTEMS,
    ScenarioSpec,
    load_artifact,
    replay_artifact,
    run_scenario,
    shrink,
    write_failure_artifact,
)


def test_same_seed_is_byte_identical():
    spec = ScenarioSpec(system="Natto-RECSF", seed=5)
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first.ok and second.ok
    assert first.fault_log == second.fault_log  # byte-identical event log
    assert first.fault_fingerprint == second.fault_fingerprint
    assert first.record_fingerprint == second.record_fingerprint
    assert first.log_line() == second.log_line()


def test_different_seeds_diverge():
    a = run_scenario(ScenarioSpec(system="2PL+2PC", seed=1))
    b = run_scenario(ScenarioSpec(system="2PL+2PC", seed=2))
    assert a.spec.schedule != b.spec.schedule


def test_spec_json_round_trip():
    spec = ScenarioSpec(
        system="TAPIR",
        seed=11,
        schedule=FaultSchedule((loss_burst(3.0, 2.0, loss_rate=0.1),)),
    )
    restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec


def test_explicit_schedule_is_used_verbatim():
    schedule = FaultSchedule((loss_burst(3.0, 2.0, loss_rate=0.1),))
    outcome = run_scenario(
        ScenarioSpec(system="Carousel Basic", seed=3, schedule=schedule)
    )
    assert outcome.ok
    assert outcome.spec.schedule == schedule


@pytest.mark.parametrize("system", FUZZ_SYSTEMS)
def test_every_family_survives_a_seeded_scenario(system):
    outcome = run_scenario(ScenarioSpec(system=system, seed=8))
    assert outcome.ok, outcome.report.summary()
    assert outcome.committed == outcome.submitted


def _broken_on_apply(self, payload, index):
    kind = payload[0]
    if kind == "prepare":
        _, txn, writes = payload
        self.pending_writes[txn] = writes
    elif kind == "commit":
        _, txn = payload
        self.pending_writes.pop(txn, None)  # drops the writes on the floor


def test_failing_seed_shrinks_and_replays_identically(tmp_path, monkeypatch):
    monkeypatch.setattr(TwoPLParticipant, "on_apply", _broken_on_apply)
    spec = ScenarioSpec(system="2PL+2PC", seed=4)
    outcome = run_scenario(spec)
    assert not outcome.ok

    # The injected bug is fault-independent, so shrinking must strip the
    # schedule down to nothing (a minimal reproducer).
    minimal_spec, minimal_outcome, runs = shrink(spec)
    assert len(minimal_spec.schedule) == 0
    assert not minimal_outcome.ok
    assert runs >= 1

    # The artifact round-trips and replays to the identical failure.
    path = tmp_path / "failure.json"
    write_failure_artifact(minimal_outcome, path)
    assert load_artifact(path) == minimal_spec
    replayed = replay_artifact(path)
    assert not replayed.ok
    assert replayed.fault_fingerprint == minimal_outcome.fault_fingerprint
    assert replayed.record_fingerprint == minimal_outcome.record_fingerprint
    assert {v.invariant for v in replayed.violations} == {
        v.invariant for v in minimal_outcome.violations
    }


def test_shrink_rejects_passing_scenarios():
    with pytest.raises(ValueError):
        shrink(ScenarioSpec(system="2PL+2PC", seed=1))
