"""Serializability of every system under forced contention.

Each system runs a burst of tagged read-modify-write transactions over
a tiny hot key set from clients on three continents — maximal conflict
pressure — and the committed history must be conflict-serializable with
no lost updates.
"""

import pytest

from repro.harness.systems import SYSTEM_FACTORIES, make_system
from repro.txn.priority import Priority
from repro.verify import ExecutionTrace, SerializabilityChecker, tagged_rmw_spec

from tests.helpers import build_system

HOT_KEYS = ["hot-a", "hot-b", "hot-c"]


def _stores_for(system):
    """Authoritative store per partition, regardless of system family."""
    stores = {}
    for pid, group in system.groups.items():
        replicas = getattr(group, "replicas")
        leader = getattr(group, "leader", replicas[0])
        stores[pid] = leader.store
    return stores


def _enable_history(system):
    for pid, group in system.groups.items():
        for replica in group.replicas:
            replica.store.record_history = True


@pytest.mark.parametrize("system_name", sorted(SYSTEM_FACTORIES))
def test_contended_history_is_serializable(system_name):
    from repro.systems.base import SystemConfig

    # A touch of delay jitter, as any real network has: with perfectly
    # constant delays, OCC mutual-abort retries stay synchronized
    # forever — an artifact, not a protocol property.
    config = SystemConfig(delay_variance_cv=0.01)
    cluster, clients, stats = build_system(
        make_system(system_name), config=config, client_dcs=["VA", "PR", "SG"]
    )
    system = clients[0].system
    _enable_history(system)
    cluster.sim.run(until=2.5)  # probe warm-up (needed by Natto variants)
    for client in clients:
        # The burst is far beyond the paper's contention regime (three
        # hot keys, every transaction conflicting); lift the 100-retry
        # cap so the invariant under test is convergence + correctness.
        client.max_retries = 1000

    trace = ExecutionTrace()
    index = 0

    def burst():
        nonlocal index
        for round_number in range(3):
            for client in clients:
                for j in range(2):
                    keys = [HOT_KEYS[(index + j) % len(HOT_KEYS)],
                            HOT_KEYS[(index + j + 1) % len(HOT_KEYS)]]
                    priority = (
                        Priority.HIGH if (index + j) % 3 == 0 else Priority.LOW
                    )
                    spec = tagged_rmw_spec(
                        trace, f"t{index}-{j}-{client.name}", keys, priority
                    )
                    client.submit(spec)
                index += 2
            yield 0.15

    cluster.sim.spawn(burst())
    # Long horizon: under this contention the youngest transactions in
    # the 2PL systems only win the wound-wait race near the end.
    cluster.sim.run(until=600.0)

    committed = [r.txn_id for r in stats.records if r.committed]
    assert committed, "nothing committed"
    # Liveness expectations differ by family.  Systems that order or
    # queue conflicting work (wound-wait 2PL, Natto's timestamp order)
    # must drain the burst completely.  Pure OCC retry systems
    # (Carousel, TAPIR) legitimately starve under adversarial
    # contention — the paper itself counts transactions that fail after
    # 100 retries — so for them we require most of the burst to drain.
    occ_family = {"Carousel Basic", "Carousel Fast", "TAPIR"}
    if system_name in occ_family:
        assert len(committed) >= 0.5 * len(stats.records)
    else:
        assert all(r.committed for r in stats.records)

    checker = SerializabilityChecker(
        _stores_for(system), trace, committed
    )
    graph = checker.check()
    assert graph.number_of_nodes() == len(committed)


# ----------------------------------------------------------------------
# Canned fault schedules: the same contended burst, but with the network
# or servers misbehaving mid-flight.  Every family must stay
# serializable AND satisfy the protocol invariants (2PC atomicity, Raft
# safety, replica consistency, priority sanity, session monotonicity).


def _crash_target(system_name):
    """A deterministic non-leader replica for this family's deployment."""
    from repro.net.topology import azure_topology
    from repro.systems.base import Cluster, SystemConfig
    from repro.verify.fuzz import _fault_targets

    probe = make_system(system_name)
    probe.setup(Cluster(azure_topology(), SystemConfig(), seed=0))
    followers, _leaders, replicas = _fault_targets(probe)
    return followers[0] if followers else replicas[0]


def _canned_schedules(system_name):
    from repro.faults import (
        FaultSchedule,
        loss_burst,
        region_partition,
        server_crash,
    )

    return {
        "loss-burst": FaultSchedule(
            (loss_burst(3.0, 4.0, loss_rate=0.2, rto=0.05),)
        ),
        "partition-heal": FaultSchedule(
            (region_partition(3.0, 2.5, ["VA", "WA"], ["PR", "NSW", "SG"]),)
        ),
        "crash-recover": FaultSchedule(
            (server_crash(3.0, 2.5, _crash_target(system_name)),)
        ),
    }


@pytest.mark.parametrize("fault_name", ["loss-burst", "partition-heal",
                                        "crash-recover"])
@pytest.mark.parametrize(
    "system_name", ["2PL+2PC", "TAPIR", "Carousel Basic", "Natto-RECSF"]
)
def test_faulted_history_is_serializable_and_invariant(system_name,
                                                       fault_name):
    from repro.verify.fuzz import ScenarioSpec, run_scenario

    schedule = _canned_schedules(system_name)[fault_name]
    outcome = run_scenario(
        ScenarioSpec(system=system_name, seed=0, schedule=schedule)
    )
    assert outcome.ok, outcome.report.summary()
    assert outcome.committed == outcome.submitted
