"""Pinned determinism fingerprints (tier-1 promotion of repro.verify.fingerprint).

Replicates the ``benchmarks/perf/bench_profile.py`` fingerprint recipe
and checks the digests against the pinned ``FINGERPRINTS.json``.  Any
change to simulation arithmetic, RNG consumption order, or protocol
logic shows up here as a digest mismatch; deliberate changes must
re-record via ``python benchmarks/perf/bench_profile.py
--record-fingerprints``.
"""

import json
import pathlib

import pytest

from repro.experiments.common import Scale
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import PointSpec, WorkloadSpec, run_point
from repro.verify.fingerprint import fingerprint_result
from repro.workloads import YcsbTWorkload

FINGERPRINTS_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks" / "perf" / "FINGERPRINTS.json"
)

# Must mirror benchmarks/perf/bench_profile.py exactly — the pinned
# digests are only meaningful under the identical recipe.
FINGERPRINT_SYSTEMS = ("2PL+2PC", "TAPIR", "Carousel Basic", "Natto-RECSF")
FINGERPRINT_RATE = 80
FINGERPRINT_KEYS = 600
FINGERPRINT_SCALE = Scale("fp", duration=2.0, trim=0.5, repeats=1, drain=4.0)

EXPECTED = json.loads(FINGERPRINTS_PATH.read_text())


def test_all_four_families_are_pinned():
    assert set(EXPECTED) == set(FINGERPRINT_SYSTEMS)


@pytest.mark.parametrize("system", FINGERPRINT_SYSTEMS)
def test_fingerprint_matches_pinned(system):
    settings = FINGERPRINT_SCALE.apply(ExperimentSettings()).scaled(seed=0)
    spec = PointSpec(
        system=system,
        x=FINGERPRINT_RATE,
        input_rate=float(FINGERPRINT_RATE),
        workload=WorkloadSpec.of(YcsbTWorkload, num_keys=FINGERPRINT_KEYS),
        settings=settings,
        repeats=FINGERPRINT_SCALE.repeats,
    )
    digest = fingerprint_result(run_point(spec).results[0])
    assert digest == EXPECTED[system], (
        f"determinism fingerprint changed for {system}; if intentional, "
        "re-record with benchmarks/perf/bench_profile.py "
        "--record-fingerprints"
    )
