"""Unit tests: the checker must catch hand-crafted violations."""

import pytest

from repro.store.kv import KeyValueStore
from repro.verify import (
    ExecutionTrace,
    SerializabilityChecker,
    SerializationViolation,
)
from repro.verify.history import INITIAL, writer_of_value


def make_store():
    return KeyValueStore(record_history=True)


def test_writer_of_value_parses_tags():
    assert writer_of_value("t1@k", "k") == "t1"
    assert writer_of_value("init:k" + "0" * 50, "k") == INITIAL


def test_clean_serial_history_passes():
    store = make_store()
    trace = ExecutionTrace()
    # t1 reads initial, writes; t2 reads t1's value, writes.
    store.apply("k", "t1@k", "t1.0")
    trace.record("t1", {"k": "init:k"}, {"k": "t1@k"})
    store.apply("k", "t2@k", "t2.0")
    trace.record("t2", {"k": "t1@k"}, {"k": "t2@k"})
    graph = SerializabilityChecker({"p": store}, trace, ["t1", "t2"]).check()
    assert graph.has_edge("t1", "t2")


def test_lost_update_detected():
    store = make_store()
    trace = ExecutionTrace()
    # t1 claims to have committed a write that never landed.
    trace.record("t1", {"k": "init:k"}, {"k": "t1@k"})
    with pytest.raises(SerializationViolation):
        SerializabilityChecker({"p": store}, trace, ["t1"]).check()


def test_double_apply_detected():
    store = make_store()
    trace = ExecutionTrace()
    store.apply("k", "t1@k", "t1.0")
    store.apply("k", "t1@k", "t1.1")  # applied twice!
    trace.record("t1", {"k": "init:k"}, {"k": "t1@k"})
    with pytest.raises(SerializationViolation):
        SerializabilityChecker({"p": store}, trace, ["t1"]).check()


def test_phantom_read_detected():
    store = make_store()
    trace = ExecutionTrace()
    store.apply("k", "t1@k", "t1.0")
    trace.record("t1", {"k": "init:k"}, {"k": "t1@k"})
    # t2 read a value from a writer that never committed to k.
    store.apply("k", "t2@k", "t2.0")
    trace.record("t2", {"k": "ghost@k"}, {"k": "t2@k"})
    with pytest.raises(SerializationViolation):
        SerializabilityChecker({"p": store}, trace, ["t1", "t2"]).check()


def test_write_skew_style_cycle_detected():
    """Classic non-serializable interleaving: t1 and t2 each read the
    other's pre-state and both write — a rw/rw cycle."""
    store_a = make_store()
    store_b = make_store()
    trace = ExecutionTrace()
    store_a.apply("a", "t1@a", "t1.0")
    store_b.apply("b", "t2@b", "t2.0")
    # t1 read b's initial value (before t2's write): rw t1 -> t2.
    trace.record("t1", {"b": "init:b"}, {"a": "t1@a"})
    # t2 read a's initial value (before t1's write): rw t2 -> t1.
    trace.record("t2", {"a": "init:a"}, {"b": "t2@b"})
    with pytest.raises(SerializationViolation):
        SerializabilityChecker(
            {"a": store_a, "b": store_b}, trace, ["t1", "t2"]
        ).check()


def test_stale_read_cycle_detected():
    store = make_store()
    trace = ExecutionTrace()
    store.apply("k", "t1@k", "t1.0")
    store.apply("k", "t2@k", "t2.0")
    trace.record("t1", {"k": "init:k"}, {"k": "t1@k"})
    # t2 committed after t1 in the chain but claims it read the initial
    # version — an rw edge t2 -> t1 against the ww edge t1 -> t2.
    trace.record("t2", {"k": "init:k"}, {"k": "t2@k"})
    with pytest.raises(SerializationViolation):
        SerializabilityChecker({"p": store}, trace, ["t1", "t2"]).check()


def test_attempt_suffixes_are_normalized():
    store = make_store()
    trace = ExecutionTrace()
    store.apply("k", "t1@k", "t1.3")  # committed on the fourth attempt
    trace.record("t1", {"k": "init:k"}, {"k": "t1@k"})
    SerializabilityChecker({"p": store}, trace, ["t1"]).check()


def test_reads_of_own_writes_do_not_self_loop():
    store = make_store()
    trace = ExecutionTrace()
    store.apply("k", "t1@k", "t1.0")
    trace.record("t1", {"k": "init:k"}, {"k": "t1@k"})
    graph = SerializabilityChecker({"p": store}, trace, ["t1"]).check()
    assert not list(graph.edges("t1", data=True)) or all(
        u != v for u, v in graph.edges()
    )
