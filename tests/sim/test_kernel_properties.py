"""Property-based tests for the event kernel and futures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Future, Simulator, all_of


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
@settings(max_examples=200, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.booleans(),  # cancel it?
        ),
        max_size=40,
    )
)
@settings(max_examples=200, deadline=None)
def test_cancelled_timers_never_fire(specs):
    sim = Simulator()
    fired = []
    for i, (delay, cancel) in enumerate(specs):
        timer = sim.schedule(delay, lambda i=i: fired.append(i))
        if cancel:
            timer.cancel()
    sim.run()
    expected = {i for i, (_, cancel) in enumerate(specs) if not cancel}
    assert set(fired) == expected


@given(st.integers(min_value=0, max_value=20), st.integers(min_value=0))
@settings(max_examples=100, deadline=None)
def test_all_of_resolves_iff_all_inputs_do(n, resolve_mask):
    futures = [Future() for _ in range(n)]
    combined = all_of(futures)
    resolved = 0
    for i, future in enumerate(futures):
        if resolve_mask & (1 << i):
            future.set_result(i)
            resolved += 1
    assert combined.done == (resolved == n)


@given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1,
                max_size=10))
@settings(max_examples=100, deadline=None)
def test_process_sleep_chain_total_time(delays):
    sim = Simulator()

    def proc():
        for delay in delays:
            yield delay

    p = sim.spawn(proc())
    sim.run()
    assert p.done
    assert sim.now == sum(delays)


@given(st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_run_until_never_overshoots(first, second):
    sim = Simulator()
    sim.schedule(first, lambda: None)
    sim.schedule(second, lambda: None)
    horizon = min(first, second) / 2
    sim.run(until=horizon)
    assert sim.now == horizon
