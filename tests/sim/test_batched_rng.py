"""Draw-sequence equivalence for the block-filled samplers.

The batched samplers in :mod:`repro.sim.randomness` exist purely as a
performance device: a block fill must consume the generator's bitstream
exactly as the scalar calls it replaced did, so switching a stream to a
batcher changes no experiment output.  Each test here drives a batched
sampler and an identically seeded scalar generator well past several
refill boundaries and asserts bit-exact equality — including the
end-to-end delay/loss models, compared against the formulas the
pre-batching code used verbatim.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.net.delay import ParetoDelay, UniformJitterDelay, pareto_shape_for_cv
from repro.net.loss import LossConfig, LossModel
from repro.net.topology import Topology
from repro.sim.randomness import (
    BatchedGeometric,
    BatchedStandardExponential,
    BatchedUniform,
)

SEEDS = (0, 1, 42, 20220527)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Raw sampler equivalence, across refill boundaries


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("block_size", (1, 2, 7, 64))
def test_batched_uniform_matches_scalar_sequence(seed, block_size):
    scalar = _rng(seed)
    batched = BatchedUniform(_rng(seed), block_size=block_size)
    # 5x the block size: several refills, plus a partial final block.
    draws = 5 * block_size + 3
    for _ in range(draws):
        assert batched.random() == float(scalar.random())


def test_batched_uniform_default_block_crosses_refill():
    scalar = _rng(9)
    batched = BatchedUniform(_rng(9))  # default block size
    for _ in range(2 * 4096 + 17):
        assert batched.random() == float(scalar.random())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("block_size", (1, 3, 16))
def test_batched_standard_exponential_matches_scalar_sequence(
    seed, block_size
):
    scalar = _rng(seed)
    batched = BatchedStandardExponential(_rng(seed), block_size=block_size)
    for _ in range(5 * block_size + 2):
        assert batched.next() == float(scalar.standard_exponential())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("p", (0.5, 0.95, 0.999))
def test_batched_geometric_matches_scalar_sequence(seed, p):
    scalar = _rng(seed)
    batched = BatchedGeometric(_rng(seed), p, block_size=5)
    for _ in range(23):
        assert batched.next() == int(scalar.geometric(p))


# ----------------------------------------------------------------------
# The numpy identities the batchers lean on: derived distributions are
# exact transforms of the raw stream, not independently sampled.


@pytest.mark.parametrize("seed", SEEDS)
def test_exponential_is_scale_times_standard_exponential(seed):
    """``rng.exponential(scale)`` == ``scale * standard_exponential()``
    bit-for-bit — what lets the client's open loop batch its gaps."""
    direct = _rng(seed)
    batched = BatchedStandardExponential(_rng(seed), block_size=8)
    for scale in (0.001, 0.25, 1.0, 40.0) * 5:
        assert batched.next() * scale == float(direct.exponential(scale))


@pytest.mark.parametrize("seed", SEEDS)
def test_pareto_is_expm1_of_standard_exponential(seed):
    """``rng.pareto(a)`` == ``expm1(standard_exponential() / a)`` —
    what lets one exponential block serve every Pareto shape."""
    direct = _rng(seed)
    batched = BatchedStandardExponential(_rng(seed), block_size=8)
    for alpha in (1.5, 2.3, 3.8, 7.0) * 5:
        assert math.expm1(batched.next() / alpha) == float(
            direct.pareto(alpha)
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_uniform_zero_to_high_is_high_times_random(seed):
    """``rng.uniform(0, h)`` == ``h * rng.random()`` bit-for-bit."""
    direct = _rng(seed)
    batched = BatchedUniform(_rng(seed), block_size=8)
    for high in (0.02, 0.5, 3.0) * 7:
        assert high * batched.random() == float(direct.uniform(0.0, high))


# ----------------------------------------------------------------------
# End-to-end models vs the exact pre-batching formulas


def _topology() -> Topology:
    return Topology(
        "three-dc",
        datacenters=("dc-a", "dc-b", "dc-c"),
        rtt_ms={
            ("dc-a", "dc-b"): 40.0,
            ("dc-a", "dc-c"): 90.0,
            ("dc-b", "dc-c"): 60.0,
        },
        jitter_scale={("dc-a", "dc-c"): 2.0},
    )


PAIRS = (("dc-a", "dc-b"), ("dc-a", "dc-c"), ("dc-b", "dc-c"))


@pytest.mark.parametrize("seed", SEEDS)
def test_uniform_jitter_delay_matches_pre_batching_formula(seed):
    topology = _topology()
    model = UniformJitterDelay(topology, _rng(seed), jitter=0.05)
    reference = _rng(seed)
    for _ in range(600):
        for src, dst in PAIRS:
            base = topology.one_way(src, dst)
            scale = topology.jitter_multiplier(src, dst)
            expected = base * (
                1.0 + float(reference.uniform(0.0, 0.05 * scale))
            )
            assert model.sample(src, dst) == expected


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("cv", (0.15, 0.5))
def test_pareto_delay_matches_pre_batching_formula(seed, cv):
    topology = _topology()
    model = ParetoDelay(topology, _rng(seed), cv)
    reference = _rng(seed)
    base_alpha = pareto_shape_for_cv(cv)
    for _ in range(900):
        for src, dst in PAIRS:
            base = topology.one_way(src, dst)
            scale_cv = topology.jitter_multiplier(src, dst)
            alpha = (
                base_alpha
                if scale_cv == 1.0
                else pareto_shape_for_cv(cv * scale_cv)
            )
            x_m = base * (alpha - 1.0) / alpha
            expected = x_m * (1.0 + float(reference.pareto(alpha)))
            assert model.sample(src, dst) == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_loss_model_matches_pre_batching_formula(seed):
    config = LossConfig(loss_rate=0.05)
    model = LossModel(config, _rng(seed))
    reference = _rng(seed)
    for _ in range(2100):  # > 2 geometric blocks
        attempts = int(reference.geometric(1.0 - 0.05))
        assert model.retransmission_delay() == (attempts - 1) * config.rto


def test_loss_model_zero_rate_draws_nothing():
    rng = _rng(3)
    before = rng.bit_generator.state["state"]["state"]
    model = LossModel(LossConfig(loss_rate=0.0), rng)
    for _ in range(10):
        assert model.retransmission_delay() == 0.0
    assert rng.bit_generator.state["state"]["state"] == before
