"""Tests for Future and the combinators."""

import pytest

from repro.sim import Future, all_of, any_of
from repro.sim.future import FutureError


def test_set_result_resolves():
    f = Future()
    assert not f.done
    f.set_result(42)
    assert f.done
    assert f.value == 42
    assert f.exception is None


def test_value_before_resolution_raises():
    with pytest.raises(FutureError):
        Future().value


def test_double_resolution_raises():
    f = Future()
    f.set_result(1)
    with pytest.raises(FutureError):
        f.set_result(2)


def test_set_exception_propagates_through_value():
    f = Future()
    f.set_exception(ValueError("boom"))
    assert f.done
    with pytest.raises(ValueError):
        f.value


def test_try_set_result_reports_winner():
    f = Future()
    assert f.try_set_result("first")
    assert not f.try_set_result("second")
    assert f.value == "first"


def test_callback_after_resolution_runs_immediately():
    f = Future()
    f.set_result("x")
    seen = []
    f.add_done_callback(lambda fut: seen.append(fut.value))
    assert seen == ["x"]


def test_callbacks_run_in_registration_order():
    f = Future()
    seen = []
    f.add_done_callback(lambda _: seen.append(1))
    f.add_done_callback(lambda _: seen.append(2))
    f.set_result(None)
    assert seen == [1, 2]


def test_all_of_collects_values_in_input_order():
    a, b, c = Future(), Future(), Future()
    combined = all_of([a, b, c])
    b.set_result("b")
    a.set_result("a")
    assert not combined.done
    c.set_result("c")
    assert combined.value == ["a", "b", "c"]


def test_all_of_empty_resolves_immediately():
    assert all_of([]).value == []


def test_all_of_propagates_exception():
    a, b = Future(), Future()
    combined = all_of([a, b])
    a.set_exception(RuntimeError("bad"))
    b.set_result(1)
    with pytest.raises(RuntimeError):
        combined.value


def test_any_of_takes_first_resolution():
    a, b = Future(), Future()
    combined = any_of([a, b])
    b.set_result("fast")
    assert combined.value == "fast"
    a.set_result("slow")
    assert combined.value == "fast"


def test_any_of_with_already_resolved_input():
    a = Future()
    a.set_result("ready")
    assert any_of([a, Future()]).value == "ready"


def test_any_of_requires_inputs():
    with pytest.raises(ValueError):
        any_of([])
