"""Tests for generator-based processes."""

import pytest

from repro.sim import Future, Simulator


def test_process_sleeps_on_numeric_yield():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 1.0
        trace.append(sim.now)
        yield 0.5
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [0.0, 1.0, 1.5]


def test_process_awaits_future_value():
    sim = Simulator()
    gate = Future()
    got = []

    def proc():
        value = yield gate
        got.append(value)

    sim.spawn(proc())
    sim.schedule(2.0, lambda: gate.set_result("payload"))
    sim.run()
    assert got == ["payload"]


def test_process_return_value_becomes_future_value():
    sim = Simulator()

    def proc():
        yield 1.0
        return "done"

    p = sim.spawn(proc())
    sim.run()
    assert p.value == "done"


def test_process_joins_child_process():
    sim = Simulator()

    def child():
        yield 2.0
        return 7

    def parent():
        result = yield sim.spawn(child())
        return result * 2

    p = sim.spawn(parent())
    sim.run()
    assert p.value == 14


def test_future_exception_is_thrown_into_process():
    sim = Simulator()
    gate = Future()
    caught = []

    def proc():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(proc())
    sim.schedule(1.0, lambda: gate.set_exception(ValueError("kaboom")))
    sim.run()
    assert caught == ["kaboom"]


def test_uncaught_process_exception_resolves_future_with_error():
    sim = Simulator()

    def proc():
        yield 0.1
        raise RuntimeError("died")

    p = sim.spawn(proc())
    sim.run()
    with pytest.raises(RuntimeError):
        p.value


def test_invalid_yield_type_raises_in_process():
    sim = Simulator()

    def proc():
        yield "not a future"

    p = sim.spawn(proc())
    sim.run()
    with pytest.raises(TypeError):
        p.value


def test_spawn_defers_first_step():
    sim = Simulator()
    trace = []

    def proc():
        trace.append("ran")
        yield 0

    sim.spawn(proc())
    assert trace == []  # not started until the loop runs
    sim.run()
    assert trace == ["ran"]


def test_many_interleaved_processes():
    sim = Simulator()
    trace = []

    def proc(name, period):
        for _ in range(3):
            yield period
            trace.append((name, sim.now))

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 1.5))
    sim.run()
    # At t=3.0 both fire; b scheduled its wake-up first (at t=1.5), so
    # FIFO tie-breaking runs b before a.
    assert trace == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]
