"""Cancellation bookkeeping: live-event counts and heap compaction."""

from repro.sim import Simulator


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    keep = [sim.schedule(float(i + 1), lambda: None) for i in range(3)]
    drop = [sim.schedule(float(i + 10), lambda: None) for i in range(2)]
    assert sim.pending_events == 5
    drop[0].cancel()
    assert sim.pending_events == 4
    assert keep  # silence unused-variable linters


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    timer.cancel()
    timer.cancel()
    assert sim.pending_events == 1


def test_cancelled_callbacks_never_fire():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    timer = sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(3.0, lambda: fired.append("c"))
    timer.cancel()
    sim.run()
    assert fired == ["a", "c"]


def test_heap_compacts_when_cancelled_dominate():
    sim = Simulator()
    timers = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    assert sim.heap_size == 100
    # Cancel until cancelled entries outnumber live ones; the heap must
    # shrink rather than accumulate dead weight.  (Compaction triggers
    # as soon as cancelled entries dominate — at the 51st cancel here —
    # so the raw heap never holds a cancelled majority.)
    for timer in timers[:60]:
        timer.cancel()
    assert sim.pending_events == 40
    assert sim.heap_size < 60
    assert sim.heap_size - sim.pending_events <= sim.pending_events


def test_compaction_preserves_firing_order():
    sim = Simulator()
    order = []
    timers = {}
    for i in range(50):
        timers[i] = sim.schedule(
            float(i + 1), lambda i=i: order.append(i)
        )
    # Cancel most of the even ones to force a compaction mid-schedule.
    cancelled = [i for i in range(0, 50, 2)] + [1, 3, 5]
    for i in cancelled:
        timers[i].cancel()
    sim.run()
    expected = [i for i in range(50) if i not in set(cancelled)]
    assert order == expected


def test_cancel_after_fire_keeps_counter_sane():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.run()
    # Firing removed it from the heap; a late cancel must not make the
    # live-event count go negative.
    timer.cancel()
    assert sim.pending_events == 0
    assert sim.heap_size == 0


def test_cancel_from_callback_before_deadline():
    sim = Simulator()
    fired = []
    victim = sim.schedule(2.0, lambda: fired.append("victim"))
    sim.schedule(1.0, lambda: victim.cancel())
    sim.schedule(3.0, lambda: fired.append("late"))
    sim.run()
    assert fired == ["late"]


def test_determinism_with_heavy_cancellation():
    def run_once():
        sim = Simulator()
        order = []
        timers = []
        for i in range(200):
            timers.append(
                sim.schedule(float(i % 7) + 0.1, lambda i=i: order.append(i))
            )
        for i in range(0, 200, 3):
            timers[i].cancel()
        sim.run()
        return order

    assert run_once() == run_once()


def test_run_until_with_cancelled_head():
    sim = Simulator()
    fired = []
    head = sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    head.cancel()
    sim.run(until=5.0)
    assert fired == [2]
    assert sim.now == 5.0
