"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_runs_callback_at_deadline():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_events_run_in_deadline_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_deadline_events_run_fifo():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, lambda label=label: order.append(label))
    sim.run()
    assert order == ["a", "b", "c"]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    times = []

    def outer():
        times.append(sim.now)
        sim.schedule(0.5, lambda: times.append(sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert times == [1.0, 1.5]


def test_run_until_stops_before_later_events_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1))
    sim.schedule(5.0, lambda: seen.append(5))
    sim.run(until=2.0)
    assert seen == [1]
    assert sim.now == 2.0
    sim.run()
    assert seen == [1, 5]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.stop())
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    seen = []
    timer = sim.schedule(1.0, lambda: seen.append("fired"))
    timer.cancel()
    sim.run()
    assert seen == []
    assert timer.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_stop_halts_the_loop():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, lambda: seen.append("late"))
    sim.run()
    assert seen == []
    assert sim.now == 1.0


def test_timeout_future_resolves_at_deadline():
    sim = Simulator()
    future = sim.timeout(0.25)
    resolved_at = []
    future.add_done_callback(lambda _: resolved_at.append(sim.now))
    sim.run()
    assert resolved_at == [0.25]


def test_zero_delay_event_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]


def test_heavy_event_load_maintains_order():
    sim = Simulator()
    seen = []
    # Insert in reverse order; must still fire sorted.
    for i in reversed(range(500)):
        sim.schedule(i * 0.001, lambda i=i: seen.append(i))
    sim.run()
    assert seen == sorted(seen)


def test_every_fires_on_a_fixed_cadence():
    sim = Simulator()
    ticks = []
    timer = sim.every(0.5, lambda: ticks.append(sim.now), until=2.0)
    sim.run()
    assert ticks == [0.5, 1.0, 1.5, 2.0]
    assert timer.fired == 4


def test_every_cancel_stops_the_series():
    sim = Simulator()
    ticks = []
    timer = sim.every(0.5, lambda: ticks.append(sim.now))
    sim.schedule(1.2, timer.cancel)
    sim.schedule(1.2, timer.cancel)  # idempotent
    sim.run(until=5.0)
    assert ticks == [0.5, 1.0]


def test_every_callback_may_cancel_its_own_timer():
    sim = Simulator()
    ticks = []
    timer = sim.every(
        0.25,
        lambda: (ticks.append(sim.now), timer.cancel())
        if len(ticks) >= 2 else ticks.append(sim.now),
    )
    sim.run(until=10.0)
    assert len(ticks) == 3


def test_every_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)
