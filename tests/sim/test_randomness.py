"""Tests for named random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(7).stream("workload")
    b = RandomStreams(7).stream("workload")
    assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))


def test_different_names_give_independent_streams():
    streams = RandomStreams(7)
    a = list(streams.stream("workload").integers(0, 10**9, 8))
    b = list(streams.stream("network").integers(0, 10**9, 8))
    assert a != b


def test_stream_instance_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("x") is streams.stream("x")


def test_consuming_one_stream_does_not_shift_another():
    base = RandomStreams(3)
    expected = list(base.stream("b").integers(0, 10**9, 5))

    other = RandomStreams(3)
    other.stream("a").integers(0, 10**9, 100)  # heavy use of stream a
    assert list(other.stream("b").integers(0, 10**9, 5)) == expected


def test_fork_changes_all_streams():
    base = RandomStreams(3)
    fork = base.fork(1)
    assert list(base.stream("w").integers(0, 10**9, 5)) != list(
        fork.stream("w").integers(0, 10**9, 5)
    )


def test_forks_with_different_salts_differ():
    base = RandomStreams(3)
    assert list(base.fork(1).stream("w").integers(0, 10**9, 5)) != list(
        base.fork(2).stream("w").integers(0, 10**9, 5)
    )
