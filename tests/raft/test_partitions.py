"""Raft under network partitions (fault injection).

The paper's experiments run failure-free, but the Raft substrate is a
real consensus implementation; these tests exercise the failure
behaviour the experiments rely on *not* needing: leader isolation,
re-election on the majority side, step-down and log repair on heal.
"""

import numpy as np

from repro.cluster.placement import PartitionPlacement
from repro.net import Network, local_cluster_topology
from repro.raft import RaftConfig, ReplicationGroup, Role
from repro.sim import Simulator


def build(seed=0):
    sim = Simulator()
    net = Network(sim, local_cluster_topology())
    group = ReplicationGroup(
        sim,
        net,
        PartitionPlacement(0, ("DC1", "DC2", "DC3")),
        config=RaftConfig(heartbeat_interval=0.02, election_timeout=0.15),
        rng=np.random.default_rng(seed),
    )
    return sim, net, group


def leaders(group):
    return [r for r in group.replicas if r.role is Role.LEADER]


def settle(sim, until):
    sim.run(until=until)


def test_majority_side_elects_new_leader_when_leader_isolated():
    sim, net, group = build()
    settle(sim, 2.0)
    (old_leader,) = leaders(group)
    others = [r for r in group.replicas if r is not old_leader]

    net.partition({old_leader.name}, {r.name for r in others})
    settle(sim, 6.0)
    majority_leaders = [r for r in others if r.role is Role.LEADER]
    assert len(majority_leaders) == 1
    assert majority_leaders[0].current_term > old_leader.current_term


def test_isolated_leader_steps_down_on_heal():
    sim, net, group = build()
    settle(sim, 2.0)
    (old_leader,) = leaders(group)
    others = [r for r in group.replicas if r is not old_leader]
    net.partition({old_leader.name}, {r.name for r in others})
    settle(sim, 6.0)
    net.heal()
    settle(sim, 10.0)
    assert old_leader.role is not Role.LEADER
    assert len(leaders(group)) == 1


def test_uncommitted_minority_entries_are_discarded_on_heal():
    sim, net, group = build()
    settle(sim, 2.0)
    (old_leader,) = leaders(group)
    others = [r for r in group.replicas if r is not old_leader]

    # Commit one entry cluster-wide first.
    future = old_leader.propose("committed-before-partition")
    settle(sim, 3.0)
    assert future.done

    net.partition({old_leader.name}, {r.name for r in others})
    # Old leader accepts a proposal it can never commit.
    orphan = old_leader.propose("orphaned")
    settle(sim, 7.0)
    assert not orphan.done

    # Majority side elects a new leader and commits its own entry.
    (new_leader,) = [r for r in others if r.role is Role.LEADER]
    replacement = new_leader.propose("committed-during-partition")
    settle(sim, 9.0)
    assert replacement.done

    net.heal()
    settle(sim, 15.0)
    # Log repair: every replica converges to the new leader's log; the
    # orphaned entry is gone.
    reference = [e.payload for e in new_leader.log.snapshot()]
    assert "orphaned" not in reference
    assert "committed-during-partition" in reference
    for replica in group.replicas:
        assert [e.payload for e in replica.log.snapshot()] == reference


def test_no_commit_possible_without_majority():
    sim, net, group = build()
    settle(sim, 2.0)
    (leader,) = leaders(group)
    others = {r.name for r in group.replicas if r is not leader}
    net.partition({leader.name}, others)
    stranded = leader.propose("no-quorum")
    settle(sim, 8.0)
    assert not stranded.done


def test_cluster_survives_repeated_partitions():
    sim, net, group = build(seed=3)
    settle(sim, 2.0)
    for round_number in range(3):
        (leader,) = leaders(group)
        others = {r.name for r in group.replicas if r is not leader}
        net.partition({leader.name}, others)
        settle(sim, sim.now + 4.0)
        net.heal()
        settle(sim, sim.now + 4.0)
    assert len(leaders(group)) == 1
    # And the healed cluster still commits.
    (leader,) = leaders(group)
    future = leader.propose("after-the-storm")
    settle(sim, sim.now + 3.0)
    assert future.done
