"""Tests for the Raft log."""

from hypothesis import given
from hypothesis import strategies as st

from repro.raft import LogEntry, RaftLog


def test_empty_log_sentinel():
    log = RaftLog()
    assert log.last_index == 0
    assert log.last_term == 0
    assert log.term_at(0) == 0
    assert log.term_at(1) is None


def test_append_assigns_sequential_indexes():
    log = RaftLog()
    assert log.append(LogEntry(1, "a")) == 1
    assert log.append(LogEntry(1, "b")) == 2
    assert log.last_index == 2
    assert log.entry_at(2).payload == "b"


def test_matches_consistency_check():
    log = RaftLog()
    log.append(LogEntry(1, "a"))
    assert log.matches(0, 0)
    assert log.matches(1, 1)
    assert not log.matches(1, 2)
    assert not log.matches(2, 1)


def test_append_from_leader_success():
    log = RaftLog()
    ok = log.append_from_leader(0, 0, [LogEntry(1, "a"), LogEntry(1, "b")])
    assert ok
    assert log.last_index == 2


def test_append_from_leader_rejects_gap():
    log = RaftLog()
    assert not log.append_from_leader(3, 1, [LogEntry(1, "x")])
    assert log.last_index == 0


def test_conflicting_suffix_is_truncated():
    log = RaftLog()
    log.append_from_leader(0, 0, [LogEntry(1, "a"), LogEntry(1, "b")])
    # New leader in term 2 overwrites index 2.
    ok = log.append_from_leader(1, 1, [LogEntry(2, "c"), LogEntry(2, "d")])
    assert ok
    assert [e.payload for e in log.snapshot()] == ["a", "c", "d"]
    assert [e.term for e in log.snapshot()] == [1, 2, 2]


def test_duplicate_entries_are_idempotent():
    log = RaftLog()
    entries = [LogEntry(1, "a"), LogEntry(1, "b")]
    log.append_from_leader(0, 0, entries)
    log.append_from_leader(0, 0, entries)  # retransmission
    assert log.last_index == 2


def test_entries_from_returns_suffix():
    log = RaftLog()
    for p in "abc":
        log.append(LogEntry(1, p))
    assert [e.payload for e in log.entries_from(2)] == ["b", "c"]
    assert log.entries_from(4) == []


def test_up_to_date_prefers_higher_term():
    log = RaftLog()
    log.append(LogEntry(2, "a"))
    assert log.up_to_date(1, 3)       # higher last term wins
    assert not log.up_to_date(5, 1)   # lower term loses despite length


def test_up_to_date_same_term_prefers_longer_log():
    log = RaftLog()
    log.append(LogEntry(1, "a"))
    log.append(LogEntry(1, "b"))
    assert log.up_to_date(2, 1)
    assert log.up_to_date(3, 1)
    assert not log.up_to_date(1, 1)


@given(st.lists(st.integers(min_value=1, max_value=5), max_size=30))
def test_terms_are_monotonic_after_leader_appends(terms):
    """Appending entries with non-decreasing terms keeps the log sorted."""
    log = RaftLog()
    current = 0
    for term in terms:
        current = max(current, term)
        log.append(LogEntry(current, None))
    snapshot = [e.term for e in log.snapshot()]
    assert snapshot == sorted(snapshot)
