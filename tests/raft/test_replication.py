"""Tests for replication through a ReplicationGroup."""

import pytest

from repro.cluster.placement import PartitionPlacement
from repro.net import Network, azure_topology
from repro.raft import RaftConfig, ReplicationGroup, Role
from repro.sim import Simulator


def build(datacenters=("VA", "WA", "PR"), apply_callback=None, heartbeat=0.05):
    sim = Simulator()
    net = Network(sim, azure_topology())
    group = ReplicationGroup(
        sim,
        net,
        PartitionPlacement(0, tuple(datacenters)),
        config=RaftConfig(heartbeat_interval=heartbeat, election_timeout=None),
        apply_callback=apply_callback,
    )
    return sim, net, group


def test_designated_leader_is_ready_at_time_zero():
    _, _, group = build()
    assert group.leader.role is Role.LEADER
    assert group.leader.datacenter == "VA"


def test_replicate_commits_after_one_round_trip_to_nearest_majority():
    sim, _, group = build()
    committed_at = []
    future = group.replicate({"op": "x"})
    future.add_done_callback(lambda f: committed_at.append(sim.now))
    sim.run(until=1.0)
    assert future.done
    # Majority of {VA, WA, PR} from VA needs the nearest follower ack:
    # WA at RTT 67 ms.
    assert committed_at[0] == pytest.approx(0.067, abs=0.005)


def test_replicate_resolves_with_log_index():
    sim, _, group = build()
    f1 = group.replicate("a")
    f2 = group.replicate("b")
    sim.run(until=1.0)
    assert f1.value == 1
    assert f2.value == 2


def test_entries_apply_in_order_on_all_replicas():
    applied = []
    sim, _, group = build(
        apply_callback=lambda payload, index: applied.append((payload, index))
    )
    for op in "abc":
        group.replicate(op)
    sim.run(until=2.0)
    # 3 replicas each apply 3 entries, in index order per replica.
    assert len(applied) == 9
    per_replica = [applied[i::1] for i in range(1)]  # flatten check below
    indexes_seen = [index for _, index in applied]
    assert sorted(indexes_seen) == [1, 1, 1, 2, 2, 2, 3, 3, 3]
    # Order is never violated: for the concatenated stream, each index i+1
    # appears only after index i has appeared at least once.
    first_seen = {}
    for position, (_, index) in enumerate(applied):
        first_seen.setdefault(index, position)
    assert first_seen[1] < first_seen[2] < first_seen[3]


def test_follower_logs_converge_to_leader_log():
    sim, _, group = build()
    for op in range(5):
        group.replicate(op)
    sim.run(until=2.0)
    leader_log = group.leader.log.snapshot()
    for replica in group.replicas:
        assert replica.log.snapshot() == leader_log
        assert replica.commit_index == 5


def test_propose_on_follower_fails():
    sim, _, group = build()
    follower = group.replicas[1]
    future = follower.propose("x")
    assert future.done
    with pytest.raises(RuntimeError):
        future.value


def test_single_replica_group_commits_immediately():
    sim, net, group = build(datacenters=("VA",))
    future = group.replicate("solo")
    sim.run(until=0.1)
    assert future.value == 1


def test_replica_in_and_closest_replica():
    _, _, group = build()
    assert group.replica_in("WA").name == "p0-WA"
    assert group.replica_in("SG") is None
    topo = azure_topology()
    assert group.closest_replica_name("VA", topo) == "p0-VA"
    # From SG the closest of {VA 214, WA 163, PR 149} is PR.
    assert group.closest_replica_name("SG", topo) == "p0-PR"


def test_many_concurrent_proposals_all_commit():
    sim, _, group = build()
    futures = [group.replicate(i) for i in range(50)]
    sim.run(until=2.0)
    assert all(f.done for f in futures)
    assert [f.value for f in futures] == list(range(1, 51))
