"""Tests for leader election (exercised even though experiments run
failure-free)."""

import numpy as np

from repro.cluster.placement import PartitionPlacement
from repro.net import Network, local_cluster_topology
from repro.raft import RaftConfig, ReplicationGroup, Role
from repro.sim import Simulator


def build_with_elections(seed=0):
    sim = Simulator()
    net = Network(sim, local_cluster_topology())
    group = ReplicationGroup(
        sim,
        net,
        PartitionPlacement(0, ("DC1", "DC2", "DC3")),
        config=RaftConfig(heartbeat_interval=0.02, election_timeout=0.1),
        rng=np.random.default_rng(seed),
    )
    return sim, group


def leaders(group):
    return [r for r in group.replicas if r.role is Role.LEADER]


def test_exactly_one_leader_emerges():
    sim, group = build_with_elections()
    sim.run(until=2.0)
    assert len(leaders(group)) == 1


def test_terms_increase_during_election():
    sim, group = build_with_elections()
    sim.run(until=2.0)
    assert all(r.current_term >= 1 for r in group.replicas)


def test_leader_is_stable_once_elected():
    sim, group = build_with_elections()
    sim.run(until=1.0)
    (leader,) = leaders(group)
    term = leader.current_term
    sim.run(until=5.0)
    assert leaders(group) == [leader]
    assert leader.current_term == term


def test_elected_leader_can_replicate():
    sim, group = build_with_elections()
    sim.run(until=1.0)
    (leader,) = leaders(group)
    future = leader.propose("after-election")
    sim.run(until=2.0)
    assert future.done
    assert future.value == leader.log.last_index


def test_followers_learn_leader_hint():
    sim, group = build_with_elections()
    sim.run(until=2.0)
    (leader,) = leaders(group)
    for replica in group.replicas:
        assert replica.leader_hint == leader.name


def test_at_most_one_leader_per_term_across_seeds():
    """Election safety: never two leaders in the same term."""
    for seed in range(5):
        sim, group = build_with_elections(seed)
        sim.run(until=3.0)
        by_term = {}
        for replica in group.replicas:
            if replica.role is Role.LEADER:
                by_term.setdefault(replica.current_term, []).append(replica)
        for term_leaders in by_term.values():
            assert len(term_leaders) == 1
