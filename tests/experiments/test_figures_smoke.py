"""Smoke tests for the experiment modules (tiny scale, subset grids).

These don't re-assert the paper's shapes — the benchmark suite does —
they check that every figure module wires up, sweeps, and produces
well-formed tables.
"""

import math

from repro.experiments import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    table1,
)
from repro.experiments.common import Scale

TINY = Scale("tiny", duration=2.0, trim=0.5, repeats=1, drain=4.0)
TWO = ("Carousel Basic", "Natto-RECSF")


def _check(tables, x_count, systems=TWO):
    for table in tables.values():
        for name in systems:
            series = table.series[name]
            assert len(series) == x_count
            assert all(not math.isnan(v) for v in series)


def test_table1_matches_topology():
    measured = table1.run()
    assert len(measured) == 20  # both directions of 10 pairs


def test_figure7_ycsbt(capsys):
    tables = figure7.run_ycsbt(TINY, systems=TWO, rates=(50,))
    _check(tables, 1)


def test_figure7_retwis():
    tables = figure7.run_retwis(TINY, systems=TWO, rates=(100,))
    _check(tables, 1)


def test_figure7_smallbank():
    tables = figure7.run_smallbank(TINY, systems=TWO, rates=(200,))
    _check(tables, 1)


def test_figure8_sweeps_theta():
    tables = figure8.run_ycsbt(TINY, systems=("Natto-RECSF",))
    assert len(tables["high"].series["Natto-RECSF"]) == 4


def test_figure9_percentages():
    tables = figure9.run(TINY, systems=TWO, percentages=(10, 100))
    _check(tables, 2)


def test_figure10_prepends_baseline_rate():
    tables = figure10.run(TINY, systems=("Natto-RECSF",), rates=(100, 400))
    increase = tables["increase"].series["Natto-RECSF"]
    assert len(increase) == 2
    assert increase[0] == 0.0  # baseline point is its own reference


def test_figure11_variances():
    tables = figure11.run(TINY, systems=TWO, variances=(0.0, 15.0))
    _check(tables, 2)


def test_figure12_losses():
    tables = figure12.run(TINY, systems=TWO, loss_rates=(0.0, 1.0))
    _check(tables, 2)


def test_figure13_hybrid():
    tables = figure13.run(TINY, systems=TWO)
    _check(tables, 1)


def test_figure14_partitions():
    tables = figure14.run(
        TINY, systems=("Carousel Basic",), partitions=(2,)
    )
    series = tables["throughput"].series["Carousel Basic"]
    assert len(series) == 1
    assert series[0] > 500  # committed load on 2 partitions
