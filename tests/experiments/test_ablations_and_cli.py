"""Smoke tests for the ablation suite and the experiments CLI."""

import math

from repro.experiments import ablations
from repro.experiments.common import Scale
from repro.experiments.__main__ import EXHIBITS, main

TINY = Scale("tiny", duration=2.0, trim=0.5, repeats=1, drain=4.0)


def test_timestamp_margin_ablation_sweeps():
    tables = ablations.run_timestamp_margin(TINY, margins_ms=(0.0, 2.0))
    series = tables["high"].series["Natto-RECSF"]
    assert len(series) == 2
    assert all(not math.isnan(v) for v in series)


def test_pa_skip_rule_ablation_produces_both_variants():
    tables = ablations.run_pa_skip_rule(TINY)
    assert len(tables["high"].series["Natto-RECSF"]) == 2
    assert len(tables["low"].series["Natto-RECSF"]) == 2


def test_probe_cadence_ablation_sweeps():
    tables = ablations.run_probe_cadence(TINY, intervals_ms=(10.0, 500.0))
    assert len(tables["high"].series["Natto-RECSF"]) == 2


def test_cli_registry_covers_every_exhibit():
    assert set(EXHIBITS) == {
        "ablations",
        "table1",
        "fig7a",
        "fig7c",
        "fig7e",
        "fig8a",
        "fig8b",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
    }


def test_cli_runs_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "NSW-SG" in out


def test_cli_rejects_unknown_exhibit():
    import pytest

    with pytest.raises(SystemExit):
        main(["fig99"])
