"""Unit tests for the tracer, metrics registry and exporters."""

import json
import math

from repro.obs import (
    NULL_OBS,
    AbortReason,
    MetricsRegistry,
    Observability,
    Tracer,
    reason_value,
)
from repro.obs.export import (
    chrome_trace,
    parse_jsonl_lines,
    jsonl_lines,
    read_jsonl,
    write_jsonl,
)
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Metrics


def test_counter_totals_and_labels():
    registry = MetricsRegistry()
    counter = registry.counter("net.messages")
    counter.inc()
    counter.inc(2.0, method="vote")
    counter.inc(method="vote")
    assert counter.value == 4.0
    assert counter.labeled() == {"method=vote": 3.0}
    assert registry.counter("net.messages") is counter


def test_gauge_tracks_max():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(3.0)
    gauge.inc()
    gauge.dec(2.0)
    assert gauge.value == 2.0
    assert gauge.max_value == 4.0


def test_histogram_windows_on_sim_time():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    histogram.observe(10.0, at=1.0)
    histogram.observe(20.0, at=5.0)
    histogram.observe(30.0, at=9.0)
    assert histogram.count == 3
    assert histogram.mean() == 20.0
    assert histogram.mean(window=(4.0, 10.0)) == 25.0
    assert math.isnan(histogram.mean(window=(100.0, 200.0)))


def test_histogram_labels_split_series():
    histogram = MetricsRegistry().histogram("delay")
    histogram.observe(1.0, at=0.0, link="a->b")
    histogram.observe(9.0, at=0.0, link="b->a")
    assert histogram.labels() == ["link=a->b", "link=b->a"]
    assert histogram.mean(label="link=a->b") == 1.0


def test_registry_snapshot_is_jsonable():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(2.0)
    registry.histogram("h").observe(1.0, at=0.0)
    snapshot = registry.snapshot()
    assert snapshot["c"]["value"] == 1.0
    assert snapshot["g"]["max"] == 2.0
    assert snapshot["h"]["count"] == 1
    json.dumps(snapshot)  # must not raise


# ----------------------------------------------------------------------
# Tracer


def test_span_tree_and_clock():
    tracer = Tracer()
    now = [0.0]
    tracer.attach_clock(lambda: now[0])
    root = tracer.span("txn", node="client", txn="t1")
    now[0] = 1.0
    child = tracer.span("attempt", node="client", txn="t1.0", parent=root)
    now[0] = 3.5
    child.finish()
    root.finish()
    assert child.parent_id == root.span_id
    assert child.start == 1.0 and child.end == 3.5
    assert root.end == 3.5


def test_span_accepts_raw_parent_id():
    tracer = Tracer()
    span = tracer.span("child", parent=17)
    assert span.parent_id == 17


def test_abort_and_refuse_events_carry_reasons():
    tracer = Tracer()
    tracer.abort(AbortReason.PREEMPTED, node="client", txn="t1.0")
    tracer.refuse("OCC_CONFLICT", node="p0", txn="t1.0")
    tracer.abort(None, node="client", txn="t1.1")
    reasons = [e.attrs["reason"] for e in tracer.events]
    assert reasons == ["PREEMPTED", "OCC_CONFLICT", "UNKNOWN"]


def test_reason_value_normalizes():
    assert reason_value(AbortReason.LOCK_CONFLICT) == "LOCK_CONFLICT"
    assert reason_value("STALE_READ") == "STALE_READ"
    assert reason_value(None) == "UNKNOWN"


# ----------------------------------------------------------------------
# Null objects and attachment


def test_null_obs_is_inert():
    assert not NULL_OBS.enabled
    span = NULL_OBS.tracer.span("anything", node="n", txn="t")
    span.set(foo=1).finish()
    NULL_OBS.tracer.abort("X", txn="t")
    NULL_OBS.metrics.counter("c").inc()
    NULL_OBS.metrics.histogram("h").observe(1.0)
    assert NULL_OBS.metrics.snapshot() == {}
    assert NULL_OBS.tracer.spans == []


def test_simulator_defaults_to_null_obs():
    assert Simulator().obs is NULL_OBS


def test_attach_binds_sim_clock():
    sim = Simulator()
    obs = Observability().attach(sim)
    assert sim.obs is obs
    sim.schedule(2.5, lambda: obs.tracer.span("s").finish())
    sim.run()
    span = obs.tracer.spans[0]
    assert span.start == 2.5 and span.end == 2.5


def test_kernel_metrics_when_enabled():
    sim = Simulator()
    obs = Observability().attach(sim)
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert obs.metrics.counter("sim.events_fired").value == 5.0


# ----------------------------------------------------------------------
# Exporters


def _traced_run():
    tracer = Tracer()
    now = [0.0]
    tracer.attach_clock(lambda: now[0])
    root = tracer.span("txn", node="client", txn="t1", priority="HIGH")
    attempt = tracer.span("attempt", node="client", txn="t1.0", parent=root)
    now[0] = 0.5
    tracer.span("net:vote", node="p0", txn="t1.0").finish(at=0.6)
    tracer.refuse(AbortReason.OCC_CONFLICT, node="p0", txn="t1.0")
    tracer.abort(AbortReason.OCC_CONFLICT, node="client", txn="t1.0")
    now[0] = 1.0
    attempt.finish()
    root.set(outcome="committed").finish()
    return tracer


def test_jsonl_round_trip(tmp_path):
    tracer = _traced_run()
    path = str(tmp_path / "run.trace.jsonl")
    write_jsonl(tracer, path, meta={"system": "Test"})
    records = read_jsonl(path)
    meta = [r for r in records if r["type"] == "meta"]
    spans = [r for r in records if r["type"] == "span"]
    events = [r for r in records if r["type"] == "event"]
    assert meta[0]["system"] == "Test"
    assert len(spans) == 3
    assert len(events) == 2
    root = next(s for s in spans if s["name"] == "txn")
    attempt = next(s for s in spans if s["name"] == "attempt")
    assert attempt["parent"] == root["id"]
    assert root["attrs"]["outcome"] == "committed"
    abort = next(e for e in events if e["name"] == "abort")
    assert abort["attrs"]["reason"] == "OCC_CONFLICT"


def test_parse_jsonl_lines_matches_writer():
    tracer = _traced_run()
    records = parse_jsonl_lines(jsonl_lines(tracer))
    assert [r["type"] for r in records].count("span") == 3


def test_chrome_trace_shape():
    trace = chrome_trace(_traced_run(), meta={"system": "Test"})
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert "X" in phases  # complete events for finished spans
    assert "M" in phases  # process-name metadata per node
    assert "i" in phases  # instant events (abort/refuse)
    for entry in events:
        if entry["ph"] == "X":
            assert entry["dur"] >= 0
            assert isinstance(entry["ts"], (int, float))
    json.dumps(trace)  # must not raise


def test_export_via_observability(tmp_path):
    sim = Simulator()
    obs = Observability().attach(sim)
    sim.schedule(1.0, lambda: obs.tracer.span("s", node="n").finish())
    sim.run()
    jsonl_path = str(tmp_path / "t.jsonl")
    chrome_path = str(tmp_path / "t.json")
    obs.export_jsonl(jsonl_path)
    obs.export_chrome_trace(chrome_path)
    assert read_jsonl(jsonl_path)
    with open(chrome_path) as fh:
        assert json.load(fh)["traceEvents"]
    snapshot = obs.snapshot()
    assert snapshot["spans"] == 1
