"""End-to-end: a traced YCSB+T run exports a parseable, coherent trace.

Runs a short, contended workload with tracing on, exports the JSONL
stream, re-parses it and asserts the structural invariants the trace CLI
relies on: every span/event ties back to a client-opened root ``txn``
span, attempts nest under their root, and aborted attempts carry a
classified (non-UNKNOWN) reason.
"""

import json

import pytest

from repro.harness import ExperimentSettings, make_system, run_experiment
from repro.obs.cli import main as trace_main
from repro.obs.export import read_jsonl
from repro.workloads import YcsbTWorkload

SETTINGS = ExperimentSettings(
    duration=2.0, trim=0.5, drain=4.0, tracing=True
)


@pytest.fixture(scope="module")
def traced_result():
    # High contention (few keys) so aborts actually happen.
    return run_experiment(
        lambda: make_system("Carousel Basic"),
        lambda rng: YcsbTWorkload(rng, num_keys=200),
        60,
        SETTINGS,
    )


@pytest.fixture(scope="module")
def trace_records(traced_result, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "run.trace.jsonl")
    traced_result.obs.export_jsonl(path, meta={"system": "Carousel Basic"})
    return path, read_jsonl(path)


def _root_txn(txn):
    head, sep, tail = txn.rpartition(".")
    return head if sep and tail.isdigit() else txn


def test_run_produced_spans_and_snapshot(traced_result):
    assert traced_result.obs is not None
    assert traced_result.obs_snapshot["spans"] > 0
    metrics = traced_result.obs_snapshot["metrics"]
    assert metrics["net.messages"]["value"] > 0
    assert metrics["raft.appends"]["value"] > 0
    assert metrics["sim.events_fired"]["value"] > 0


def test_every_span_ties_back_to_a_root_txn(trace_records):
    _, records = trace_records
    spans = [r for r in records if r["type"] == "span"]
    roots = {
        s["txn"]: s for s in spans if s["name"] == "txn"
    }
    assert roots
    for span in spans:
        if span["txn"] is None:
            continue
        assert _root_txn(span["txn"]) in roots, span


def test_attempts_nest_under_their_root(trace_records):
    _, records = trace_records
    spans = [r for r in records if r["type"] == "span"]
    by_id = {s["id"]: s for s in spans}
    attempts = [s for s in spans if s["name"] == "attempt"]
    assert attempts
    for attempt in attempts:
        parent = by_id[attempt["parent"]]
        assert parent["name"] == "txn"
        assert _root_txn(attempt["txn"]) == parent["txn"]


def test_aborted_attempts_are_classified(trace_records):
    _, records = trace_records
    aborts = [
        r for r in records
        if r["type"] == "event" and r["name"] == "abort"
    ]
    assert aborts, "contended run should produce aborts"
    classified = [
        a for a in aborts if a["attrs"]["reason"] != "UNKNOWN"
    ]
    assert len(classified) / len(aborts) >= 0.99


def test_abort_events_match_stats_records(traced_result, trace_records):
    _, records = trace_records
    aborts = [
        r for r in records
        if r["type"] == "event" and r["name"] == "abort"
    ]
    stats_reasons = [
        reason
        for record in traced_result.stats.records
        for reason in record.abort_reasons
    ]
    # One client-side abort event per failed attempt of a *finished*
    # transaction; in-flight transactions at sim end only have events.
    assert len(aborts) >= len(stats_reasons)
    assert stats_reasons, "contended run should retry"
    assert all(r != "UNKNOWN" for r in stats_reasons) or (
        stats_reasons.count("UNKNOWN") / len(stats_reasons) <= 0.01
    )


def test_cli_summary_and_chrome_on_real_trace(
    trace_records, tmp_path, capsys
):
    path, _ = trace_records
    assert trace_main(["summary", path]) == 0
    out = capsys.readouterr().out
    assert "transactions:" in out
    assert "non-UNKNOWN" in out

    chrome_path = str(tmp_path / "run.chrome.json")
    assert trace_main(["chrome", path, "-o", chrome_path]) == 0
    with open(chrome_path) as fh:
        trace = json.load(fh)
    assert trace["traceEvents"]


def test_cli_critical_path_on_real_trace(trace_records, capsys):
    path, records = trace_records
    root = next(
        r for r in records if r["type"] == "span" and r["name"] == "txn"
    )
    assert trace_main(["critical-path", path, "--txn", root["txn"]]) == 0
    out = capsys.readouterr().out
    assert "timeline:" in out
    assert "critical path" in out
