"""Tests for the 2FI transaction model."""

import pytest

from repro.txn import Priority, TransactionSpec, txn_order_key


def spec(**kwargs):
    defaults = dict(
        txn_id="c1-0",
        read_keys=("a", "b"),
        write_keys=("b", "c"),
    )
    defaults.update(kwargs)
    return TransactionSpec(**defaults)


def test_all_keys_deduplicates_preserving_order():
    assert spec().all_keys == ("a", "b", "c")


def test_empty_transaction_rejected():
    with pytest.raises(ValueError):
        TransactionSpec("t", (), ())


def test_default_priority_is_low():
    assert spec().priority is Priority.LOW
    assert not spec().is_high_priority


def test_priority_ordering():
    assert Priority.HIGH > Priority.LOW
    assert Priority.HIGH.is_high
    assert not Priority.LOW.is_high


def test_make_writes_passes_read_results():
    seen = {}

    def writer(reads):
        seen.update(reads)
        return {"b": reads["a"] + "!"}

    s = spec(compute_writes=writer)
    writes = s.make_writes({"a": "va", "b": "vb"})
    assert writes == {"b": "va!"}
    assert seen == {"a": "va", "b": "vb"}


def test_make_writes_may_skip_keys():
    s = spec(compute_writes=lambda reads: {})
    assert s.make_writes({"a": "x", "b": "y"}) == {}


def test_make_writes_none_aborts_voluntarily():
    s = spec(compute_writes=lambda reads: None)
    assert s.make_writes({}) is None


def test_write_outside_declared_set_rejected():
    s = spec(compute_writes=lambda reads: {"not-declared": "v"})
    with pytest.raises(ValueError):
        s.make_writes({"a": "x", "b": "y"})


def test_order_key_sorts_by_timestamp_then_id():
    assert txn_order_key(1.0, "z") < txn_order_key(2.0, "a")
    assert txn_order_key(1.0, "a") < txn_order_key(1.0, "b")


def test_specs_are_immutable():
    s = spec()
    with pytest.raises(AttributeError):
        s.txn_id = "other"
