"""Tests for outcome records and aggregation."""

import math

from repro.txn import Priority, StatsCollector, TxnOutcome, TxnRecord


def record(txn_id, start, end, priority=Priority.LOW, retries=0,
           outcome=TxnOutcome.COMMITTED, txn_type="generic"):
    return TxnRecord(txn_id, priority, txn_type, start, end, retries, outcome)


def test_latency_includes_retries_window():
    r = record("t", start=1.0, end=3.5, retries=4)
    assert r.latency == 2.5
    assert r.committed


def test_failed_transactions_excluded_from_latency():
    stats = StatsCollector()
    stats.add(record("ok", 0.0, 1.0))
    stats.add(record("bad", 0.0, 50.0, outcome=TxnOutcome.FAILED))
    assert stats.p95_latency() <= 1.0


def test_p95_of_empty_selection_is_nan():
    assert math.isnan(StatsCollector().p95_latency())


def test_priority_filter():
    stats = StatsCollector()
    stats.add(record("h", 0.0, 1.0, priority=Priority.HIGH))
    stats.add(record("l", 0.0, 9.0, priority=Priority.LOW))
    assert stats.p95_latency(Priority.HIGH) <= 1.0
    assert stats.p95_latency(Priority.LOW) >= 8.9


def test_window_filters_on_start_time():
    stats = StatsCollector()
    stats.add(record("warmup", 1.0, 2.0))
    stats.add(record("measured", 11.0, 12.0))
    stats.add(record("cooldown", 55.0, 56.0))
    selected = stats.committed(window=(10.0, 50.0))
    assert [r.txn_id for r in selected] == ["measured"]


def test_txn_type_filter():
    stats = StatsCollector()
    stats.add(record("p", 0.0, 1.0, txn_type="send_payment"))
    stats.add(record("b", 0.0, 2.0, txn_type="balance"))
    assert len(stats.committed(txn_type="send_payment")) == 1


def test_goodput_counts_committed_per_second():
    stats = StatsCollector()
    for i in range(20):
        stats.add(record(f"t{i}", start=10.0 + i, end=11.0 + i))
    assert stats.goodput(window=(10.0, 30.0)) == 1.0


def test_goodput_by_priority():
    stats = StatsCollector()
    stats.add(record("h", 10.0, 11.0, priority=Priority.HIGH))
    stats.add(record("l", 10.0, 11.0, priority=Priority.LOW))
    assert stats.goodput((10.0, 20.0), Priority.HIGH) == 0.1


def test_p95_uses_95th_percentile():
    stats = StatsCollector()
    for i in range(100):
        stats.add(record(f"t{i}", 0.0, float(i + 1)))
    p95 = stats.p95_latency()
    assert 95.0 <= p95 <= 97.0


def test_abort_summary():
    stats = StatsCollector()
    stats.add(record("a", 0, 1, retries=2))
    stats.add(record("b", 0, 1, retries=0, outcome=TxnOutcome.FAILED))
    summary = stats.abort_summary()
    assert summary["transactions"] == 2
    assert summary["failed"] == 1
    assert summary["mean_retries"] == 1.0


def test_abort_summary_empty():
    assert StatsCollector().abort_summary()["transactions"] == 0
