"""Bucketed selection equivalence and abort_summary breakdowns."""

import random

from repro.txn import Priority, StatsCollector, TxnOutcome, TxnRecord


def record(txn_id, start, end, priority=Priority.LOW, retries=0,
           outcome=TxnOutcome.COMMITTED, txn_type="generic",
           abort_reasons=()):
    return TxnRecord(txn_id, priority, txn_type, start, end, retries,
                     outcome, abort_reasons)


def _scan(records, priority=None, window=None, txn_type=None):
    """The original O(n) selection, as the ground truth."""
    out = []
    for r in records:
        if not r.committed:
            continue
        if priority is not None and r.priority is not priority:
            continue
        if txn_type is not None and r.txn_type != txn_type:
            continue
        if window is not None and not (window[0] <= r.start < window[1]):
            continue
        out.append(r)
    return out


def test_bucketed_selection_matches_full_scan():
    rng = random.Random(7)
    stats = StatsCollector()
    for i in range(500):
        stats.add(record(
            f"t{i}",
            start=rng.uniform(0.0, 60.0),
            end=rng.uniform(60.0, 70.0),
            priority=rng.choice(list(Priority)),
            txn_type=rng.choice(["rmw", "balance", "payment"]),
            outcome=rng.choice(
                [TxnOutcome.COMMITTED, TxnOutcome.COMMITTED,
                 TxnOutcome.FAILED]
            ),
        ))
    cases = [
        {},
        {"priority": Priority.HIGH},
        {"txn_type": "rmw"},
        {"window": (10.0, 50.0)},
        {"priority": Priority.LOW, "txn_type": "balance",
         "window": (5.0, 40.0)},
    ]
    for kwargs in cases:
        got = stats.committed(**kwargs)
        want = _scan(stats.records, **kwargs)
        assert sorted(r.txn_id for r in got) == sorted(
            r.txn_id for r in want
        ), kwargs


def test_selection_stays_correct_after_interleaved_adds():
    stats = StatsCollector()
    # Out-of-start-order arrival (records finish out of order).
    stats.add(record("b", 5.0, 6.0))
    stats.add(record("a", 1.0, 9.0))
    assert {r.txn_id for r in stats.committed(window=(0.0, 2.0))} == {"a"}
    # More adds after a query must not be lost or misordered.
    stats.add(record("c", 0.5, 1.0))
    assert {r.txn_id for r in stats.committed(window=(0.0, 2.0))} == {
        "a", "c"
    }


def test_abort_summary_keeps_top_level_keys():
    stats = StatsCollector()
    stats.add(record("a", 0, 1, retries=2))
    stats.add(record("b", 0, 1, outcome=TxnOutcome.FAILED))
    summary = stats.abort_summary()
    assert summary["transactions"] == 2
    assert summary["failed"] == 1
    assert summary["mean_retries"] == 1.0


def test_abort_summary_per_priority_and_reason():
    stats = StatsCollector()
    stats.add(record(
        "h1", 0, 1, priority=Priority.HIGH, retries=1,
        abort_reasons=("OCC_CONFLICT",),
    ))
    stats.add(record(
        "l1", 0, 1, priority=Priority.LOW, retries=3,
        abort_reasons=("PREEMPTED", "PREEMPTED", "OCC_CONFLICT"),
    ))
    stats.add(record(
        "l2", 0, 1, priority=Priority.LOW,
        outcome=TxnOutcome.FAILED, retries=2,
        abort_reasons=("LOCK_CONFLICT", "LOCK_CONFLICT"),
    ))
    summary = stats.abort_summary()
    assert summary["by_reason"] == {
        "OCC_CONFLICT": 2,
        "PREEMPTED": 2,
        "LOCK_CONFLICT": 2,
    }
    low = summary["by_priority"]["LOW"]
    assert low["transactions"] == 2
    assert low["failed"] == 1
    assert low["mean_retries"] == 2.5
    assert low["by_reason"] == {
        "PREEMPTED": 2, "OCC_CONFLICT": 1, "LOCK_CONFLICT": 2,
    }
    high = summary["by_priority"]["HIGH"]
    assert high["failed"] == 0
    assert high["by_reason"] == {"OCC_CONFLICT": 1}


def test_abort_summary_empty_has_breakdowns():
    summary = StatsCollector().abort_summary()
    assert summary["transactions"] == 0
    assert summary["by_priority"] == {}
    assert summary["by_reason"] == {}
