"""The paper's motivating experiment, end to end.

Drives the YCSB+T workload (6 read-modify-writes per transaction,
Zipfian keys, 10% high priority) at a contended input rate against
Carousel Basic — no prioritization — and Natto-RECSF, then prints the
per-priority latency distribution.  This is a miniature Figure 7(a/b).

Run:  python examples/priority_tail_latency.py [rate]
"""

import sys

import numpy as np

from repro.harness import ExperimentSettings, make_system, run_experiment
from repro.txn.priority import Priority
from repro.workloads import YcsbTWorkload


def percentile_row(stats, window, priority):
    records = stats.committed(priority, window)
    if not records:
        return "  (no transactions)"
    latencies = np.array([r.latency for r in records]) * 1000.0
    return (
        f"  n={len(records):5d}  p50={np.percentile(latencies, 50):7.1f}ms"
        f"  p95={np.percentile(latencies, 95):7.1f}ms"
        f"  p99={np.percentile(latencies, 99):7.1f}ms"
        f"  max={latencies.max():7.1f}ms"
    )


def main():
    rate = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    settings = ExperimentSettings(duration=8.0, trim=2.0)
    print(f"YCSB+T, Zipf 0.65, {rate} txn/s, 10% high priority\n")
    for name in ("Carousel Basic", "Natto-RECSF"):
        result = run_experiment(
            lambda n=name: make_system(n),
            lambda rng: YcsbTWorkload(rng),
            rate,
            settings,
        )
        summary = result.stats.abort_summary()
        print(f"== {name} ==")
        print(f"  goodput: {result.committed_per_second:.0f} txn/s, "
              f"mean retries: {summary['mean_retries']:.2f}, "
              f"failed: {summary['failed']}")
        print("  high priority:")
        print(percentile_row(result.stats, result.window, Priority.HIGH))
        print("  low priority:")
        print(percentile_row(result.stats, result.window, Priority.LOW))
        print()
    print("Natto's high-priority tail should sit near the no-contention")
    print("baseline (~400 ms) while Carousel's blows up with retries.")


if __name__ == "__main__":
    main()
