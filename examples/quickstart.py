"""Quickstart: a five-datacenter Natto deployment in ~40 lines.

Builds the paper's default topology (5 Azure DCs, 5 partitions x 3
replicas), runs one high-priority and one low-priority transaction that
conflict on a hot key, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.core import Natto, natto_recsf
from repro.systems.base import Cluster, SystemConfig
from repro.systems.client import ClientDriver
from repro.txn.priority import Priority
from repro.txn.stats import StatsCollector
from repro.txn.transaction import TransactionSpec
from repro.net.topology import azure_topology


def transfer(txn_id, source, target, amount, priority):
    """A 2FI read-modify-write: move `amount` between two counters."""

    def compute_writes(reads):
        return {
            source: str(int(reads[source]) - amount),
            target: str(int(reads[target]) + amount),
        }

    return TransactionSpec(
        txn_id=txn_id,
        read_keys=(source, target),
        write_keys=(source, target),
        priority=priority,
        compute_writes=compute_writes,
    )


def main():
    # 1. Deploy Natto (all mechanisms on) over the paper's topology.
    cluster = Cluster(azure_topology(), SystemConfig(), seed=7)
    system = Natto(natto_recsf())
    system.setup(cluster)

    # 2. One client application server in Virginia.
    stats = StatsCollector()
    client = ClientDriver(
        cluster.sim, cluster.network, "app-va", "VA", system, stats,
        clock=cluster.make_clock("app-va"),
    )

    # 3. Give the probe proxies a moment to learn network delays, then
    #    seed two accounts and run conflicting transfers.
    cluster.sim.run(until=2.5)

    def scenario():
        # Seed balances (values are strings; the store's default value
        # is not a number, so write first).
        yield client.submit(
            TransactionSpec(
                "seed", ("alice", "bob"), ("alice", "bob"),
                compute_writes=lambda r: {"alice": "100", "bob": "100"},
            )
        )
        yield 0.5
        client.submit(transfer("batch-job", "alice", "bob", 10, Priority.LOW))
        yield 0.02  # 20 ms later, a premium user's transfer arrives
        client.submit(transfer("premium", "bob", "alice", 25, Priority.HIGH))

    cluster.sim.spawn(scenario())
    cluster.sim.run(until=30.0)

    # 4. Report.
    print(f"{'transaction':12s} {'priority':8s} {'latency':>9s} {'retries':>7s}")
    for record in stats.records:
        print(
            f"{record.txn_id:12s} {record.priority.name.lower():8s} "
            f"{record.latency * 1000:7.1f}ms {record.retries:7d}"
        )
    pid = cluster.partitioner.partition_of("alice")
    store = system.groups[pid].leader.store
    print(f"\nfinal balances: alice={store.read('alice').value}", end="")
    pid = cluster.partitioner.partition_of("bob")
    store = system.groups[pid].leader.store
    print(f" bob={store.read('bob').value}")


if __name__ == "__main__":
    main()
