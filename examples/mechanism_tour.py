"""A guided tour of Natto's four mechanisms (Figures 3-6 of the paper).

Recreates the paper's illustrative scenarios — one low-priority and one
high-priority transaction colliding in controlled geometries — on each
variant of the mechanism ladder, and prints what fired and what it
bought in latency.

Run:  python examples/mechanism_tour.py
"""

from repro.cluster.clock import ClockConfig
from repro.core import (
    Natto,
    natto_cp,
    natto_lecsf,
    natto_pa,
    natto_recsf,
    natto_ts,
)
from repro.systems.base import Cluster, SystemConfig
from repro.systems.client import ClientDriver
from repro.txn.priority import Priority
from repro.txn.stats import StatsCollector
from repro.txn.transaction import TransactionSpec
from repro.net.topology import azure_topology

WARMUP = 2.5


def rmw(txn_id, keys, priority):
    keys = tuple(keys)
    return TransactionSpec(
        txn_id=txn_id,
        read_keys=keys,
        write_keys=keys,
        priority=priority,
        compute_writes=lambda reads: {
            k: (reads[k] + "|" + txn_id)[-64:] for k in keys
        },
    )


def key_for_partition(partitioner, pid):
    i = 0
    while True:
        key = f"key-{i}"
        if partitioner.partition_of(key) == pid:
            return key
        i += 1


def run_scenario(config, client_dc, keys_of, gap=0.020):
    """One low-priority then (gap later) one high-priority transaction
    over the same keys; returns (high latency ms, mechanism counters)."""
    cluster = Cluster(
        azure_topology(),
        SystemConfig(clock=ClockConfig(max_offset=0.0)),
        seed=3,
    )
    system = Natto(config)
    system.setup(cluster)
    stats = StatsCollector()
    client = ClientDriver(
        cluster.sim, cluster.network, "app", client_dc, system, stats,
        clock=cluster.make_clock("app"),
    )
    cluster.sim.run(until=WARMUP)
    keys = keys_of(cluster.partitioner)

    def scenario():
        client.submit(rmw("tlow", keys, Priority.LOW))
        yield gap
        client.submit(rmw("thigh", keys, Priority.HIGH))

    cluster.sim.spawn(scenario())
    cluster.sim.run(until=WARMUP + 60)
    high = next(r for r in stats.records if r.priority is Priority.HIGH)
    counters = {}
    for group in system.groups.values():
        for name, value in group.leader.stats.items():
            counters[name] = counters.get(name, 0) + value
    return high.latency * 1000.0, counters


def main():
    ladder = [
        ("Natto-TS", natto_ts()),
        ("Natto-LECSF", natto_lecsf()),
        ("Natto-PA", natto_pa()),
        ("Natto-CP", natto_cp()),
        ("Natto-RECSF", natto_recsf()),
    ]

    print("Scenario A (Figures 3/4): conflicting on a near and a far")
    print("partition; client in WA.  PA evicts the queued low-priority")
    print("transaction; CP prepares past its prepared twin remotely.\n")
    keys_near_far = lambda p: [key_for_partition(p, 0), key_for_partition(p, 4)]
    print(f"{'variant':14s} {'high-pri latency':>16s}  mechanisms fired")
    for name, config in ladder:
        latency, counters = run_scenario(config, "WA", keys_near_far)
        fired = ", ".join(
            f"{key}={counters[key]}"
            for key in ("priority_aborts", "conditional_prepares",
                        "conditions_ok", "recsf_forwards")
            if counters.get(key)
        )
        print(f"{name:14s} {latency:14.1f}ms  {fired or '-'}")

    print("\nScenario B (Figures 5/6): blocked behind a committed-but-")
    print("unreplicated transaction on one far partition; client in PR.")
    print("LECSF removes a replication round; RECSF also forwards the")
    print("reads to the predecessor's coordinator.\n")
    keys_far = lambda p: [key_for_partition(p, 3)]
    print(f"{'variant':14s} {'high-pri latency':>16s}  mechanisms fired")
    for name, config in ladder:
        latency, counters = run_scenario(config, "PR", keys_far, gap=0.010)
        fired = ", ".join(
            f"{key}={counters[key]}"
            for key in ("priority_aborts", "conditional_prepares",
                        "recsf_forwards")
            if counters.get(key)
        )
        print(f"{name:14s} {latency:14.1f}ms  {fired or '-'}")


if __name__ == "__main__":
    main()
