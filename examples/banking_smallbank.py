"""SmallBank banking workload with prioritized payments.

The Figure 10 scenario: a bank runs the full SmallBank mix, but
sendPayment — the customer-facing transfer — runs at high priority
while everything else (balance checks, batch deposits, amalgamations)
runs low.  Prints per-transaction-type latency and verifies that money
is conserved across all committed transfers.

Run:  python examples/banking_smallbank.py
"""

import numpy as np

from repro.harness import ExperimentSettings, make_system, run_experiment
from repro.workloads import SmallBankWorkload
from repro.workloads.smallbank import INITIAL_BALANCE, parse_balance


def main():
    settings = ExperimentSettings(duration=8.0, trim=2.0, drain=40.0)
    result = run_experiment(
        lambda: make_system("Natto-RECSF"),
        lambda rng: SmallBankWorkload(
            rng,
            num_users=100_000,
            hot_users=1_000,  # the paper's hotspot size
            high_priority_types={"send_payment"},
        ),
        800,
        settings,
    )

    print("Per-type 95P latency (Natto-RECSF, 800 txn/s, hot-spot mix):\n")
    print(f"{'type':18s} {'priority':9s} {'count':>6s} {'p95':>9s}")
    types = sorted(
        {r.txn_type for r in result.stats.records}
    )
    for txn_type in types:
        records = result.stats.committed(
            window=result.window, txn_type=txn_type
        )
        if not records:
            continue
        latencies = np.array([r.latency for r in records]) * 1000.0
        priority = "high" if txn_type == "send_payment" else "low"
        print(
            f"{txn_type:18s} {priority:9s} {len(records):6d} "
            f"{np.percentile(latencies, 95):7.1f}ms"
        )

    # End-to-end consistency checks on the deployed stores:
    #  - no transaction left prepared marks behind (clean shutdown);
    #  - every replica of every partition converged to the leader's
    #    state for all applied writes (replication correctness under
    #    real workload traffic).
    stuck = 0
    divergent = 0
    for group in result.system.groups.values():
        for replica in group.replicas:
            stuck += len(replica.prepared)
            for key, versioned in replica.store._data.items():
                if versioned.writer is None:
                    continue
                if group.leader.store.read(key).value != versioned.value:
                    divergent += 1
    summary = result.stats.abort_summary()
    print("\nPost-run consistency:")
    print(f"  committed:           {len(result.stats.committed(window=None))}")
    print(f"  failed:              {summary['failed']}")
    print(f"  mean retries:        {summary['mean_retries']:.2f}")
    print(f"  stuck prepared marks: {stuck} (expect 0)")
    print(f"  divergent replica keys: {divergent} (expect 0)")
    assert stuck == 0 and divergent == 0


if __name__ == "__main__":
    main()
