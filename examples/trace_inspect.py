"""Trace a contended run and inspect it programmatically.

Runs a short, hot-keyset YCSB+T experiment with tracing enabled, then
answers three "why" questions straight from the observability objects —
the same data `python -m repro.trace` reads from an exported file:

1. where did transactions abort, and why (abort-reason taxonomy)?
2. which protocol phase dominates latency (span durations by name)?
3. what did the infrastructure do (metrics: messages, Raft appends,
   per-link delay percentiles)?

Finally it exports both trace formats; open the Chrome one at
https://ui.perfetto.dev.

Run:  python examples/trace_inspect.py
"""

from collections import Counter, defaultdict

from repro.harness import ExperimentSettings, make_system, run_experiment
from repro.workloads import YcsbTWorkload


def main():
    settings = ExperimentSettings(
        duration=2.0, trim=0.5, drain=4.0, tracing=True
    )
    result = run_experiment(
        lambda: make_system("Natto-RECSF"),
        lambda rng: YcsbTWorkload(rng, num_keys=500),  # hot: forces conflicts
        60,
        settings,
    )
    obs = result.obs

    # 1. Abort taxonomy: one client-side abort event per failed attempt.
    reasons = Counter(
        event.attrs["reason"]
        for event in obs.tracer.events
        if event.name == "abort"
    )
    print("abort reasons:")
    for reason, count in reasons.most_common():
        print(f"  {reason:24s} {count}")

    # 2. Phase durations from the span stream.
    durations = defaultdict(list)
    for span in obs.tracer.spans:
        if span.finished:
            durations[span.name].append(span.end - span.start)
    print("\nmean duration by phase (ms):")
    for name, values in sorted(
        durations.items(), key=lambda kv: -sum(kv[1])
    ):
        mean_ms = 1000.0 * sum(values) / len(values)
        print(f"  {name:24s} {mean_ms:8.1f}  (n={len(values)})")

    # 3. Infrastructure metrics.
    metrics = obs.metrics
    print(f"\nnetwork messages: {metrics.counter('net.messages').value:.0f}")
    print(f"raft appends:     {metrics.counter('raft.appends').value:.0f}")
    delay = metrics.histogram("net.delay")
    for label in delay.labels()[:3]:
        print(
            f"  {label:22s} p95 delay "
            f"{1000.0 * delay.percentile(95.0, label=label):6.1f} ms"
        )

    # The same snapshot travels on the result object.
    assert result.obs_snapshot["metrics"]["net.messages"]["value"] > 0

    # 4. Export for the CLI / Perfetto.
    obs.export_jsonl("trace_inspect.trace.jsonl")
    obs.export_chrome_trace("trace_inspect.chrome.json")
    print(
        "\nwrote trace_inspect.trace.jsonl "
        "(python -m repro.trace summary trace_inspect.trace.jsonl)"
    )
    print("wrote trace_inspect.chrome.json (open in ui.perfetto.dev)")


if __name__ == "__main__":
    main()
