"""Behavior-identity fingerprints over transaction records.

A perf refactor of the protocol layer is only admissible if it is
*behavior bit-identical*: same decisions, same retries, same simulated
timestamps for every transaction.  The cheapest complete witness the
harness has is the :class:`~repro.txn.stats.TxnRecord` list — every
field of every record is a deterministic function of the run's seed and
the code under test, and the ``start``/``end`` floats encode the entire
timing behavior of the kernel, network, and protocol stack (a single
reordered message or extra RNG draw shifts them).

:func:`fingerprint_result` hashes the full record list of one
experiment into a sha256 hex digest.  Floats are rendered with
``repr`` so the digest is sensitive to the last ulp — two runs agree
iff their behavior is bit-identical, which is exactly the acceptance
bar the perf benchmarks (``benchmarks/perf/bench_profile.py``) check
against recorded pre-change digests.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.txn.stats import TxnRecord


def record_line(record: TxnRecord) -> str:
    """Canonical one-line rendering of a record (all fields, exact)."""
    return "|".join(
        (
            record.txn_id,
            record.priority.name,
            record.txn_type,
            repr(record.start),
            repr(record.end),
            str(record.retries),
            record.outcome.name,
            ",".join(record.abort_reasons),
        )
    )


def fingerprint_records(records: Iterable[TxnRecord]) -> str:
    """sha256 hex digest of a record sequence, order-sensitive."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(record_line(record).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def fingerprint_result(result) -> str:
    """Digest of an :class:`~repro.harness.experiment.ExperimentResult`.

    Covers every transaction the run completed (committed and failed,
    inside and outside the measurement window) in completion order.
    """
    return fingerprint_records(result.stats.records)
