"""Conflict-serializability checking of committed executions.

How the pieces fit:

* :func:`tagged_rmw_spec` builds read-modify-write transactions whose
  written values are globally unique (``txn_id @ key``), so a read value
  identifies its writer without server-side instrumentation.
* :class:`ExecutionTrace` captures, per transaction, the read set the
  *final* (committed) execution used and the writes it produced — the
  write function records each invocation, and re-executions (Natto's
  failed conditional prepares) overwrite earlier ones, which matches
  the coordinator's last-writes-win behaviour.
* :class:`SerializabilityChecker` combines the trace with the stores'
  recorded version chains and checks:

  1. every committed transaction's writes appear exactly once in each
     written key's chain (no lost or duplicated updates);
  2. every read matches some version of the key (no phantom values);
  3. the dependency graph — ww edges along each chain, wr edges from
     writer to reader, rw anti-dependency edges from reader to the
     next writer — is acyclic (conflict-serializability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.store.kv import KeyValueStore
from repro.txn.priority import Priority
from repro.txn.transaction import TransactionSpec

#: Writer id used for a key's initial (never-written) version.
INITIAL = "<initial>"


class SerializationViolation(AssertionError):
    """The committed history is not conflict-serializable (or breaks an
    integrity invariant)."""


@dataclass
class ExecutionTrace:
    """Client-side record of reads/writes per transaction."""

    #: txn_id -> (reads seen, writes produced) by the latest execution.
    executions: Dict[str, Tuple[Dict[str, str], Dict[str, str]]] = field(
        default_factory=dict
    )

    def record(
        self, txn_id: str, reads: Dict[str, str], writes: Dict[str, str]
    ) -> None:
        self.executions[txn_id] = (dict(reads), dict(writes))


def tagged_rmw_spec(
    trace: ExecutionTrace,
    txn_id: str,
    keys: Iterable[str],
    priority: Priority = Priority.LOW,
) -> TransactionSpec:
    """An RMW transaction writing unique, writer-identifying values."""
    keys = tuple(keys)

    def compute_writes(reads: Dict[str, str]) -> Dict[str, str]:
        writes = {key: f"{txn_id}@{key}" for key in keys}
        trace.record(txn_id, reads, writes)
        return writes

    return TransactionSpec(
        txn_id=txn_id,
        read_keys=keys,
        write_keys=keys,
        priority=priority,
        compute_writes=compute_writes,
    )


def writer_of_value(value: str, key: str) -> str:
    """Map a read value back to the transaction that wrote it."""
    suffix = f"@{key}"
    if value.endswith(suffix):
        return value[: -len(suffix)]
    return INITIAL


class SerializabilityChecker:
    """Checks one execution against the recorded version chains."""

    def __init__(
        self,
        stores: Dict[str, KeyValueStore],
        trace: ExecutionTrace,
        committed: Iterable[str],
        strip_attempt_suffix: bool = True,
    ) -> None:
        """``stores`` maps an arbitrary label (e.g. partition id) to the
        authoritative store holding some of the keys; ``committed`` is
        the set of transaction ids that committed.

        Stores record *attempt* ids (``<txn_id>.<attempt>``) as writers;
        with ``strip_attempt_suffix`` chains are normalized back to
        logical transaction ids.
        """
        self._stores = stores
        self._trace = trace
        self._committed = set(committed)
        self._strip = strip_attempt_suffix

    # ------------------------------------------------------------------

    def _normalize(self, writer: str) -> str:
        if self._strip and "." in writer:
            return writer.rsplit(".", 1)[0]
        return writer

    def key_chain(self, key: str) -> List[str]:
        """Writer ids in version order for ``key`` (without INITIAL)."""
        for store in self._stores.values():
            if key in store.history:
                return [self._normalize(v.writer) for v in store.history[key]]
        return []

    def check(self) -> nx.DiGraph:
        """Run all checks; raises :class:`SerializationViolation`."""
        self._check_writes_installed()
        self._check_reads_exist()
        graph = self._build_graph()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise SerializationViolation(
                f"dependency cycle in committed history: {cycle}"
            )
        return graph

    # ------------------------------------------------------------------

    def _committed_executions(self):
        for txn_id in self._committed:
            execution = self._trace.executions.get(txn_id)
            if execution is not None:
                yield txn_id, execution

    def _check_writes_installed(self) -> None:
        for txn_id, (_, writes) in self._committed_executions():
            for key in writes:
                chain = self.key_chain(key)
                occurrences = chain.count(txn_id)
                if occurrences != 1:
                    raise SerializationViolation(
                        f"{txn_id} wrote {key!r} but appears "
                        f"{occurrences} times in its version chain"
                    )

    def _check_reads_exist(self) -> None:
        for txn_id, (reads, _) in self._committed_executions():
            for key, value in reads.items():
                writer = writer_of_value(value, key)
                if writer == INITIAL:
                    continue
                if writer not in self.key_chain(key):
                    raise SerializationViolation(
                        f"{txn_id} read {key!r} from {writer}, which never "
                        "committed a write to it"
                    )

    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(self._committed)
        # ww edges: version order along each chain.
        keys = set()
        for txn_id, (reads, writes) in self._committed_executions():
            keys.update(reads)
            keys.update(writes)
        for key in keys:
            chain = self.key_chain(key)
            for earlier, later in zip(chain, chain[1:]):
                graph.add_edge(earlier, later, kind="ww", key=key)
        # wr and rw edges.
        for txn_id, (reads, _) in self._committed_executions():
            for key, value in reads.items():
                writer = writer_of_value(value, key)
                chain = self.key_chain(key)
                if writer == INITIAL:
                    # Anti-dependency to the first writer, if any.
                    if chain and chain[0] != txn_id:
                        graph.add_edge(txn_id, chain[0], kind="rw", key=key)
                    continue
                if writer != txn_id:
                    graph.add_edge(writer, txn_id, kind="wr", key=key)
                index = chain.index(writer)
                if index + 1 < len(chain) and chain[index + 1] != txn_id:
                    graph.add_edge(
                        txn_id, chain[index + 1], kind="rw", key=key
                    )
        return graph
