"""Correctness verification of committed histories.

Every transaction system in this repository claims serializability;
:mod:`repro.verify.history` checks it on real executions: clients tag
their writes with unique values, stores record per-key version chains,
and the checker builds the standard dependency graph (write-write,
write-read, read-write edges) and verifies it is acyclic — i.e. the
committed history is conflict-serializable — plus a set of sanity
invariants (every committed write landed exactly once, every read saw a
real version).

Used heavily by ``tests/verify`` against all six systems under forced
contention, including Natto's ECSF/CP fast paths.
"""

from repro.verify.fingerprint import (
    fingerprint_records,
    fingerprint_result,
)
from repro.verify.history import (
    ExecutionTrace,
    SerializabilityChecker,
    SerializationViolation,
    tagged_rmw_spec,
)
from repro.verify.invariants import (
    InvariantReport,
    Violation,
    check_all,
    check_atomicity,
    check_monotonicity,
    check_priority,
    check_raft,
    check_replica_consistency,
    partition_stores,
)

__all__ = [
    "ExecutionTrace",
    "InvariantReport",
    "SerializabilityChecker",
    "SerializationViolation",
    "Violation",
    "check_all",
    "check_atomicity",
    "check_monotonicity",
    "check_priority",
    "check_raft",
    "check_replica_consistency",
    "fingerprint_records",
    "fingerprint_result",
    "partition_stores",
    "tagged_rmw_spec",
]
