"""Protocol-invariant fuzzing: seeded workload × fault-schedule scenarios.

One *scenario* = (system family, seed).  The seed deterministically
derives a contended tagged-RMW workload and a random fault schedule
(partitions, crashes, pauses, loss bursts, delay storms, clock skew);
the scenario runs the system under both, then checks the committed
history with the serializability checker and the full invariant suite
(:mod:`repro.verify.invariants`).  Everything — including the fault
transition log and the per-transaction record stream — is fingerprinted,
so two runs of the same scenario must agree byte for byte.

A failing scenario can be **shrunk** (greedy fault-event removal to a
fixpoint) and written to a **replayable JSON artifact** holding the
materialized schedule; ``python -m repro.fuzz --replay artifact.json``
re-runs it exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults import FaultInjector, FaultSchedule, random_schedule
from repro.faults.schedule import FaultEvent
from repro.harness.systems import make_system
from repro.obs import Observability
from repro.systems.base import SystemConfig
from repro.txn.priority import Priority
from repro.verify.fingerprint import fingerprint_records
from repro.verify.history import (
    ExecutionTrace,
    SerializabilityChecker,
    SerializationViolation,
    tagged_rmw_spec,
)
from repro.verify.invariants import (
    InvariantReport,
    Violation,
    check_all,
    partition_stores,
)

#: The representative of each protocol family; variants share the same
#: mechanisms, so fuzzing one per family covers the code that can break.
FUZZ_SYSTEMS: Tuple[str, ...] = (
    "2PL+2PC",
    "TAPIR",
    "Carousel Basic",
    "Natto-RECSF",
)

_PRIORITIES = (Priority.LOW, Priority.MEDIUM, Priority.HIGH)


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to reproduce one scenario exactly."""

    system: str
    seed: int
    clients: Tuple[str, ...] = ("VA", "PR", "SG")
    num_keys: int = 4
    rounds: int = 3
    txns_per_client: int = 2
    round_gap: float = 0.2
    warmup: float = 2.5
    fault_horizon: float = 8.0
    #: Explicit schedule (replay/shrink); None means "derive from seed".
    schedule: Optional[FaultSchedule] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "system": self.system,
            "seed": self.seed,
            "clients": list(self.clients),
            "num_keys": self.num_keys,
            "rounds": self.rounds,
            "txns_per_client": self.txns_per_client,
            "round_gap": self.round_gap,
            "warmup": self.warmup,
            "fault_horizon": self.fault_horizon,
        }
        if self.schedule is not None:
            data["schedule"] = self.schedule.to_dict()
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ScenarioSpec":
        schedule = data.get("schedule")
        return ScenarioSpec(
            system=data["system"],
            seed=int(data["seed"]),
            clients=tuple(data.get("clients", ("VA", "PR", "SG"))),
            num_keys=int(data.get("num_keys", 4)),
            rounds=int(data.get("rounds", 3)),
            txns_per_client=int(data.get("txns_per_client", 2)),
            round_gap=float(data.get("round_gap", 0.2)),
            warmup=float(data.get("warmup", 2.5)),
            fault_horizon=float(data.get("fault_horizon", 8.0)),
            schedule=(
                FaultSchedule.from_dict(schedule) if schedule is not None else None
            ),
        )


@dataclass
class ScenarioOutcome:
    """Result of one scenario run, checker verdicts included."""

    spec: ScenarioSpec  # schedule always materialized here
    submitted: int
    committed: int
    failed: int
    report: InvariantReport
    fault_log: List[str] = field(default_factory=list)
    fault_fingerprint: str = ""
    record_fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def violations(self) -> List[Violation]:
        return self.report.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "submitted": self.submitted,
            "committed": self.committed,
            "failed": self.failed,
            "fault_fingerprint": self.fault_fingerprint,
            "record_fingerprint": self.record_fingerprint,
            "report": self.report.to_dict(),
        }

    def log_line(self) -> str:
        """One deterministic line per scenario for the scenario log."""
        status = "ok" if self.ok else "FAIL"
        return (
            f"{self.spec.system}\tseed={self.spec.seed}\t{status}\t"
            f"committed={self.committed}/{self.submitted}\t"
            f"faults={len(self.spec.schedule or ())}\t"
            f"fault_fp={self.fault_fingerprint[:12]}\t"
            f"record_fp={self.record_fingerprint[:12]}"
        )


# ----------------------------------------------------------------------
# Scenario execution


def _enable_history(system) -> None:
    groups = list(system.groups.values())
    groups += list(getattr(system, "coordinators", {}).values())
    for group in groups:
        for replica in group.replicas:
            store = getattr(replica, "store", None)
            if store is not None:
                store.record_history = True


def _fault_targets(system) -> Tuple[List[str], List[str], List[str]]:
    """(crashable followers, pausable leaders, skewable replicas).

    Leaders are never crashed: with elections disabled (the repo's
    failure-free Raft mode, as in the paper's experiments) a crashed
    leader is irreplaceable and the run degenerates to a liveness
    timeout.  Leaders get pauses instead, which are liveness-safe.
    """
    followers: List[str] = []
    leaders: List[str] = []
    replicas: List[str] = []
    groups = list(system.groups.values())
    groups += list(getattr(system, "coordinators", {}).values())
    for group in groups:
        leader = getattr(group, "leader", None)
        for replica in group.replicas:
            replicas.append(replica.name)
            if leader is not None and replica is not leader:
                followers.append(replica.name)
        if leader is not None:
            leaders.append(leader.name)
    return followers, leaders, replicas


def _shift(schedule: FaultSchedule, offset: float) -> FaultSchedule:
    """Translate every event ``offset`` seconds later (past warm-up)."""
    return FaultSchedule(
        tuple(
            FaultEvent(e.kind, e.start + offset, e.duration, dict(e.params))
            for e in schedule
        )
    )


def run_scenario(
    spec: ScenarioSpec,
    quiescence_cap: float = 900.0,
) -> ScenarioOutcome:
    """Build, fault, load, drain and check one scenario."""
    config = SystemConfig(delay_variance_cv=0.01)
    # Late import: tests.helpers is not packaged; inline the deployment.
    from repro.net.topology import azure_topology
    from repro.systems.base import Cluster
    from repro.systems.client import ClientDriver
    from repro.txn.stats import StatsCollector

    system = make_system(spec.system)
    cluster = Cluster(azure_topology(), config, seed=spec.seed)
    system.setup(cluster)
    stats = StatsCollector()
    clients = []
    for dc in spec.clients:
        name = f"client-{dc}-{len(clients)}"
        client = ClientDriver(
            cluster.sim,
            cluster.network,
            name,
            dc,
            system,
            stats,
            clock=cluster.make_clock(name),
        )
        client.use_streams(cluster.streams)
        # The fuzz workload is intentionally adversarial; lift the paper's
        # 100-retry budget so convergence is part of what we verify.
        client.max_retries = 1000
        clients.append(client)

    _enable_history(system)
    obs = Observability(enabled=True).attach(cluster.sim)

    followers, leaders, replicas = _fault_targets(system)
    schedule = spec.schedule
    if schedule is None:
        schedule = _shift(
            random_schedule(
                spec.seed,
                horizon=spec.fault_horizon,
                datacenters=list(cluster.topology.datacenters),
                crashable=followers,
                pausable=leaders,
                skewable=replicas,
            ),
            spec.warmup,
        )
    spec = replace(spec, schedule=schedule)
    injector = FaultInjector(
        cluster.sim, cluster.network, schedule, seed=spec.seed
    ).attach()

    cluster.sim.run(until=spec.warmup)  # probe warm-up (Natto variants)

    trace = ExecutionTrace()
    sessions: Dict[str, List[str]] = {client.name: [] for client in clients}
    workload_rng = np.random.default_rng(np.random.SeedSequence((spec.seed, 0x77)))
    keys = cluster.partitioner.representative_keys(spec.num_keys, prefix="fz")

    def burst():
        for round_number in range(spec.rounds):
            for client in clients:
                for j in range(spec.txns_per_client):
                    picked = workload_rng.choice(len(keys), size=2, replace=False)
                    txn_keys = [keys[int(p)] for p in sorted(picked)]
                    priority = _PRIORITIES[int(workload_rng.integers(0, 3))]
                    txn_id = f"s{spec.seed}-r{round_number}-{j}-{client.name}"
                    sessions[client.name].append(txn_id)
                    client.submit(
                        tagged_rmw_spec(trace, txn_id, txn_keys, priority)
                    )
            yield spec.round_gap

    cluster.sim.spawn(burst())

    submitted = len(spec.clients) * spec.rounds * spec.txns_per_client
    # Run past the last fault window, then in chunks until every
    # submitted transaction reached a terminal outcome (all faults here
    # delay messages rather than drop them, so quiescence is guaranteed
    # — the cap is a harness safety net, and hitting it is a violation).
    deadline = max(
        schedule.horizon + 2.0,
        spec.warmup + spec.rounds * spec.round_gap + 5.0,
    )
    cluster.sim.run(until=deadline)
    while len(stats.records) < submitted and deadline < quiescence_cap:
        deadline += 30.0
        cluster.sim.run(until=deadline)
    # Client-terminal is not server-quiescent: coordinators ack clients
    # before participant replicas finish installing writes, so give the
    # protocol tail a settling window before inspecting replica state.
    cluster.sim.run(until=deadline + 5.0)

    report = InvariantReport()
    if len(stats.records) < submitted:
        report.violations.append(
            Violation(
                "liveness",
                f"{submitted - len(stats.records)} of {submitted} "
                f"transactions still unresolved at t={deadline:.0f}s",
            )
        )
    committed = [r.txn_id for r in stats.records if r.committed]
    if not committed:
        report.violations.append(
            Violation("liveness", "no transaction committed")
        )
    report.extend(
        check_all(
            system,
            stats.records,
            trace,
            sessions=sessions,
            tracer=obs.tracer,
        )
    )
    report.checks_run.append("serializability")
    try:
        SerializabilityChecker(
            partition_stores(system), trace, committed
        ).check()
    except SerializationViolation as violation:
        report.violations.append(Violation("serializability", str(violation)))

    return ScenarioOutcome(
        spec=spec,
        submitted=submitted,
        committed=len(committed),
        failed=len(stats.records) - len(committed),
        report=report,
        fault_log=injector.log_lines(),
        fault_fingerprint=injector.fingerprint(),
        record_fingerprint=fingerprint_records(stats.records),
    )


# ----------------------------------------------------------------------
# Shrinking


def shrink(
    spec: ScenarioSpec,
    max_runs: int = 64,
) -> Tuple[ScenarioSpec, ScenarioOutcome, int]:
    """Greedy one-at-a-time fault removal, looped to a fixpoint.

    Returns the minimal failing spec (schedule materialized), its
    outcome, and the number of candidate runs spent.  ``spec`` must
    already fail.  A scenario can shrink to an *empty* schedule when
    the bug does not need faults at all (the mutation smoke test's
    case) — maximally informative for debugging.
    """
    outcome = run_scenario(spec)
    if outcome.ok:
        raise ValueError("shrink() needs a failing scenario")
    best = outcome.spec  # schedule materialized by run_scenario
    best_outcome = outcome
    runs = 0
    changed = True
    while changed and runs < max_runs:
        changed = False
        index = 0
        while index < len(best.schedule) and runs < max_runs:
            candidate = replace(best, schedule=best.schedule.without(index))
            candidate_outcome = run_scenario(candidate)
            runs += 1
            if not candidate_outcome.ok:
                best = candidate_outcome.spec
                best_outcome = candidate_outcome
                changed = True
            else:
                index += 1
    return best, best_outcome, runs


# ----------------------------------------------------------------------
# Failure artifacts


def write_failure_artifact(outcome: ScenarioOutcome, path: str) -> None:
    """Persist a failing scenario as a replayable JSON artifact."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(outcome.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_artifact(path: str) -> ScenarioSpec:
    """The spec stored in a failure artifact (schedule included)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return ScenarioSpec.from_dict(data["spec"])


def replay_artifact(path: str) -> ScenarioOutcome:
    """Re-run a failure artifact's scenario exactly."""
    return run_scenario(load_artifact(path))
