"""Protocol invariants checked on live deployments after a run.

The serializability checker (:mod:`repro.verify.history`) validates the
committed *history*; the checkers here validate the *mechanisms* that
produced it — atomic commitment, replication, priority ordering and
session ordering — directly against server state and the trace stream.
They are what fault injection is checked with: a partition or crash may
slow transactions down arbitrarily, but none of these invariants may
break.

Checkers return :class:`Violation` lists instead of raising, so a fuzz
scenario can collect every broken invariant in one pass and a failure
artifact can describe all of them.

Family applicability
--------------------
* **Atomicity** applies to every system: a transaction that failed its
  retry budget must have installed no writes anywhere; a committed one
  must be installed exactly once per written key, by a single attempt.
* **Replica consistency** (follower chains are a prefix of the leader's
  chain) applies to the Raft-replicated families.  TAPIR is leaderless
  — inconsistent replicas are part of its design and repaired on read —
  so the checker skips groups without a ``leader``.
* **Raft invariants** (log matching, commit safety, applied ≤ committed
  ≤ appended) apply wherever replicas carry a Raft log.
* **Priority ordering** applies to Natto: a priority abort whose winner
  does not strictly outrank its victim, or a HIGH transaction dying of
  preemption (nothing outranks HIGH), is a protocol bug.  2PL's
  wound-wait also reports ``PREEMPTED`` but wounds by *age*, so the
  check would false-positive there and is gated on the Natto family.
* **Monotonic session reads** applies everywhere: two committed,
  non-overlapping transactions from the same client must observe
  versions of a shared key in version-chain order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.abort import AbortReason
from repro.txn.priority import Priority
from repro.verify.history import INITIAL, ExecutionTrace, writer_of_value


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to debug it."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


@dataclass
class InvariantReport:
    """Outcome of one checker pass over one run."""

    checks_run: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def extend(self, other: "InvariantReport") -> "InvariantReport":
        self.checks_run.extend(other.checks_run)
        self.violations.extend(other.violations)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "violations": [
                {"invariant": v.invariant, "detail": v.detail}
                for v in self.violations
            ],
        }

    def summary(self) -> str:
        if self.ok:
            return f"ok ({len(self.checks_run)} checks)"
        lines = [f"{len(self.violations)} violation(s):"]
        lines += [f"  {violation}" for violation in self.violations]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Store plumbing


def _logical_id(writer: str) -> str:
    """Strip the ``.<attempt>`` suffix from a recorded writer id."""
    if "." in writer:
        return writer.rsplit(".", 1)[0]
    return writer


def partition_stores(system) -> Dict[int, Any]:
    """Authoritative store per partition: the leader's, else replica 0's."""
    stores = {}
    for pid, group in system.groups.items():
        leader = getattr(group, "leader", None)
        stores[pid] = (leader or group.replicas[0]).store
    return stores


def _raw_chain(stores: Mapping[int, Any], key: str) -> List[str]:
    """Writer *attempt* ids for ``key`` at its owning partition."""
    for store in stores.values():
        if key in store.history:
            return [v.writer for v in store.history[key]]
    return []


# ----------------------------------------------------------------------
# 2PC atomicity


def check_atomicity(system, records, trace: ExecutionTrace) -> InvariantReport:
    """All-or-nothing commitment, across every partition a txn touched."""
    report = InvariantReport(checks_run=["atomicity"])
    stores = partition_stores(system)
    # Index every installed write once: logical txn -> key -> attempt ids.
    installed: Dict[str, Dict[str, List[str]]] = {}
    for store in stores.values():
        for key, versions in store.history.items():
            for version in versions:
                if version.writer is None:
                    continue
                installed.setdefault(
                    _logical_id(version.writer), {}
                ).setdefault(key, []).append(version.writer)
    for record in records:
        txn_id = record.txn_id
        execution = trace.executions.get(txn_id)
        if record.committed:
            if execution is None:
                continue  # not a traced (tagged) transaction
            writes = execution[1]
            if not writes:
                continue
            per_key = installed.get(txn_id, {})
            attempts = set()
            for key in writes:
                writers = per_key.get(key, [])
                if len(writers) != 1:
                    report.violations.append(
                        Violation(
                            "atomicity",
                            f"committed {txn_id} installed {key!r} "
                            f"{len(writers)} times (expected exactly 1)",
                        )
                    )
                attempts.update(writers)
            if len(attempts) > 1:
                report.violations.append(
                    Violation(
                        "atomicity",
                        f"committed {txn_id} installed writes from several "
                        f"attempts: {sorted(attempts)}",
                    )
                )
        else:
            leaked = installed.get(txn_id)
            if leaked:
                report.violations.append(
                    Violation(
                        "atomicity",
                        f"failed {txn_id} still installed writes to "
                        f"{sorted(leaked)}",
                    )
                )
    return report


# ----------------------------------------------------------------------
# Replication


def check_replica_consistency(system) -> InvariantReport:
    """Follower version chains must be prefixes of the leader's chain."""
    report = InvariantReport(checks_run=["replica-consistency"])
    for pid, group in system.groups.items():
        leader = getattr(group, "leader", None)
        if leader is None:
            continue  # leaderless family (TAPIR): reordering is by design
        for replica in group.replicas:
            if replica is leader:
                continue
            for key, versions in replica.store.history.items():
                follower_chain = [v.writer for v in versions]
                leader_chain = [
                    v.writer for v in leader.store.history.get(key, [])
                ]
                if follower_chain != leader_chain[: len(follower_chain)]:
                    report.violations.append(
                        Violation(
                            "replica-consistency",
                            f"partition {pid}: {replica.name}'s chain for "
                            f"{key!r} {follower_chain} is not a prefix of "
                            f"{leader.name}'s {leader_chain}",
                        )
                    )
    return report


def _raft_groups(system) -> Iterable[Any]:
    for group in system.groups.values():
        replicas = getattr(group, "replicas", ())
        if replicas and hasattr(replicas[0], "log"):
            yield group
    for group in getattr(system, "coordinators", {}).values():
        replicas = getattr(group, "replicas", ())
        if replicas and hasattr(replicas[0], "log"):
            yield group


def check_raft(system) -> InvariantReport:
    """Log matching, commit safety and apply-order sanity per group.

    Entry *payloads* travel by reference inside the simulation (the
    follower re-wraps them in fresh ``LogEntry`` shells but ships the
    same payload object), so log matching degenerates to a payload
    identity check — stronger than the paper's statement and free to
    verify.
    """
    report = InvariantReport(checks_run=["raft"])
    for group in _raft_groups(system):
        replicas = list(group.replicas)
        majority = len(replicas) // 2 + 1
        for replica in replicas:
            if not (
                replica.last_applied
                <= replica.commit_index
                <= replica.log.last_index
            ):
                report.violations.append(
                    Violation(
                        "raft-apply-order",
                        f"{replica.name}: applied {replica.last_applied} / "
                        f"committed {replica.commit_index} / appended "
                        f"{replica.log.last_index} out of order",
                    )
                )
        # Log matching: same index + same term => same entry.
        for i, a in enumerate(replicas):
            for b in replicas[i + 1 :]:
                upto = min(a.log.last_index, b.log.last_index)
                for index in range(1, upto + 1):
                    if a.log.term_at(index) == b.log.term_at(index) and (
                        a.log.entry_at(index).payload
                        is not b.log.entry_at(index).payload
                    ):
                        report.violations.append(
                            Violation(
                                "raft-log-matching",
                                f"{a.name} and {b.name} disagree at "
                                f"index {index} despite equal terms",
                            )
                        )
                        break
        # Commit safety: every committed entry is on a majority.
        leader = getattr(group, "leader", None) or replicas[0]
        for index in range(1, leader.commit_index + 1):
            term = leader.log.term_at(index)
            holders = sum(
                1
                for replica in replicas
                if replica.log.last_index >= index
                and replica.log.term_at(index) == term
            )
            if holders < majority:
                report.violations.append(
                    Violation(
                        "raft-commit-safety",
                        f"{leader.name} committed index {index} but only "
                        f"{holders}/{len(replicas)} replicas hold it",
                    )
                )
                break
    return report


# ----------------------------------------------------------------------
# Natto priority ordering


def _is_natto(system) -> bool:
    return type(system).__name__ == "Natto" or getattr(
        system, "name", ""
    ).startswith("Natto")


def check_priority(system, records, tracer=None) -> InvariantReport:
    """Priority aborts must wound strictly downward (Natto only)."""
    report = InvariantReport(checks_run=["priority-ordering"])
    if not _is_natto(system):
        return report
    if tracer is not None:
        for event in tracer.events:
            if event.name != "priority_abort":
                continue
            winner = event.attrs.get("winner_priority")
            victim = event.attrs.get("victim_priority")
            if winner is None or victim is None or winner <= victim:
                report.violations.append(
                    Violation(
                        "priority-ordering",
                        f"priority abort on {event.node} at t={event.time:.3f}: "
                        f"winner priority {winner} does not outrank victim "
                        f"{victim} ({event.txn} wounded by "
                        f"{event.attrs.get('by')})",
                    )
                )
    preempted = AbortReason.PREEMPTED.value
    for record in records:
        if record.priority is Priority.HIGH and preempted in record.abort_reasons:
            report.violations.append(
                Violation(
                    "priority-ordering",
                    f"HIGH-priority {record.txn_id} was preempted — nothing "
                    "outranks HIGH in Natto",
                )
            )
    return report


# ----------------------------------------------------------------------
# Client-session monotonic reads


def check_monotonicity(
    system,
    records,
    trace: ExecutionTrace,
    sessions: Mapping[str, Sequence[str]],
) -> InvariantReport:
    """Non-overlapping committed txns of one client read forward in time.

    ``sessions`` maps a client name to the transaction ids it submitted
    (the client driver is synchronous per session, but retries can make
    wall-clock windows overlap — only pairs where one ended before the
    other started are ordered).
    """
    report = InvariantReport(checks_run=["session-monotonic-reads"])
    stores = partition_stores(system)
    by_id = {record.txn_id: record for record in records}
    chain_cache: Dict[str, Dict[str, int]] = {}

    def position(key: str, writer: str) -> Optional[int]:
        positions = chain_cache.get(key)
        if positions is None:
            positions = {
                _logical_id(w): index
                for index, w in enumerate(_raw_chain(stores, key))
            }
            chain_cache[key] = positions
        return positions.get(writer)

    for client, txn_ids in sessions.items():
        committed = [
            by_id[txn_id]
            for txn_id in txn_ids
            if txn_id in by_id and by_id[txn_id].committed
        ]
        committed.sort(key=lambda record: record.start)
        for i, first in enumerate(committed):
            first_exec = trace.executions.get(first.txn_id)
            if first_exec is None:
                continue
            for second in committed[i + 1 :]:
                if first.end > second.start:
                    continue  # overlapping: no order requirement
                second_exec = trace.executions.get(second.txn_id)
                if second_exec is None:
                    continue
                for key, value in first_exec[0].items():
                    later_value = second_exec[0].get(key)
                    if later_value is None:
                        continue
                    earlier_writer = writer_of_value(value, key)
                    later_writer = writer_of_value(later_value, key)
                    if later_writer == INITIAL and earlier_writer != INITIAL:
                        report.violations.append(
                            Violation(
                                "session-monotonic-reads",
                                f"{client}: {second.txn_id} read initial "
                                f"{key!r} after {first.txn_id} saw "
                                f"{earlier_writer}'s write",
                            )
                        )
                        continue
                    if earlier_writer == INITIAL:
                        continue
                    earlier_pos = position(key, earlier_writer)
                    later_pos = position(key, later_writer)
                    if (
                        earlier_pos is not None
                        and later_pos is not None
                        and later_pos < earlier_pos
                    ):
                        report.violations.append(
                            Violation(
                                "session-monotonic-reads",
                                f"{client}: {second.txn_id} read {key!r} "
                                f"from {later_writer} (version {later_pos}) "
                                f"after {first.txn_id} read {earlier_writer} "
                                f"(version {earlier_pos})",
                            )
                        )
    return report


# ----------------------------------------------------------------------
# Aggregation


def check_all(
    system,
    records,
    trace: ExecutionTrace,
    sessions: Optional[Mapping[str, Sequence[str]]] = None,
    tracer=None,
) -> InvariantReport:
    """Run every applicable checker; collect all violations."""
    report = InvariantReport()
    report.extend(check_atomicity(system, records, trace))
    report.extend(check_replica_consistency(system))
    report.extend(check_raft(system))
    report.extend(check_priority(system, records, tracer=tracer))
    if sessions:
        report.extend(check_monotonicity(system, records, trace, sessions))
    return report
