"""``python -m repro.trace`` — inspect traces exported by the harness.

Examples::

    python -m repro.trace summary traces/run.trace.jsonl
    python -m repro.trace critical-path traces/run.trace.jsonl --txn client-X-0-42
    python -m repro.trace chrome traces/run.trace.jsonl -o run.chrome.json

See :mod:`repro.obs.cli` for the implementation.
"""

from repro.obs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
