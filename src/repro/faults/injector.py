"""Binds a :class:`FaultSchedule` to a live cluster.

The injector schedules each event's begin/end transitions on the
simulator and maintains the per-message network-fault state the
:class:`repro.net.network.Network` consults while at least one
network-affecting window is open (``Network.set_faults``).  Every
transition is appended to a deterministic, JSON-line event log;
:meth:`FaultInjector.fingerprint` digests it so replays can be verified
byte-for-byte.

Target resolution goes through the network's node registry, so the
injector works with every system family unchanged: crash/pause/skew
events name nodes, partitions name datacenters.
"""

from __future__ import annotations

import hashlib
import json
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.schedule import NETWORK_KINDS, FaultEvent, FaultSchedule
from repro.net.network import Network
from repro.sim import Simulator


class FaultInjector:
    """Drives one fault schedule against one cluster, deterministically."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        schedule: FaultSchedule,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        # Exclusive stream: loss-burst retransmission draws never touch
        # the cluster's own streams, so adding/removing fault events
        # cannot perturb workload or delay-model sampling.
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0xFA17)))
        #: Consulted by Network._dispatch before calling route(); stays
        #: False whenever no network-affecting window is open.
        self.active = False
        self._net_open = 0
        # Open-window state, each entry tagged with its event index so
        # overlapping windows of the same kind close independently.
        self._holds: List[Tuple[int, Tuple[Any, ...]]] = []
        self._bursts: List[Tuple[int, float, float]] = []
        self._storms: List[Tuple[int, float, float]] = []
        self._blackholes: List[Tuple[int, str, str]] = []
        # Pause depth per node, so overlapping pauses on one node only
        # resume heartbeats when the last window closes.
        self._paused: Dict[str, int] = {}
        self.log: List[Dict[str, Any]] = []
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle

    def attach(self) -> "FaultInjector":
        """Register with the network and schedule every transition."""
        if self._attached:
            raise RuntimeError("injector already attached")
        self._attached = True
        self.network.set_faults(self)
        for index, event in enumerate(self.schedule):
            self.sim.post_at(event.start, partial(self._begin, index, event))
            self.sim.post_at(event.end, partial(self._end, index, event))
        return self

    def detach(self) -> None:
        self.network.set_faults(None)
        self._attached = False

    # ------------------------------------------------------------------
    # Event log

    def _record(self, phase: str, index: int, event: FaultEvent) -> None:
        self.log.append(
            {
                "t": float(self.sim.now),
                "phase": phase,
                "event": index,
                "kind": event.kind,
                "params": dict(event.params),
            }
        )

    def log_lines(self) -> List[str]:
        """The event log as canonical JSON lines."""
        return [json.dumps(entry, sort_keys=True) for entry in self.log]

    def fingerprint(self) -> str:
        """sha256 digest of the event log — identical across replays."""
        digest = hashlib.sha256()
        for line in self.log_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Transitions

    def _begin(self, index: int, event: FaultEvent) -> None:
        self._record("begin", index, event)
        kind = event.kind
        params = event.params
        if kind == "region_partition":
            self._holds.append(
                (
                    index,
                    (
                        "dc",
                        frozenset(params["group_a"]),
                        frozenset(params["group_b"]),
                        event.end,
                    ),
                )
            )
        elif kind == "link_partition":
            self._holds.append(
                (index, ("link", params["dc_a"], params["dc_b"], event.end))
            )
        elif kind == "loss_burst":
            self._bursts.append((index, params["loss_rate"], params["rto"]))
        elif kind == "delay_storm":
            self._storms.append((index, params["factor"], params["extra"]))
        elif kind == "server_crash":
            node = self.network.node(params["node"])
            self._holds.append((index, ("node", node.name, event.end)))
            # Fail-stop without durability loss: the CPU cursor jumps to
            # the recovery time, so queued and held work drains after.
            node.service.stall_until(event.end)
        elif kind == "leader_pause":
            node = self.network.node(params["node"])
            node.service.stall_until(event.end)
            self._paused[node.name] = self._paused.get(node.name, 0) + 1
            pause = getattr(node, "pause_heartbeats", None)
            if pause is not None:
                pause()
        elif kind == "clock_skew":
            node = self.network.node(params["node"])
            node.clock.fault_skew += params["skew"]
        elif kind == "blackhole":
            self._blackholes.append((index, params["src"], params["dst"]))
        if kind in NETWORK_KINDS:
            self._net_open += 1
            self.active = True

    def _end(self, index: int, event: FaultEvent) -> None:
        self._record("end", index, event)
        kind = event.kind
        if kind in ("region_partition", "link_partition", "server_crash"):
            self._holds = [h for h in self._holds if h[0] != index]
        elif kind == "loss_burst":
            self._bursts = [b for b in self._bursts if b[0] != index]
        elif kind == "delay_storm":
            self._storms = [s for s in self._storms if s[0] != index]
        elif kind == "blackhole":
            self._blackholes = [b for b in self._blackholes if b[0] != index]
        elif kind == "leader_pause":
            node = self.network.node(event.params["node"])
            depth = self._paused.get(node.name, 1) - 1
            self._paused[node.name] = depth
            if depth == 0:
                resume = getattr(node, "resume_heartbeats", None)
                if resume is not None:
                    resume()
        elif kind == "clock_skew":
            node = self.network.node(event.params["node"])
            node.clock.fault_skew -= event.params["skew"]
        if kind in NETWORK_KINDS:
            self._net_open -= 1
            if self._net_open == 0:
                self.active = False

    # ------------------------------------------------------------------
    # Per-message consultation (called by Network._dispatch while active)

    def route(
        self,
        src: str,
        dst: str,
        src_dc: str,
        dst_dc: str,
        delay: float,
    ) -> Optional[Tuple[float, float]]:
        """Adjust one message: drop (None) or ``(delay, arrival_floor)``.

        Partitions and crashes floor the arrival at their heal/recovery
        time instead of dropping: the transport keeps retrying until the
        route returns, and the per-pair FIFO map in the network then
        preserves send order among the held messages.
        """
        for _idx, bh_src, bh_dst in self._blackholes:
            if (bh_src == "*" or bh_src == src) and (
                bh_dst == "*" or bh_dst == dst
            ):
                return None
        for _idx, factor, extra in self._storms:
            delay = delay * factor + extra
        for _idx, loss_rate, rto in self._bursts:
            attempts = int(self._rng.geometric(1.0 - loss_rate))
            if attempts > 1:
                delay += (attempts - 1) * rto
        floor = 0.0
        for _idx, hold in self._holds:
            tag = hold[0]
            if tag == "dc":
                _, group_a, group_b, until = hold
                if (src_dc in group_a and dst_dc in group_b) or (
                    src_dc in group_b and dst_dc in group_a
                ):
                    if until > floor:
                        floor = until
            elif tag == "link":
                _, dc_a, dc_b, until = hold
                if (src_dc == dc_a and dst_dc == dc_b) or (
                    src_dc == dc_b and dst_dc == dc_a
                ):
                    if until > floor:
                        floor = until
            else:
                _, name, until = hold
                if src == name or dst == name:
                    if until > floor:
                        floor = until
        return delay, floor
