"""Deterministic, declarative fault injection for the simulation.

A :class:`FaultSchedule` is a plain-data list of timed fault events —
partitions, loss bursts, delay storms, server crashes, leader pauses,
clock-skew spikes — fully serializable to JSON and reproducible from a
seed.  A :class:`FaultInjector` binds a schedule to a live cluster and
drives the transitions at simulated time, recording a deterministic
event log whose fingerprint is part of the fuzzing harness's replay
artifact.

Fault semantics are chosen to compose with the repo's protocols, which
model TCP/gRPC transports (no client-side timeouts, no retransmission
logic above the network layer):

* **Partitions and crashes hold messages**; they do not drop them.  A
  message crossing an active cut arrives when the cut heals (TCP keeps
  retransmitting until the route returns).  Dropping instead would hang
  transactions forever and turn modeling artifacts into fake invariant
  violations.
* **Loss bursts add retransmission latency** (geometric attempt counts
  times an RTO, mirroring :class:`repro.net.loss.LossModel`).
* **Crashes are fail-stop without durability loss**: the node's CPU is
  stalled and its traffic held until recovery, after which it resumes
  with its state intact — consistent with the in-memory Raft model.
* **Blackholes** (true message drops) exist for targeted tests but are
  excluded from the default random generator.
"""

from repro.faults.schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    blackhole,
    clock_skew,
    delay_storm,
    leader_pause,
    link_partition,
    loss_burst,
    random_schedule,
    region_partition,
    server_crash,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "blackhole",
    "clock_skew",
    "delay_storm",
    "leader_pause",
    "link_partition",
    "loss_burst",
    "random_schedule",
    "region_partition",
    "server_crash",
]
