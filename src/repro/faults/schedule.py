"""Fault schedules: plain-data timed fault events.

Every event is a :class:`FaultEvent` — a kind, a start time, a duration
and kind-specific parameters.  Schedules serialize losslessly to JSON
(floats round-trip exactly through :mod:`json`), so a failing fuzz seed
can be replayed from its artifact alone.  :func:`random_schedule` draws
a schedule deterministically from a seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Every fault kind the injector understands, with the parameters each
#: carries in ``FaultEvent.params``.
FAULT_KINDS: Tuple[str, ...] = (
    "region_partition",  # group_a, group_b (datacenter name lists)
    "link_partition",    # dc_a, dc_b
    "loss_burst",        # loss_rate, rto
    "delay_storm",       # factor, extra
    "server_crash",      # node
    "leader_pause",      # node
    "clock_skew",        # node, skew
    "blackhole",         # src, dst ("*" wildcards allowed)
)

#: Kinds the network consults per message while their window is open.
NETWORK_KINDS = frozenset(
    (
        "region_partition",
        "link_partition",
        "loss_burst",
        "delay_storm",
        "server_crash",
        "blackhole",
    )
)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: active over ``[start, start + duration)``."""

    kind: str
    start: float
    duration: float
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.start < 0.0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "params": dict(self.params),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultEvent":
        return FaultEvent(
            kind=data["kind"],
            start=float(data["start"]),
            duration=float(data["duration"]),
            params=dict(data.get("params", {})),
        )

    def describe(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (
            f"{self.kind}[{self.start:.3f}s +{self.duration:.3f}s]"
            + (f"({detail})" if detail else "")
        )


# ----------------------------------------------------------------------
# Constructors — one per kind, so call sites read declaratively.


def region_partition(
    start: float,
    duration: float,
    group_a: Sequence[str],
    group_b: Sequence[str],
) -> FaultEvent:
    """Hold all traffic between two sets of datacenters until heal."""
    return FaultEvent(
        "region_partition",
        start,
        duration,
        {"group_a": sorted(group_a), "group_b": sorted(group_b)},
    )


def link_partition(start: float, duration: float, dc_a: str, dc_b: str) -> FaultEvent:
    """Hold traffic on one datacenter pair (both directions)."""
    return FaultEvent("link_partition", start, duration, {"dc_a": dc_a, "dc_b": dc_b})


def loss_burst(
    start: float, duration: float, loss_rate: float, rto: float = 0.1
) -> FaultEvent:
    """Add geometric retransmission latency to every message in window."""
    return FaultEvent(
        "loss_burst", start, duration, {"loss_rate": loss_rate, "rto": rto}
    )


def delay_storm(
    start: float, duration: float, factor: float = 2.0, extra: float = 0.0
) -> FaultEvent:
    """Scale every message delay by ``factor`` and add ``extra`` seconds."""
    return FaultEvent(
        "delay_storm", start, duration, {"factor": factor, "extra": extra}
    )


def server_crash(start: float, duration: float, node: str) -> FaultEvent:
    """Fail-stop a node: traffic held, CPU stalled, until recovery."""
    return FaultEvent("server_crash", start, duration, {"node": node})


def leader_pause(start: float, duration: float, node: str) -> FaultEvent:
    """Stall a (leader) node's CPU and suppress its heartbeats."""
    return FaultEvent("leader_pause", start, duration, {"node": node})


def clock_skew(start: float, duration: float, node: str, skew: float) -> FaultEvent:
    """Add ``skew`` seconds to one node's clock for the window."""
    return FaultEvent("clock_skew", start, duration, {"node": node, "skew": skew})


def blackhole(
    start: float, duration: float, src: str = "*", dst: str = "*"
) -> FaultEvent:
    """Silently drop matching messages (``"*"`` matches any node)."""
    return FaultEvent("blackhole", start, duration, {"src": src, "dst": dst})


# ----------------------------------------------------------------------
# Schedules


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, serializable sequence of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> FaultEvent:
        return self.events[index]

    @property
    def horizon(self) -> float:
        """Latest event end time (0 for an empty schedule)."""
        return max((event.end for event in self.events), default=0.0)

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the event at ``index`` removed (for shrinking)."""
        return FaultSchedule(
            self.events[:index] + self.events[index + 1 :]
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultSchedule":
        return FaultSchedule(
            tuple(FaultEvent.from_dict(item) for item in data.get("events", []))
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        return FaultSchedule.from_dict(json.loads(text))

    def describe(self) -> str:
        if not self.events:
            return "(no faults)"
        return "; ".join(event.describe() for event in self.events)


# ----------------------------------------------------------------------
# Random generation


def random_schedule(
    seed: int,
    *,
    horizon: float,
    datacenters: Sequence[str],
    crashable: Sequence[str] = (),
    pausable: Sequence[str] = (),
    skewable: Sequence[str] = (),
    num_events: Optional[int] = None,
    max_events: int = 4,
    min_duration_frac: float = 0.05,
    max_duration_frac: float = 0.25,
) -> FaultSchedule:
    """Draw a fault schedule deterministically from ``seed``.

    The kind pool adapts to what the cluster supports: crashes need
    ``crashable`` targets (followers — leaders are irreplaceable when
    elections are disabled), pauses need ``pausable`` targets (leaders),
    skew spikes need ``skewable`` targets.  Blackholes are never drawn:
    with TCP-modeled transports a silent drop hangs its transaction
    forever, which reads as a liveness artifact rather than a protocol
    bug.  Windows start inside the first 70% of ``horizon`` so faults
    always overlap live traffic.
    """
    datacenters = sorted(datacenters)
    rng = np.random.default_rng(seed)
    kinds: List[str] = ["loss_burst", "delay_storm"]
    if len(datacenters) >= 2:
        kinds += ["region_partition", "link_partition"]
    if crashable:
        kinds.append("server_crash")
    if pausable:
        kinds.append("leader_pause")
    if skewable:
        kinds.append("clock_skew")
    if num_events is None:
        num_events = int(rng.integers(1, max_events + 1))
    events: List[FaultEvent] = []
    for _ in range(num_events):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        start = float(rng.uniform(0.0, horizon * 0.7))
        duration = float(
            rng.uniform(horizon * min_duration_frac, horizon * max_duration_frac)
        )
        if kind == "region_partition":
            cut = int(rng.integers(1, len(datacenters)))
            picked = rng.choice(len(datacenters), size=cut, replace=False)
            group_a = [datacenters[i] for i in sorted(int(i) for i in picked)]
            group_b = [dc for dc in datacenters if dc not in group_a]
            events.append(region_partition(start, duration, group_a, group_b))
        elif kind == "link_partition":
            pair = rng.choice(len(datacenters), size=2, replace=False)
            events.append(
                link_partition(
                    start,
                    duration,
                    datacenters[int(pair[0])],
                    datacenters[int(pair[1])],
                )
            )
        elif kind == "loss_burst":
            events.append(
                loss_burst(
                    start,
                    duration,
                    loss_rate=float(rng.uniform(0.05, 0.3)),
                    rto=float(rng.uniform(0.02, 0.1)),
                )
            )
        elif kind == "delay_storm":
            events.append(
                delay_storm(
                    start,
                    duration,
                    factor=float(rng.uniform(1.5, 4.0)),
                    extra=float(rng.uniform(0.0, 0.05)),
                )
            )
        elif kind == "server_crash":
            node = crashable[int(rng.integers(0, len(crashable)))]
            events.append(server_crash(start, duration, node))
        elif kind == "leader_pause":
            node = pausable[int(rng.integers(0, len(pausable)))]
            # Keep pauses short relative to the horizon: the leader is
            # the only node that can commit, so a long stall just idles
            # the run without exercising anything new.
            events.append(leader_pause(start, min(duration, horizon * 0.15), node))
        elif kind == "clock_skew":
            node = skewable[int(rng.integers(0, len(skewable)))]
            magnitude = float(rng.uniform(0.005, 0.05))
            sign = 1.0 if rng.uniform() < 0.5 else -1.0
            events.append(clock_skew(start, duration, node, sign * magnitude))
    events.sort(key=lambda event: (event.start, event.kind))
    return FaultSchedule(tuple(events))
