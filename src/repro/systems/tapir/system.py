"""The TAPIR client protocol and system wiring.

One transaction attempt:

1. **Read round** — read keys are fetched from the *closest* replica of
   each partition (reads are unreplicated operations in IR), so reads
   can be stale; staleness is caught at validation.
2. **Prepare round** — the client sends the prepare (read versions +
   write keys) to every replica of every participant.  Per partition:
   a unanimous fast quorum (3/3 for f=1) decides immediately; mixed
   votes start the slow path at once (the paper's modification): the
   majority vote is finalized with one more round, waiting for a
   majority of acks.
3. **Outcome** — if every partition prepared, the client reports commit
   and asynchronously sends commit (with write data) to all replicas;
   any partition abort aborts the attempt everywhere and the driver
   retries.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.net.payload import (
    TapirAbort,
    TapirCommit,
    TapirFinalize,
    TapirPrepare,
    TapirRead,
)
from repro.sim import all_of
from repro.store.kv import KeyValueStore
from repro.systems.base import Cluster, TransactionSystem, attempt_id
from repro.systems.tapir.replica import TapirReplica
from repro.txn.transaction import TransactionSpec


class _TapirGroup:
    """The replicas of one partition (no leader, no Raft)."""

    def __init__(self, system: "Tapir", placement, cluster: Cluster) -> None:
        self.placement = placement
        self.replicas: List[TapirReplica] = []
        for dc in placement.datacenters:
            name = f"tapir-p{placement.partition_id}-{dc}"
            replica = TapirReplica(
                cluster.sim,
                name,
                dc,
                store=KeyValueStore(),
                clock=cluster.make_clock(name),
                service_time=cluster.config.server_service_time,
            )
            cluster.network.register(replica)
            self.replicas.append(replica)

    @property
    def replica_names(self) -> List[str]:
        return [r.name for r in self.replicas]

    def closest_replica_name(self, datacenter: str, topology) -> str:
        return min(
            self.replicas,
            key=lambda r: topology.rtt(datacenter, r.datacenter),
        ).name


class Tapir(TransactionSystem):
    """TAPIR with an immediate slow path."""

    name = "TAPIR"

    def setup(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.groups: Dict[int, _TapirGroup] = {
            placement.partition_id: _TapirGroup(self, placement, cluster)
            for placement in cluster.placements
        }

    # ------------------------------------------------------------------

    def execute(self, client, spec: TransactionSpec, attempt: int) -> Generator:
        aid = attempt_id(spec, attempt)
        partitioner = self.cluster.partitioner
        topology = self.cluster.topology
        participants = sorted(
            partitioner.participants(spec.read_keys, spec.write_keys)
        )
        reads_by_pid = partitioner.group_keys(spec.read_keys)
        writes_by_pid = partitioner.group_keys(spec.write_keys)

        # Round 1: read from the closest replica of each read partition.
        read_calls = []
        read_pids = [pid for pid in participants if reads_by_pid.get(pid)]
        for pid in read_pids:
            replica = self.groups[pid].closest_replica_name(
                client.datacenter, topology
            )
            read_calls.append(
                client.network.call(
                    client, replica, "tapir_read", TapirRead(reads_by_pid[pid])
                )
            )
        read_replies = yield all_of(read_calls)
        read_values: Dict[str, str] = {}
        read_versions: Dict[str, int] = {}
        for reply in read_replies:
            for key, (value, version) in reply["values"].items():
                read_values[key] = value
                read_versions[key] = version

        writes = spec.make_writes(read_values)
        if writes is None:
            return True  # voluntary abort after reads: nothing prepared

        # Round 2: prepare on every replica of every participant.
        prepare_calls = []
        call_pids = []
        for pid in participants:
            # One payload object serves every replica of the partition.
            body = TapirPrepare(
                aid,
                {k: read_versions[k] for k in reads_by_pid.get(pid, [])},
                writes_by_pid.get(pid, []),
            )
            for replica in self.groups[pid].replica_names:
                prepare_calls.append(
                    client.network.call(client, replica, "tapir_prepare", body)
                )
                call_pids.append(pid)
        replies = yield all_of(prepare_calls)

        votes_by_pid: Dict[int, List[str]] = {pid: [] for pid in participants}
        abort_reason = None
        for pid, reply in zip(call_pids, replies):
            votes_by_pid[pid].append(reply["vote"])
            if reply["vote"] == "abort" and abort_reason is None:
                abort_reason = reply.get("reason")

        decisions: Dict[int, str] = {}
        slow_path_pids = []
        for pid, votes in votes_by_pid.items():
            ok = votes.count("ok")
            if ok == len(votes):
                decisions[pid] = "ok"  # fast path
            elif ok * 2 > len(votes):
                decisions[pid] = "ok"
                slow_path_pids.append(pid)  # majority ok: finalize
            else:
                decisions[pid] = "abort"
        if any(d == "abort" for d in decisions.values()):
            client.note_abort(aid, abort_reason)

        if slow_path_pids and all(d == "ok" for d in decisions.values()):
            # Slow path starts immediately; wait for majority acks.
            finalize_waits = []
            for pid in slow_path_pids:
                body = TapirFinalize(
                    aid,
                    "ok",
                    {k: read_versions[k] for k in reads_by_pid.get(pid, [])},
                    writes_by_pid.get(pid, []),
                )
                acks = [
                    client.network.call(client, replica, "tapir_finalize", body)
                    for replica in self.groups[pid].replica_names
                ]
                finalize_waits.append(_majority(acks))
            yield all_of(finalize_waits)

        committed = all(d == "ok" for d in decisions.values())
        outcome_method = "tapir_commit" if committed else "tapir_abort"
        for pid in participants:
            if committed:
                body = TapirCommit(
                    aid,
                    {
                        key: writes[key] for key in writes_by_pid.get(pid, [])
                        if key in writes
                    },
                )
            else:
                body = TapirAbort(aid)
            for replica in self.groups[pid].replica_names:
                client.network.send(client, replica, outcome_method, body)
        return committed


def _majority(futures):
    """A future resolving once a majority of ``futures`` resolve."""
    from repro.sim import Future

    combined = Future()
    needed = len(futures) // 2 + 1
    count = [0]

    def _on_done(_):
        count[0] += 1
        if count[0] >= needed and not combined.done:
            combined.set_result(True)

    for future in futures:
        future.add_done_callback(_on_done)
    return combined
