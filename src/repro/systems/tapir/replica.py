"""TAPIR replica: validation, finalize, and commit application.

Each replica validates a prepare against **its own** state — the version
of every read key must match the version the client read, and the
transaction's key sets must not conflict with locally prepared
transactions.  Because replicas apply committed writes at different
times (commit messages are asynchronous), their answers can disagree;
resolving that disagreement is the client's job (fast quorum / slow
path), not the replica's.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cluster.node import Node
from repro.net.payload import (
    TAPIR_ACK,
    TAPIR_VOTE_OK,
    TapirReadResult,
    TapirVoteAbort,
)
from repro.obs.abort import AbortReason
from repro.store.kv import KeyValueStore
from repro.store.occ import PreparedSet


class TapirReplica(Node):
    """One replica of one partition."""

    def __init__(self, *args: Any, store: Optional[KeyValueStore] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.store = store if store is not None else KeyValueStore()
        self.prepared = PreparedSet()
        self.prepare_ok_count = 0
        self.prepare_abort_count = 0

    # ------------------------------------------------------------------
    # Reads (unreplicated operation: any single replica serves them)

    def handle_tapir_read(self, payload, src: str) -> TapirReadResult:
        values = {}
        for key in payload["keys"]:
            versioned = self.store.read(key)
            values[key] = (versioned.value, versioned.version)
        return TapirReadResult(values)

    # ------------------------------------------------------------------
    # Prepare (consensus operation: client collects a quorum)

    def handle_tapir_prepare(self, payload: dict, src: str) -> dict:
        txn = payload["txn"]
        read_versions: Dict[str, int] = payload["read_versions"]
        reads = list(read_versions)
        writes = payload["write_keys"]
        if txn in self.prepared:
            return TAPIR_VOTE_OK  # duplicate (finalize raced the prepare)
        for key, version in read_versions.items():
            if self.store.version_of(key) != version:
                self.prepare_abort_count += 1
                return self._abort_vote(txn, AbortReason.STALE_READ)
        if not self.prepared.is_free(reads, writes):
            self.prepare_abort_count += 1
            return self._abort_vote(txn, AbortReason.OCC_CONFLICT)
        self.prepared.add(txn, reads, writes)
        self.prepare_ok_count += 1
        return TAPIR_VOTE_OK

    def _abort_vote(self, txn: str, reason: AbortReason) -> TapirVoteAbort:
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.refuse(reason, node=self.name, txn=txn)
        return TapirVoteAbort(str(reason))

    def handle_tapir_finalize(self, payload: dict, src: str) -> dict:
        """Slow path: the client's majority decision is installed."""
        txn = payload["txn"]
        if payload["decision"] == "ok":
            if txn not in self.prepared:
                # Forced by consensus: record the prepare even if this
                # replica's lone vote differed.
                self.prepared.add(
                    txn,
                    list(payload["read_versions"]),
                    payload["write_keys"],
                )
        else:
            self.prepared.remove(txn)
        return TAPIR_ACK

    # ------------------------------------------------------------------
    # Outcome (inconsistent operations: asynchronous, no quorum wait)

    def handle_tapir_commit(self, payload: dict, src: str) -> None:
        txn = payload["txn"]
        self.store.apply_writes(payload["writes"], txn)
        self.prepared.remove(txn)

    def handle_tapir_abort(self, payload: dict, src: str) -> None:
        self.prepared.remove(payload["txn"])
