"""TAPIR (Zhang et al., SOSP 2015) over inconsistent replication.

TAPIR replicas are *not* Raft-replicated: the client coordinates OCC
validation through an inconsistent-replication consensus operation.

* :mod:`repro.systems.tapir.replica` — replica-side validation (version
  checks + prepared-set conflicts), finalize, commit/abort application.
* :mod:`repro.systems.tapir.system` — the client protocol: read from the
  closest replica, prepare on all replicas with a fast quorum (all 3
  for f=1), and — per the Natto paper's modification of the UW
  implementation — start the slow path immediately when the fast path
  fails instead of waiting on a 500 ms timeout.
"""

from repro.systems.tapir.replica import TapirReplica
from repro.systems.tapir.system import Tapir

__all__ = ["Tapir", "TapirReplica"]
