"""Transaction processing systems.

The baselines the paper evaluates against, all built on the same
substrates (:mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.raft`,
:mod:`repro.store`):

* :mod:`repro.systems.carousel` — Carousel Basic and Carousel Fast.
* :mod:`repro.systems.tapir` — TAPIR over inconsistent replication.
* :mod:`repro.systems.twopl` — the Spanner-like 2PL+2PC system, with
  wound-wait and the (P) / (POW) prioritization variants.

Natto itself lives in :mod:`repro.core` (it is the paper's primary
contribution), but it plugs into the same
:class:`~repro.systems.base.TransactionSystem` interface, so the harness
treats all six systems uniformly.
"""

from repro.systems.base import Cluster, SystemConfig, TransactionSystem
from repro.systems.client import ClientDriver

__all__ = [
    "ClientDriver",
    "Cluster",
    "SystemConfig",
    "TransactionSystem",
]
