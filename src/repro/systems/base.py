"""Shared deployment scaffolding and the system interface.

A :class:`Cluster` owns everything protocol-independent about a
deployment: the simulator, random streams, topology, the network with
its delay/loss models, the partitioner and the replica placements.  A
:class:`TransactionSystem` then populates it with protocol-specific
server nodes in :meth:`TransactionSystem.setup` and executes client
transactions via :meth:`TransactionSystem.execute`.

The default :class:`SystemConfig` mirrors the paper's settings: 5
partitions, 3 replicas, loosely synchronized clocks, Raft without
elections (failure-free runs), and a small per-message server CPU cost
that produces realistic saturation behaviour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Generator, List, Optional

from repro.cluster.clock import Clock, ClockConfig
from repro.cluster.partition import Partitioner
from repro.cluster.placement import PartitionPlacement, place_partitions
from repro.net.delay import make_delay_model
from repro.net.loss import LossConfig
from repro.net.network import Network, NetworkConfig
from repro.net.topology import Topology
from repro.raft.node import RaftConfig
from repro.sim import RandomStreams, Simulator
from repro.txn.transaction import TransactionSpec


@dataclass(frozen=True)
class SystemConfig:
    """Deployment-level knobs shared by every system."""

    num_partitions: int = 5
    replication_factor: int = 3
    clock: ClockConfig = field(
        default_factory=lambda: ClockConfig(
            max_offset=0.001, sync_interval=1.0, sync_error=0.0005
        )
    )
    raft: RaftConfig = field(
        default_factory=lambda: RaftConfig(
            heartbeat_interval=0.05, election_timeout=None
        )
    )
    #: Per-message CPU cost on servers (calibrated against Figure 14).
    server_service_time: float = 100e-6
    #: Network delay variance (std/mean) — the Figure 11 knob.
    delay_variance_cv: float = 0.0
    #: Packet loss — the Figure 12 knob.
    loss: LossConfig = field(default_factory=LossConfig)
    #: Natto probe settings (harmless for systems that don't probe).
    probe_interval: float = 0.010
    probe_window: float = 1.0
    client_view_refresh: float = 0.1

    def with_overrides(self, **kwargs: Any) -> "SystemConfig":
        return replace(self, **kwargs)


class Cluster:
    """One deployment's protocol-independent state."""

    def __init__(
        self,
        topology: Topology,
        config: SystemConfig = SystemConfig(),
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.config = config
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        delay_model = make_delay_model(
            topology, self.streams.stream("net.delay"), config.delay_variance_cv
        )
        self.network = Network(
            self.sim,
            topology,
            delay_model=delay_model,
            config=NetworkConfig(loss=config.loss),
            loss_rng=(
                self.streams.stream("net.loss")
                if config.loss.loss_rate > 0
                else None
            ),
        )
        self.partitioner = Partitioner(config.num_partitions)
        self.placements: List[PartitionPlacement] = place_partitions(
            topology.datacenters,
            config.num_partitions,
            config.replication_factor,
        )

    # ------------------------------------------------------------------
    # Helpers for systems

    def make_clock(self, name: str) -> Clock:
        """A fresh, loosely synchronized clock for node ``name``."""
        return Clock(
            self.sim, self.config.clock, self.streams.stream(f"clock.{name}")
        )

    def coordinator_placement(self, datacenter: str) -> PartitionPlacement:
        """Replica placement for the per-datacenter coordinator group.

        The coordinator leader is co-located with the datacenter's
        clients; its followers sit in the next datacenters (the same
        round-robin rule as data partitions), giving the coordinator's
        write-data replication a realistic majority round trip.
        """
        dcs = list(self.topology.datacenters)
        start = dcs.index(datacenter)
        chosen = tuple(
            dcs[(start + j) % len(dcs)]
            for j in range(self.config.replication_factor)
        )
        # Partition ids >= num_partitions are reserved for coordinators.
        return PartitionPlacement(1000 + start, chosen)


class TransactionSystem(abc.ABC):
    """Interface every system (baselines and Natto) implements."""

    #: Display name used by the harness and in benchmark output.
    name: str = "abstract"

    @abc.abstractmethod
    def setup(self, cluster: Cluster) -> None:
        """Create and register all server-side nodes on the cluster."""

    @abc.abstractmethod
    def execute(
        self, client: "ClientDriver", spec: TransactionSpec, attempt: int
    ) -> Generator:
        """One transaction attempt, as a process generator.

        Yields simulator suspension points; returns True iff the attempt
        committed (False means abort — the client driver retries).
        """

    def on_client_created(self, client: "ClientDriver") -> None:
        """Hook for systems that attach per-client state (e.g. Natto's
        delay view).  Default: nothing."""


def attempt_id(spec: TransactionSpec, attempt: int) -> str:
    """Protocol-level id for one attempt of one logical transaction.

    Every retry gets a fresh id so server-side state (prepared sets,
    lock tables, queues) never confuses two attempts.
    """
    return f"{spec.txn_id}.{attempt}"
