"""Wounding policies for the 2PL+2PC family.

A policy answers one question: given a lock requester and the set of
transactions blocking it, which blockers should be aborted (wounded)?
The participant server executes the verdicts; a wounded transaction's
client aborts the attempt and retries (keeping its original timestamp,
so it ages toward winning).

Victims are advisory — a wound is *requested* of the victim's client,
which ignores it once the transaction has entered the prepare phase
(wounding a prepared transaction would stall 2PC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.store.locks import LockRequest, LockTable
from repro.txn.priority import Priority


@dataclass(frozen=True)
class BlockerInfo:
    """What a policy may know about one blocking transaction."""

    txn: str
    timestamp: float
    priority: Priority


def _age(timestamp: float, txn_id: str) -> tuple:
    """Total age order.  Wound-wait is only deadlock-free if ages form a
    total order; timestamps alone can tie (transactions submitted in the
    same instant), so the transaction id breaks ties."""
    return (timestamp, txn_id)


class WoundWaitPolicy:
    """Classic wound-wait: an older requester wounds younger blockers;
    a younger requester waits."""

    name = "2PL+2PC"

    def order_key(self, request: LockRequest) -> tuple:
        return (request.timestamp, request.txn_id)

    def victims(
        self,
        requester: LockRequest,
        blockers: Iterable[BlockerInfo],
        table: LockTable,
    ) -> List[str]:
        mine = _age(requester.timestamp, requester.txn_id)
        return [
            b.txn for b in blockers if mine < _age(b.timestamp, b.txn)
        ]


class PreemptPolicy(WoundWaitPolicy):
    """Priority preemption (the paper's 2PL+2PC(P)).

    A high-priority requester preempts conflicting low-priority
    transactions regardless of age; high-priority requests also queue
    ahead of low-priority ones ("a separate queue per priority level,
    always served first").  Between equal priorities, wound-wait applies.
    """

    name = "2PL+2PC(P)"

    def order_key(self, request: LockRequest) -> tuple:
        return (-request.priority, request.timestamp, request.txn_id)

    def victims(
        self,
        requester: LockRequest,
        blockers: Iterable[BlockerInfo],
        table: LockTable,
    ) -> List[str]:
        mine = _age(requester.timestamp, requester.txn_id)
        out = []
        for blocker in blockers:
            if (
                requester.priority > blocker.priority
                or mine < _age(blocker.timestamp, blocker.txn)
            ):
                out.append(blocker.txn)
        return out


class PreemptOnWaitPolicy(WoundWaitPolicy):
    """Preempt-on-wait (the paper's 2PL+2PC(POW), after McWherter et al.):
    a high-priority requester preempts a low-priority blocker only if
    that blocker is itself waiting for another lock (so preempting it
    cannot waste work that was about to finish)."""

    name = "2PL+2PC(POW)"

    def order_key(self, request: LockRequest) -> tuple:
        return (-request.priority, request.timestamp, request.txn_id)

    def victims(
        self,
        requester: LockRequest,
        blockers: Iterable[BlockerInfo],
        table: LockTable,
    ) -> List[str]:
        mine = _age(requester.timestamp, requester.txn_id)
        out = []
        for blocker in blockers:
            preempt = (
                requester.priority > blocker.priority
                and table.is_waiting(blocker.txn)
            )
            if preempt or mine < _age(blocker.timestamp, blocker.txn):
                out.append(blocker.txn)
        return out
