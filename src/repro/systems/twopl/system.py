"""The 2PL+2PC client protocol and system wiring.

Sequential structure, as the paper describes for Megastore/Spanner-
style systems: transaction processing (lock acquisition + reads), then
2PC (prepare with replication at every participant), then the
replicated commit decision at the coordinator — no overlap, which is
why this family starts around ~700 ms in Figure 7(a) while Carousel
Basic starts around ~370 ms.

A wound can only land during the read/lock phase; once the client sends
prepares it ignores wound events (wounding a prepared transaction would
stall 2PC), and the wounding requester simply waits.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.net.payload import (
    CommitRequest,
    LockRead,
    ReleaseLocks,
    TwoPLPrepare,
)
from repro.obs.abort import AbortReason
from repro.sim import Future, all_of, any_of
from repro.store.kv import KeyValueStore
from repro.systems.base import Cluster, TransactionSystem, attempt_id
from repro.systems.carousel.coordinator import CarouselCoordinator
from repro.systems.twopl.policy import WoundWaitPolicy
from repro.systems.twopl.server import TwoPLParticipant
from repro.raft.group import ReplicationGroup
from repro.txn.transaction import TransactionSpec


class TwoPL(TransactionSystem):
    """Spanner-like 2PL+2PC; pass a policy for the (P)/(POW) variants."""

    def __init__(self, policy: WoundWaitPolicy = None) -> None:
        self.policy = policy or WoundWaitPolicy()
        self.name = self.policy.name

    def setup(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.groups: Dict[int, ReplicationGroup] = {}
        self.leader_names: Dict[int, str] = {}
        for placement in cluster.placements:
            group = ReplicationGroup(
                cluster.sim,
                cluster.network,
                placement,
                config=cluster.config.raft,
                replica_factory=self._participant_factory,
            )
            self.groups[placement.partition_id] = group
            self.leader_names[placement.partition_id] = group.leader_name
        self.coordinators: Dict[str, ReplicationGroup] = {}
        for dc in cluster.topology.datacenters:
            self.coordinators[dc] = ReplicationGroup(
                cluster.sim,
                cluster.network,
                cluster.coordinator_placement(dc),
                config=cluster.config.raft,
                replica_factory=self._coordinator_factory,
            )

    def _participant_factory(self, sim, network, name, dc, **kwargs):
        kwargs["rng"] = self.cluster.streams.stream(f"raft.{name}")
        return TwoPLParticipant(
            sim,
            network,
            name,
            dc,
            store=KeyValueStore(),
            policy=self.policy,
            clock=self.cluster.make_clock(name),
            service_time=self.cluster.config.server_service_time,
            **kwargs,
        )

    def _coordinator_factory(self, sim, network, name, dc, **kwargs):
        kwargs["rng"] = self.cluster.streams.stream(f"raft.{name}")
        return CarouselCoordinator(
            sim,
            network,
            name,
            dc,
            partitioner=self.cluster.partitioner,
            leader_names=self.leader_names,
            clock=self.cluster.make_clock(name),
            service_time=self.cluster.config.server_service_time,
            **kwargs,
        )

    def coordinator_name(self, datacenter: str) -> str:
        return self.coordinators[datacenter].leader_name

    # ------------------------------------------------------------------

    def execute(self, client, spec: TransactionSpec, attempt: int) -> Generator:
        aid = attempt_id(spec, attempt)
        partitioner = self.cluster.partitioner
        participants = sorted(
            partitioner.participants(spec.read_keys, spec.write_keys)
        )
        coordinator = self.coordinator_name(client.datacenter)
        reads_by_pid = partitioner.group_keys(spec.read_keys)
        writes_by_pid = partitioner.group_keys(spec.write_keys)
        # Wound-wait age: stable across retries so a transaction ages
        # toward winning instead of starving.
        wound_ts = client.txn_start_times.get(spec.txn_id, client.sim.now)

        wounded = Future()
        decision = Future()

        def on_event(payload: dict, src: str) -> None:
            if payload["kind"] == "wound":
                client.note_abort(aid, AbortReason.PREEMPTED)
                wounded.try_set_result(True)
            elif payload["kind"] == "decision":
                if not payload["committed"]:
                    client.note_abort(aid, payload.get("reason"))
                decision.try_set_result(payload["committed"])

        client.register_attempt(aid, on_event)
        try:
            # ---- Phase 1: read locks + reads (wound can land here) ----
            read_calls = all_of(
                [
                    client.network.call(
                        client,
                        self.leader_names[pid],
                        "lock_read",
                        LockRead(
                            aid,
                            reads_by_pid.get(pid, []),
                            writes_by_pid.get(pid, []),
                            wound_ts,
                            int(spec.priority),
                            client.name,
                            coordinator,
                            participants,
                        ),
                    )
                    for pid in participants
                ]
            )
            outcome = yield any_of([read_calls, wounded])
            if wounded.done or (
                isinstance(outcome, list)
                and not all(r["ok"] for r in outcome)
            ):
                if not wounded.done and isinstance(outcome, list):
                    for reply in outcome:
                        if not reply["ok"]:
                            client.note_abort(aid, reply.get("reason"))
                            break
                self._release_everywhere(client, aid, participants)
                return False
            read_values: Dict[str, str] = {}
            for reply in outcome:
                read_values.update(reply["values"])

            writes = spec.make_writes(read_values)
            if writes is None:
                self._release_everywhere(client, aid, participants)
                return True  # voluntary abort after reads

            # ---- Phase 2: 2PC (wounds are ignored from here on) ----
            for pid in participants:
                client.network.send(
                    client,
                    self.leader_names[pid],
                    "twopl_prepare",
                    TwoPLPrepare(
                        aid,
                        {
                            key: writes[key]
                            for key in writes_by_pid.get(pid, [])
                            if key in writes
                        },
                        coordinator,
                        client.name,
                        participants,
                    ),
                )
            # Participants replicate the write data with their prepare
            # records; the coordinator replicates only its commit
            # decision, so the commit request carries no writes.
            client.network.send(
                client,
                coordinator,
                "commit_request",
                CommitRequest(aid, client.name, participants, {}),
            )
            committed = yield decision
            return bool(committed)
        finally:
            client.unregister_attempt(aid)

    def _release_everywhere(self, client, aid: str, participants) -> None:
        request = ReleaseLocks(aid)
        for pid in participants:
            client.network.send(
                client, self.leader_names[pid], "release_locks", request
            )
