"""The 2PL+2PC participant leader.

Handles the two phases the client drives:

* ``lock_read`` — acquire this partition's locks (shared for read-only
  keys, exclusive for write keys) through the lock table; the RPC reply
  is deferred until the locks are granted, then carries the read
  values.  While a request waits, the wounding policy is consulted for
  every blocker; wound verdicts are sent to the victim's client.
* ``twopl_prepare`` — the write data arrives, the prepare record (with
  the writes) is replicated, then a yes-vote goes to the coordinator.
* ``commit_txn`` — commit: replicate the commit record, then apply the
  writes stashed at prepare time and release the locks.  Abort: release
  immediately.

Followers stash writes when the ``prepare`` log entry applies and
install them when the ``commit`` entry applies, so all replicas
converge in log order.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.net.payload import ReadOk, Refusal, Vote, VoteReason, WoundEvent
from repro.net.probing import ProbeTargetMixin
from repro.obs.abort import AbortReason
from repro.raft.node import RaftReplica
from repro.sim import Future
from repro.store.kv import KeyValueStore
from repro.store.locks import LockMode, LockRequest, LockTable
from repro.systems.twopl.policy import BlockerInfo, WoundWaitPolicy
from repro.txn.priority import Priority


class TwoPLParticipant(ProbeTargetMixin, RaftReplica):
    """Leader (and follower) replica of one partition."""

    def __init__(self, *args: Any, store: Optional[KeyValueStore] = None,
                 policy: Optional[WoundWaitPolicy] = None, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.store = store if store is not None else KeyValueStore()
        self.policy = policy or WoundWaitPolicy()
        self.locks = LockTable(
            on_blocked=self._on_blocked, order_key=self.policy.order_key
        )
        #: txn -> {client, coordinator, reply future, ...}
        self.txn_meta: Dict[str, dict] = {}
        #: writes stashed at prepare, installed at commit (all replicas).
        self.pending_writes: Dict[str, Dict[str, str]] = {}
        self.wounds_sent = 0
        self._wounded: Set[str] = set()

    # ------------------------------------------------------------------
    # Phase 1: locks + reads

    def handle_lock_read(self, payload: dict, src: str) -> Future:
        txn = payload["txn"]
        reads = payload["reads"]
        writes = payload["writes"]
        key_modes = {key: LockMode.SHARED for key in reads}
        key_modes.update({key: LockMode.EXCLUSIVE for key in writes})
        reply: Future = Future()
        self.txn_meta[txn] = {
            "client": payload["client"],
            "coordinator": payload["coordinator"],
            "participants": payload["participants"],
            "timestamp": payload["ts"],
            "priority": Priority(payload["priority"]),
            "reads": reads,
            "reply": reply,
        }
        obs = self.sim.obs
        if obs.enabled:
            self.txn_meta[txn]["lock_span"] = obs.tracer.span(
                "lock_wait", node=self.name, txn=txn
            )
        request = LockRequest(
            txn_id=txn,
            key_modes=key_modes,
            timestamp=payload["ts"],
            priority=int(payload["priority"]),
        )
        request.future.add_done_callback(lambda _: self._locks_granted(txn))
        self.locks.request(request)
        return reply

    def _locks_granted(self, txn: str) -> None:
        meta = self.txn_meta.get(txn)
        if meta is None:
            return  # released (wounded) before the grant landed
        span = meta.pop("lock_span", None)
        if span is not None:
            span.finish()
        values = {key: self.store.read(key).value for key in meta["reads"]}
        if not meta["reply"].done:
            meta["reply"].set_result(ReadOk(values))

    # ------------------------------------------------------------------
    # Wounding

    def _on_blocked(self, txn: str, key: str, blockers: Set[str]) -> None:
        request = self.locks.request_of(txn)
        if request is None:
            return
        infos = []
        for blocker in blockers:
            meta = self.txn_meta.get(blocker)
            if meta is None or blocker in self._wounded:
                continue
            infos.append(
                BlockerInfo(blocker, meta["timestamp"], meta["priority"])
            )
        obs = self.sim.obs
        for victim in self.policy.victims(request, infos, self.locks):
            self._wounded.add(victim)
            self.wounds_sent += 1
            if obs.enabled:
                obs.metrics.counter("twopl.wounds").inc()
                obs.tracer.event(
                    "wound",
                    node=self.name,
                    txn=victim,
                    by=txn,
                    reason=str(AbortReason.PREEMPTED),
                )
            victim_meta = self.txn_meta[victim]
            self._network.send(
                self,
                victim_meta["client"],
                "txn_event",
                WoundEvent(victim, txn),
            )

    def handle_release_locks(self, payload: dict, src: str) -> None:
        """Victim client gave up this attempt; free everything here."""
        txn = payload["txn"]
        meta = self.txn_meta.pop(txn, None)
        if meta is not None:
            span = meta.pop("lock_span", None)
            if span is not None:
                span.set(outcome="released")
                span.finish()
            if not meta["reply"].done:
                meta["reply"].set_result(
                    Refusal(str(AbortReason.PREEMPTED))
                )
        self._wounded.discard(txn)
        self.pending_writes.pop(txn, None)
        self.locks.release(txn)

    # ------------------------------------------------------------------
    # Phase 2: 2PC

    def handle_twopl_prepare(self, payload: dict, src: str) -> None:
        txn = payload["txn"]
        meta = self.txn_meta.get(txn)
        if meta is None:
            # The transaction released (wound raced the prepare); tell
            # the coordinator no so the attempt aborts cleanly.
            obs = self.sim.obs
            if obs.enabled:
                obs.tracer.refuse(
                    AbortReason.PREEMPTED, node=self.name, txn=txn
                )
            self._network.send(
                self,
                payload["coordinator"],
                "vote",
                VoteReason(
                    txn,
                    self.group_partition_id(),
                    "no",
                    payload["participants"],
                    payload["client"],
                    str(AbortReason.PREEMPTED),
                ),
            )
            return
        meta["prepared"] = True
        self.propose(("prepare", txn, payload["writes"])).add_done_callback(
            lambda _: self._network.send(
                self,
                meta["coordinator"],
                "vote",
                Vote(
                    txn,
                    self.group_partition_id(),
                    "yes",
                    meta["participants"],
                    meta["client"],
                ),
            )
        )

    def group_partition_id(self) -> int:
        return int(self.name.split("-")[0][1:])

    def handle_commit_txn(self, payload: dict, src: str) -> None:
        txn = payload["txn"]
        if not payload["decision"]:
            self.handle_release_locks({"txn": txn}, src)
            return
        self.propose(("commit", txn)).add_done_callback(
            lambda _: self._finish_commit(txn)
        )

    def _finish_commit(self, txn: str) -> None:
        # Writes were installed by on_apply("commit"); drop bookkeeping.
        self.txn_meta.pop(txn, None)
        self._wounded.discard(txn)
        self.locks.release(txn)

    # ------------------------------------------------------------------
    # Replicated state machine

    def on_apply(self, payload: Any, index: int) -> None:
        kind = payload[0]
        if kind == "prepare":
            _, txn, writes = payload
            self.pending_writes[txn] = writes
        elif kind == "commit":
            _, txn = payload
            writes = self.pending_writes.pop(txn, {})
            self.store.apply_writes(writes, txn)
