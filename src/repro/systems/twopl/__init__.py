"""The Spanner-like 2PL+2PC baseline and its prioritization variants.

* :mod:`repro.systems.twopl.policy` — who gets wounded: wound-wait
  (plain), priority preemption (P), and preempt-on-wait (POW,
  McWherter et al.).
* :mod:`repro.systems.twopl.server` — the participant leader: lock
  acquisition with wait queues, prepare/commit replication, wound
  execution.
* :mod:`repro.systems.twopl.system` — the sequential client protocol:
  read locks + reads, then 2PC with prepare replication, then the
  replicated commit decision (the "sequential" structure that costs
  this family ~700 ms at low load in Figure 7(a)).
"""

from repro.systems.twopl.policy import (
    PreemptOnWaitPolicy,
    PreemptPolicy,
    WoundWaitPolicy,
)
from repro.systems.twopl.system import TwoPL

__all__ = [
    "PreemptOnWaitPolicy",
    "PreemptPolicy",
    "TwoPL",
    "WoundWaitPolicy",
]
