"""The client driver: open-loop load generation and the retry loop.

Clients are application servers co-located with the data servers in
each datacenter.  The driver implements the paper's measurement rules:

* **open loop** — new transactions arrive at a fixed rate regardless of
  completions (the "transaction input rate"); retried transactions are
  not counted as new arrivals;
* **immediate retry** — an aborted transaction is retried at once, with
  a fresh attempt id;
* **retry budget** — after 100 failed attempts the transaction is marked
  failed and its latency excluded;
* a committed transaction's latency covers first attempt through final
  commit.

The driver is also the client-side network endpoint: systems route
asynchronous per-transaction messages (wounds, priority aborts, late
read results, ...) through ``txn_event`` messages, dispatched to the
handler registered for the attempt.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.cluster.node import Node
from repro.net.network import Network
from repro.obs.abort import reason_value
from repro.sim import Simulator
from repro.txn.stats import StatsCollector, TxnOutcome, TxnRecord
from repro.txn.transaction import TransactionSpec


class ClientDriver(Node):
    """One client machine."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        datacenter: str,
        system: "TransactionSystem",  # noqa: F821 - avoid import cycle
        stats: StatsCollector,
        max_retries: int = 100,
        clock=None,
    ) -> None:
        super().__init__(sim, name, datacenter, clock=clock)
        self.network = network
        self.system = system
        self.stats = stats
        self.max_retries = max_retries
        self._event_handlers: Dict[str, Callable[[dict, str], None]] = {}
        self.txn_start_times: Dict[str, float] = {}
        #: attempt id -> first abort reason reported (see note_abort).
        self._abort_reasons: Dict[str, str] = {}
        self.inflight = 0
        network.register(self)
        system.on_client_created(self)

    # ------------------------------------------------------------------
    # Load generation

    def run_open_loop(
        self,
        workload: "Workload",  # noqa: F821 - structural typing (next_transaction)
        rate_per_second: float,
        until: float,
    ) -> None:
        """Submit new transactions at ``rate_per_second`` until ``until``.

        Interarrival times are exponential (Poisson arrivals), drawn
        from this client's own stream so clients are independent.  The
        stream is exclusive to this loop, so gaps are pulled from
        pre-filled standard-exponential blocks — ``exponential(scale)``
        is ``scale * standard_exponential()`` exactly.
        """
        from repro.sim import BatchedStandardExponential

        rng = self.sim_rng()
        mean_gap = 1.0 / rate_per_second
        sim = self.sim
        post = sim.post
        next_gap = BatchedStandardExponential(rng).next
        next_transaction = workload.next_transaction
        submit = self.submit
        name = self.name

        def _tick() -> None:
            if sim._now >= until:
                return
            submit(next_transaction(name))
            post(next_gap() * mean_gap, _tick)

        post(next_gap() * mean_gap, _tick)

    def sim_rng(self):
        # Late import to avoid widening the constructor signature; each
        # client derives its stream from its name.
        from repro.sim import RandomStreams

        if not hasattr(self, "_rng"):
            self._rng = RandomStreams(0).stream(f"client.{self.name}")
        return self._rng

    def use_streams(self, streams) -> None:
        """Adopt the cluster's stream family (called by the harness)."""
        self._rng = streams.stream(f"client.{self.name}")

    # ------------------------------------------------------------------
    # Transaction lifecycle

    def submit(self, spec: TransactionSpec) -> "Process":  # noqa: F821
        """Run one logical transaction to completion (with retries)."""
        return self.sim.spawn(self._run(spec))

    def _run(self, spec: TransactionSpec) -> Generator:
        from repro.systems.base import attempt_id

        start = self.sim.now
        self.inflight += 1
        # Systems that need a retry-stable age (wound-wait) read this.
        self.txn_start_times[spec.txn_id] = start
        obs = self.sim.obs
        root = None
        if obs.enabled:
            root = obs.tracer.span(
                "txn",
                node=self.name,
                txn=spec.txn_id,
                priority=spec.priority.name,
                txn_type=spec.txn_type,
            )
        attempt = 0
        committed = False
        abort_reasons = []
        while True:
            aid = attempt_id(spec, attempt)
            attempt_span = None
            if obs.enabled:
                attempt_span = obs.tracer.span(
                    "attempt", node=self.name, txn=aid, parent=root
                )
            committed = yield from self.system.execute(self, spec, attempt)
            reason = self._abort_reasons.pop(aid, None)
            if attempt_span is not None:
                attempt_span.set(committed=committed)
                attempt_span.finish()
            if not committed:
                # The client is the single authority for attempt-level
                # abort accounting: one reason per failed attempt,
                # UNKNOWN when no site classified it.
                abort_reasons.append(reason_value(reason))
                if obs.enabled:
                    obs.tracer.abort(reason, node=self.name, txn=aid)
            if committed or attempt >= self.max_retries:
                break
            attempt += 1
        self.txn_start_times.pop(spec.txn_id, None)
        self.inflight -= 1
        if root is not None:
            root.set(
                outcome="committed" if committed else "failed",
                retries=attempt,
            )
            root.finish()
        self.stats.add(
            TxnRecord(
                txn_id=spec.txn_id,
                priority=spec.priority,
                txn_type=spec.txn_type,
                start=start,
                end=self.sim.now,
                retries=attempt,
                outcome=(
                    TxnOutcome.COMMITTED if committed else TxnOutcome.FAILED
                ),
                abort_reasons=tuple(abort_reasons),
            )
        )
        return committed

    def note_abort(self, attempt_id: str, reason) -> None:
        """Record why an attempt aborted; the first reported cause wins.

        Systems call this from wherever they learn the reason (a refusal
        reply, a no-vote-driven decision event, a wound).  The driver
        consumes the entry when the attempt finishes.
        """
        if reason is not None and attempt_id not in self._abort_reasons:
            self._abort_reasons[attempt_id] = reason_value(reason)

    # ------------------------------------------------------------------
    # Asynchronous per-attempt events

    def register_attempt(
        self, attempt_id: str, handler: Callable[[dict, str], None]
    ) -> None:
        self._event_handlers[attempt_id] = handler

    def unregister_attempt(self, attempt_id: str) -> None:
        self._event_handlers.pop(attempt_id, None)

    def handle_txn_event(self, payload: dict, src: str) -> None:
        handler = self._event_handlers.get(payload.get("txn"))
        if handler is not None:
            handler(payload, src)
