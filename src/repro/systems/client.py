"""The client driver: open-loop load generation and the retry loop.

Clients are application servers co-located with the data servers in
each datacenter.  The driver implements the paper's measurement rules:

* **open loop** — new transactions arrive at a fixed rate regardless of
  completions (the "transaction input rate"); retried transactions are
  not counted as new arrivals;
* **immediate retry** — an aborted transaction is retried at once, with
  a fresh attempt id;
* **retry budget** — after 100 failed attempts the transaction is marked
  failed and its latency excluded;
* a committed transaction's latency covers first attempt through final
  commit.

The driver is also the client-side network endpoint: systems route
asynchronous per-transaction messages (wounds, priority aborts, late
read results, ...) through ``txn_event`` messages, dispatched to the
handler registered for the attempt.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.cluster.node import Node
from repro.net.network import Network
from repro.sim import Simulator
from repro.txn.stats import StatsCollector, TxnOutcome, TxnRecord
from repro.txn.transaction import TransactionSpec


class ClientDriver(Node):
    """One client machine."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        datacenter: str,
        system: "TransactionSystem",  # noqa: F821 - avoid import cycle
        stats: StatsCollector,
        max_retries: int = 100,
        clock=None,
    ) -> None:
        super().__init__(sim, name, datacenter, clock=clock)
        self.network = network
        self.system = system
        self.stats = stats
        self.max_retries = max_retries
        self._event_handlers: Dict[str, Callable[[dict, str], None]] = {}
        self.txn_start_times: Dict[str, float] = {}
        self.inflight = 0
        network.register(self)
        system.on_client_created(self)

    # ------------------------------------------------------------------
    # Load generation

    def run_open_loop(
        self,
        workload: "Workload",  # noqa: F821 - structural typing (next_transaction)
        rate_per_second: float,
        until: float,
    ) -> None:
        """Submit new transactions at ``rate_per_second`` until ``until``.

        Interarrival times are exponential (Poisson arrivals), drawn
        from this client's own stream so clients are independent.
        """
        rng = self.sim_rng()
        mean_gap = 1.0 / rate_per_second

        def _tick() -> None:
            if self.sim.now >= until:
                return
            self.submit(workload.next_transaction(self.name))
            self.sim.schedule(float(rng.exponential(mean_gap)), _tick)

        self.sim.schedule(float(rng.exponential(mean_gap)), _tick)

    def sim_rng(self):
        # Late import to avoid widening the constructor signature; each
        # client derives its stream from its name.
        from repro.sim import RandomStreams

        if not hasattr(self, "_rng"):
            self._rng = RandomStreams(0).stream(f"client.{self.name}")
        return self._rng

    def use_streams(self, streams) -> None:
        """Adopt the cluster's stream family (called by the harness)."""
        self._rng = streams.stream(f"client.{self.name}")

    # ------------------------------------------------------------------
    # Transaction lifecycle

    def submit(self, spec: TransactionSpec) -> "Process":  # noqa: F821
        """Run one logical transaction to completion (with retries)."""
        return self.sim.spawn(self._run(spec))

    def _run(self, spec: TransactionSpec) -> Generator:
        start = self.sim.now
        self.inflight += 1
        # Systems that need a retry-stable age (wound-wait) read this.
        self.txn_start_times[spec.txn_id] = start
        attempt = 0
        committed = False
        while True:
            committed = yield from self.system.execute(self, spec, attempt)
            if committed or attempt >= self.max_retries:
                break
            attempt += 1
        self.txn_start_times.pop(spec.txn_id, None)
        self.inflight -= 1
        self.stats.add(
            TxnRecord(
                txn_id=spec.txn_id,
                priority=spec.priority,
                txn_type=spec.txn_type,
                start=start,
                end=self.sim.now,
                retries=attempt,
                outcome=(
                    TxnOutcome.COMMITTED if committed else TxnOutcome.FAILED
                ),
            )
        )
        return committed

    # ------------------------------------------------------------------
    # Asynchronous per-attempt events

    def register_attempt(
        self, attempt_id: str, handler: Callable[[dict, str], None]
    ) -> None:
        self._event_handlers[attempt_id] = handler

    def unregister_attempt(self, attempt_id: str) -> None:
        self._event_handlers.pop(attempt_id, None)

    def handle_txn_event(self, payload: dict, src: str) -> None:
        handler = self._event_handlers.get(payload.get("txn"))
        if handler is not None:
            handler(payload, src)
