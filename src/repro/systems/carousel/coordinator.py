"""The 2PC coordinator, co-located with the client's datacenter.

In Carousel the coordinator is the leader of its own replica group, so
a transaction's write data and commit decision are fault-tolerant
before the client is told "committed".  The coordinator:

* receives the client's write data + commit request, replicates the
  write data to its followers;
* collects per-participant votes (any *no* aborts immediately);
* decides once every participant voted yes **and** the write data is
  replicated;
* notifies the client and asynchronously fans out ``commit_txn`` (with
  each participant's slice of the write data) to participant leaders.

Natto's coordinator subclass extends the vote state machine with
conditional votes and serves RECSF read forwards; the hook points here
(``_vote_ready``, ``_on_decided``) exist for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.partition import Partitioner
from repro.net.payload import (
    CommitTxn,
    CommitTxnReason,
    DecisionEvent,
    DecisionEventReason,
)
from repro.net.probing import ProbeTargetMixin
from repro.obs.abort import AbortReason, reason_value
from repro.raft.node import RaftReplica


@dataclass
class CoordinatedTxn:
    """Coordinator-side state of one transaction attempt."""

    txn: str
    client: Optional[str] = None
    participants: Optional[List[int]] = None
    votes: Dict[int, str] = field(default_factory=dict)
    writes: Optional[Dict[str, str]] = None
    writes_replicated: bool = False
    skip_prepare_wait: bool = False  # Carousel Fast's unanimous fast path
    decided: Optional[bool] = None
    #: Why the abort decision was taken (AbortReason value), if aborted.
    abort_reason: Optional[str] = None


class CarouselCoordinator(ProbeTargetMixin, RaftReplica):
    """Leader (and follower) replica of one per-datacenter coordinator
    group."""

    def __init__(
        self,
        *args: Any,
        partitioner: Optional[Partitioner] = None,
        leader_names: Optional[Dict[int, str]] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.partitioner = partitioner
        self.leader_names = leader_names or {}
        self.txns: Dict[str, CoordinatedTxn] = {}

    def txn_state(self, txn: str) -> CoordinatedTxn:
        state = self.txns.get(txn)
        if state is None:
            state = CoordinatedTxn(txn)
            self.txns[txn] = state
        return state

    # ------------------------------------------------------------------
    # Client messages

    def handle_commit_request(self, payload: dict, src: str) -> None:
        state = self.txn_state(payload["txn"])
        state.client = payload["client"]
        state.participants = payload["participants"]
        state.writes = payload["writes"]
        state.skip_prepare_wait = payload.get("fast_path", False)
        if state.decided is not None:
            # Already aborted by an early no-vote; the client has been
            # (or is being) notified via the decision event.
            return
        self.propose(("writedata", state.txn, state.writes)).add_done_callback(
            lambda _: self._writes_durable(state)
        )

    def handle_abort_request(self, payload: dict, src: str) -> None:
        """Client-initiated abort (2FI permits aborting after reads)."""
        state = self.txn_state(payload["txn"])
        state.client = payload["client"]
        state.participants = payload["participants"]
        if state.decided is None:
            state.abort_reason = str(AbortReason.VOLUNTARY)
            self._decide(state, False)

    def _writes_durable(self, state: CoordinatedTxn) -> None:
        state.writes_replicated = True
        self._try_decide(state)

    # ------------------------------------------------------------------
    # Participant votes

    def handle_vote(self, payload: dict, src: str) -> None:
        state = self.txn_state(payload["txn"])
        if state.client is None:
            state.client = payload["client"]
        if state.participants is None:
            state.participants = payload["participants"]
        if state.decided is not None:
            return
        if payload["vote"] == "no":
            state.abort_reason = payload.get("reason")
            self._decide(state, False)
            return
        state.votes[payload["partition"]] = "yes"
        self._try_decide(state)

    def _vote_ready(self, state: CoordinatedTxn, partition: int) -> bool:
        """Is this participant's vote final and positive?  (Natto's
        conditional prepare overrides this.)"""
        return state.votes.get(partition) == "yes"

    def _try_decide(self, state: CoordinatedTxn) -> None:
        if state.decided is not None or state.writes is None:
            return
        if not state.writes_replicated:
            return
        if not state.skip_prepare_wait:
            assert state.participants is not None
            if not all(
                self._vote_ready(state, pid) for pid in state.participants
            ):
                return
        self._decide(state, True)

    # ------------------------------------------------------------------
    # Decision fan-out

    def _decide(self, state: CoordinatedTxn, committed: bool) -> None:
        state.decided = committed
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter("coord.decisions").inc(
                committed=committed, node=self.name
            )
            if not committed:
                obs.tracer.event(
                    "decision_abort",
                    node=self.name,
                    txn=state.txn,
                    reason=reason_value(state.abort_reason),
                )
        reason = state.abort_reason
        if state.client is not None:
            if not committed and reason is not None:
                event = DecisionEventReason(state.txn, committed, reason)
            else:
                event = DecisionEvent(state.txn, committed)
            self._network.send(self, state.client, "txn_event", event)
        writes = state.writes or {}
        by_partition = (
            self.partitioner.group_keys(writes) if self.partitioner else {}
        )
        if committed:
            for pid in state.participants or []:
                slice_writes = {
                    key: writes[key] for key in by_partition.get(pid, [])
                }
                self._network.send(
                    self,
                    self.leader_names[pid],
                    "commit_txn",
                    CommitTxn(state.txn, True, slice_writes),
                )
        else:
            # Abort outcomes are identical per participant: one payload
            # object serves the whole fan-out.
            outcome = (
                CommitTxnReason(state.txn, False, None, reason)
                if reason is not None
                else CommitTxn(state.txn, False, None)
            )
            for pid in state.participants or []:
                self._network.send(
                    self, self.leader_names[pid], "commit_txn", outcome
                )
        self._on_decided(state)

    def _on_decided(self, state: CoordinatedTxn) -> None:
        """Hook for subclasses (Natto serves queued RECSF reads here)."""
