"""The Carousel participant leader.

Implements the server side of Carousel Basic's read-and-prepare
(Figure 1 of the Natto paper):

* on ``read_and_prepare``: OCC-check the transaction's pre-declared
  read/write key sets against the prepared set; on success, serve reads
  from the committed store, mark the transaction prepared, replicate the
  prepare record to the followers and — once replication completes —
  vote *yes* to the transaction's coordinator.  On conflict, reply
  failure to the client and vote *no*;
* on ``commit_txn`` (commit): replicate the write data, then apply it
  and release the prepared marks — a transaction's updates only become
  visible after the participant leader replicates them (the behaviour
  Natto's ECSF later relaxes);
* on ``commit_txn`` (abort): release the prepared marks immediately.

All replicas (leader and followers) apply committed ``writes`` log
entries to their local stores in log order, so follower state converges
to the leader's — asserted by the integration tests.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.payload import ReadOk, Refusal, VoteReason
from repro.net.probing import ProbeTargetMixin
from repro.obs.abort import AbortReason, reason_value
from repro.raft.node import RaftReplica
from repro.store.kv import KeyValueStore
from repro.store.occ import PreparedSet


class CarouselParticipant(ProbeTargetMixin, RaftReplica):
    """Leader (and follower) replica of one data partition."""

    def __init__(self, *args: Any, store: Optional[KeyValueStore] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.store = store if store is not None else KeyValueStore()
        self.prepared = PreparedSet()
        #: attempt id -> metadata for transactions prepared here.
        self.txn_meta: Dict[str, dict] = {}
        # An abort decision travels coordinator->participant while the
        # read-and-prepare travels client->participant; with network
        # jitter the abort can win the race.  Tombstones refuse a
        # request that arrives after its own abort, remembering why the
        # transaction was aborted so the refusal stays classified.
        self._abort_tombstones: Dict[str, Optional[str]] = {}
        self._rap_seen: set = set()
        # Counters for tests and reports.
        self.prepares_ok = 0
        self.prepares_refused = 0

    # ------------------------------------------------------------------
    # Read-and-prepare (round 1)

    def handle_read_and_prepare(self, payload: dict, src: str) -> dict:
        txn = payload["txn"]
        if txn in self._abort_tombstones:
            reason = self._abort_tombstones.pop(txn)
            return self._refusal(txn, reason)
        self._rap_seen.add(txn)
        reads = payload["reads"]
        writes = payload["writes"]
        if not self.prepared.is_free(reads, writes):
            self.prepares_refused += 1
            self._vote(payload, "no", reason=AbortReason.OCC_CONFLICT)
            return self._refusal(txn, AbortReason.OCC_CONFLICT)
        self.prepares_ok += 1
        self.prepared.add(txn, reads, writes)
        self.txn_meta[txn] = {
            "coordinator": payload["coordinator"],
            "client": payload["client"],
            "participants": payload["participants"],
        }
        values = {key: self.store.read(key).value for key in reads}
        self.propose(("prepare", txn)).add_done_callback(
            lambda _: self._vote(payload, "yes")
        )
        return ReadOk(values)

    def _refusal(self, txn: str, reason) -> Refusal:
        """A classified ``ok: False`` reply (plus trace bookkeeping)."""
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.refuse(reason, node=self.name, txn=txn)
        return Refusal(reason_value(reason))

    def _vote(self, payload, vote: str, reason=None) -> None:
        self._network.send(
            self,
            payload["coordinator"],
            "vote",
            VoteReason(
                payload["txn"],
                self.group_partition_id(),
                vote,
                payload["participants"],
                payload["client"],
                reason_value(reason) if reason is not None else None,
            ),
        )

    def group_partition_id(self) -> int:
        # Names are "p<pid>-<DC>"; see ReplicationGroup.replica_name.
        return int(self.name.split("-")[0][1:])

    # ------------------------------------------------------------------
    # Commit / abort (2PC outcome)

    def handle_commit_txn(self, payload: dict, src: str) -> None:
        txn = payload["txn"]
        if not payload["decision"]:
            if txn not in self.prepared and txn not in self._rap_seen:
                self._abort_tombstones[txn] = payload.get("reason")
            self.release(txn)
            return
        writes = payload.get("writes") or {}
        if txn not in self.prepared:
            # Commit for a transaction we never prepared (we voted no in
            # a race the coordinator lost) cannot happen: the coordinator
            # only commits with a yes vote from every participant.
            raise AssertionError(f"commit for unprepared transaction {txn}")
        self.propose(("writes", txn, writes)).add_done_callback(
            lambda _: self.release(txn)
        )

    def release(self, txn: str) -> None:
        """Drop prepared marks; hook point for Natto's waiter wake-up."""
        self.prepared.remove(txn)
        self.txn_meta.pop(txn, None)
        self._rap_seen.discard(txn)

    # ------------------------------------------------------------------
    # Replicated state machine

    def on_apply(self, payload: Any, index: int) -> None:
        kind = payload[0]
        if kind == "writes":
            _, txn, writes = payload
            self.store.apply_writes(writes, txn)
        # "prepare" entries carry no state-machine effect (they exist for
        # recovery, which the paper's prototypes do not exercise).
