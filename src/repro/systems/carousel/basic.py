"""Carousel Basic: the client protocol and system wiring.

The happy path, exactly as in Figure 1 of the Natto paper:

1. the client fans read-and-prepare requests out to every participant
   leader (transaction processing, 2PC and replication start in
   parallel from here);
2. leaders reply with read results and independently replicate their
   prepare records, then vote to the coordinator;
3. the client computes write values from the reads and sends them with
   a commit request to its co-located coordinator;
4. the coordinator replicates the write data, waits for every vote, and
   commits; participants learn the outcome asynchronously, replicate
   the write data, apply and release.

Any OCC conflict at any participant aborts the attempt; the client
driver retries immediately with a fresh attempt id.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.net.payload import (
    AbortRequest,
    CarouselReadAndPrepare,
    CommitRequest,
)
from repro.sim import Future, all_of
from repro.store.kv import KeyValueStore
from repro.systems.base import Cluster, TransactionSystem, attempt_id
from repro.systems.carousel.coordinator import CarouselCoordinator
from repro.systems.carousel.server import CarouselParticipant
from repro.raft.group import ReplicationGroup
from repro.txn.transaction import TransactionSpec


class CarouselBasic(TransactionSystem):
    """The baseline Natto builds on."""

    name = "Carousel Basic"
    participant_class = CarouselParticipant
    coordinator_class = CarouselCoordinator

    def setup(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.groups: Dict[int, ReplicationGroup] = {}
        self.leader_names: Dict[int, str] = {}
        for placement in cluster.placements:
            group = ReplicationGroup(
                cluster.sim,
                cluster.network,
                placement,
                config=cluster.config.raft,
                replica_factory=self._participant_factory,
            )
            self.groups[placement.partition_id] = group
            self.leader_names[placement.partition_id] = group.leader_name
        self.coordinators: Dict[str, ReplicationGroup] = {}
        for dc in cluster.topology.datacenters:
            group = ReplicationGroup(
                cluster.sim,
                cluster.network,
                cluster.coordinator_placement(dc),
                config=cluster.config.raft,
                replica_factory=self._coordinator_factory,
            )
            self.coordinators[dc] = group
        self.after_setup()

    def after_setup(self) -> None:
        """Hook for subclasses (Natto starts its probe proxies here)."""

    # ------------------------------------------------------------------
    # Node factories (per-replica clocks, stores and CPU models)

    def _participant_factory(self, sim, network, name, dc, **kwargs):
        kwargs["rng"] = self.cluster.streams.stream(f"raft.{name}")
        return self.participant_class(
            sim,
            network,
            name,
            dc,
            store=KeyValueStore(),
            clock=self.cluster.make_clock(name),
            service_time=self.cluster.config.server_service_time,
            **kwargs,
        )

    def _coordinator_factory(self, sim, network, name, dc, **kwargs):
        kwargs["rng"] = self.cluster.streams.stream(f"raft.{name}")
        return self.coordinator_class(
            sim,
            network,
            name,
            dc,
            partitioner=self.cluster.partitioner,
            leader_names=self.leader_names,
            clock=self.cluster.make_clock(name),
            service_time=self.cluster.config.server_service_time,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Addressing

    def coordinator_name(self, datacenter: str) -> str:
        return self.coordinators[datacenter].leader_name

    def participant_ids(self, spec: TransactionSpec) -> List[int]:
        return sorted(
            self.cluster.partitioner.participants(
                spec.read_keys, spec.write_keys
            )
        )

    # ------------------------------------------------------------------
    # Client protocol

    def execute(self, client, spec: TransactionSpec, attempt: int) -> Generator:
        aid = attempt_id(spec, attempt)
        participants = self.participant_ids(spec)
        coordinator = self.coordinator_name(client.datacenter)
        reads_by_pid = self.cluster.partitioner.group_keys(spec.read_keys)
        writes_by_pid = self.cluster.partitioner.group_keys(spec.write_keys)

        decision = Future()

        def on_event(payload: dict, src: str) -> None:
            if payload["kind"] != "decision":
                return
            if not payload["committed"]:
                client.note_abort(aid, payload.get("reason"))
            decision.try_set_result(payload["committed"])

        client.register_attempt(aid, on_event)
        try:
            replies = yield all_of(
                [
                    client.network.call(
                        client,
                        self.leader_names[pid],
                        "read_and_prepare",
                        CarouselReadAndPrepare(
                            aid,
                            reads_by_pid.get(pid, []),
                            writes_by_pid.get(pid, []),
                            coordinator,
                            client.name,
                            participants,
                        ),
                    )
                    for pid in participants
                ]
            )
            if not all(reply["ok"] for reply in replies):
                # Some participant refused to prepare; its no-vote drives
                # the coordinator's abort + cleanup.  Retry immediately.
                for reply in replies:
                    if not reply["ok"]:
                        client.note_abort(aid, reply.get("reason"))
                        break
                return False
            read_results: Dict[str, str] = {}
            for reply in replies:
                read_results.update(reply["values"])
            writes = spec.make_writes(read_results)
            if writes is None:
                client.network.send(
                    client,
                    coordinator,
                    "abort_request",
                    AbortRequest(aid, client.name, participants),
                )
                yield decision
                return True  # voluntary abort: the transaction completed
            client.network.send(
                client,
                coordinator,
                "commit_request",
                CommitRequest(aid, client.name, participants, writes),
            )
            committed = yield decision
            return bool(committed)
        finally:
            client.unregister_attempt(aid)
