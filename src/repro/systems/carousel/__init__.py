"""Carousel (Yan et al., SIGMOD 2018): the system Natto builds on.

* :mod:`repro.systems.carousel.server` — the participant leader:
  read-and-prepare with OCC over the pre-declared 2FI key sets, prepare
  replication, commit/abort handling.
* :mod:`repro.systems.carousel.coordinator` — the per-datacenter 2PC
  coordinator (itself the leader of a replica group); replicates write
  data, collects votes, decides, and fans out commit messages.
* :mod:`repro.systems.carousel.basic` — Carousel Basic (Figure 1 of the
  Natto paper): transaction processing overlapped with 2PC and
  replication, two WAN round trips on the happy path.
* :mod:`repro.systems.carousel.fast` — Carousel Fast: read-and-prepare
  fanned out to every replica; unanimous replica votes commit on a fast
  path that skips the prepare-replication leg.
"""

from repro.systems.carousel.basic import CarouselBasic
from repro.systems.carousel.coordinator import CarouselCoordinator
from repro.systems.carousel.fast import CarouselFast
from repro.systems.carousel.server import CarouselParticipant

__all__ = [
    "CarouselBasic",
    "CarouselCoordinator",
    "CarouselFast",
    "CarouselParticipant",
]
