"""Carousel Fast: read-and-prepare fanned out to every replica.

Fast path: the client sends read-and-prepare to **all** replicas of each
participant partition.  If every replica of every partition votes yes,
the prepare is already durable on every replica, so the coordinator can
commit as soon as the write data is replicated — skipping the
prepare-replication + vote leg of Carousel Basic.

Fallback: on mixed votes, the leader's vote decides (leaders always run
the full Basic behaviour — prepare, replicate, vote — so no extra round
is needed); if any leader refuses, the attempt aborts and retries.

Why Fast degrades under contention (the effect the paper leans on):
follower replicas hold their prepared marks until the committed writes
*apply* on them — one replication leg later than the leader releases —
so at high contention followers refuse transactions the leader would
accept, pushing the system off the fast path and up the abort rate.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.net.payload import (
    AbortRequest,
    CarouselReadAndPrepare,
    FastCommitRequest,
    FastOutcome,
    ReadOk,
)
from repro.obs.abort import AbortReason
from repro.sim import Future, all_of
from repro.systems.base import attempt_id
from repro.systems.carousel.basic import CarouselBasic
from repro.systems.carousel.coordinator import CarouselCoordinator, CoordinatedTxn
from repro.systems.carousel.server import CarouselParticipant
from repro.txn.transaction import TransactionSpec


class FastParticipant(CarouselParticipant):
    """Adds the replica-side (follower) fast-path vote.

    Abort notifications and read-and-prepare requests travel different
    network paths, so an abort can overtake the request it cancels
    (e.g. when the partition leader is co-located with the client the
    no-vote detour is shorter than a jittery direct hop).  Tombstones
    make the cancellation order-independent: a request arriving after
    its own abort is refused instead of leaving a stuck prepared mark.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._fast_tombstones: set = set()
        self._replica_seen: set = set()

    def handle_read_and_prepare_replica(self, payload: dict, src: str) -> dict:
        """Follower vote: OCC over the follower's own (lagging) state."""
        txn = payload["txn"]
        if txn in self._fast_tombstones:
            self._fast_tombstones.discard(txn)
            return self._refusal(txn, AbortReason.PREEMPTED)
        self._replica_seen.add(txn)
        reads = payload["reads"]
        writes = payload["writes"]
        if not self.prepared.is_free(reads, writes):
            self.prepares_refused += 1
            return self._refusal(txn, AbortReason.OCC_CONFLICT)
        self.prepares_ok += 1
        self.prepared.add(txn, reads, writes)
        values = {key: self.store.read(key).value for key in reads}
        return ReadOk(values)

    def handle_fast_outcome(self, payload: dict, src: str) -> None:
        """Abort notification for follower-held prepared marks."""
        if payload["decision"]:
            return
        txn = payload["txn"]
        if txn in self.prepared:
            self.release(txn)
        elif txn not in self._replica_seen:
            # The abort overtook the request; refuse it on arrival.
            self._fast_tombstones.add(txn)
        self._replica_seen.discard(txn)

    def on_apply(self, payload: Any, index: int) -> None:
        super().on_apply(payload, index)
        if payload[0] == "writes":
            # A committed transaction's follower-side prepared marks are
            # held until its writes apply here (the staleness window).
            self.release(payload[1])
            self._replica_seen.discard(payload[1])


class FastCoordinator(CarouselCoordinator):
    """Also clears follower prepared marks on abort."""

    def __init__(self, *args: Any,
                 replica_names: Dict[int, List[str]] = None, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.replica_names = replica_names or {}

    def _decide(self, state: CoordinatedTxn, committed: bool) -> None:
        super()._decide(state, committed)
        if committed:
            return  # followers release when the writes entry applies
        outcome = FastOutcome(state.txn, False)
        for pid in state.participants or []:
            leader = self.leader_names[pid]
            for replica in self.replica_names.get(pid, []):
                if replica != leader:
                    self._network.send(self, replica, "fast_outcome", outcome)


class CarouselFast(CarouselBasic):
    """Carousel's fast protocol."""

    name = "Carousel Fast"
    participant_class = FastParticipant
    coordinator_class = FastCoordinator

    def _coordinator_factory(self, sim, network, name, dc, **kwargs):
        kwargs["rng"] = self.cluster.streams.stream(f"raft.{name}")
        return self.coordinator_class(
            sim,
            network,
            name,
            dc,
            partitioner=self.cluster.partitioner,
            leader_names=self.leader_names,
            replica_names={
                pid: group.replica_names for pid, group in self.groups.items()
            },
            clock=self.cluster.make_clock(name),
            service_time=self.cluster.config.server_service_time,
            **kwargs,
        )

    def execute(self, client, spec: TransactionSpec, attempt: int) -> Generator:
        aid = attempt_id(spec, attempt)
        participants = self.participant_ids(spec)
        coordinator = self.coordinator_name(client.datacenter)
        reads_by_pid = self.cluster.partitioner.group_keys(spec.read_keys)
        writes_by_pid = self.cluster.partitioner.group_keys(spec.write_keys)

        decision = Future()

        def on_event(payload: dict, src: str) -> None:
            if payload["kind"] != "decision":
                return
            if not payload["committed"]:
                client.note_abort(aid, payload.get("reason"))
            decision.try_set_result(payload["committed"])

        client.register_attempt(aid, on_event)
        try:
            calls = []
            call_meta = []  # (partition, is_leader)
            for pid in participants:
                body = CarouselReadAndPrepare(
                    aid,
                    reads_by_pid.get(pid, []),
                    writes_by_pid.get(pid, []),
                    coordinator,
                    client.name,
                    participants,
                )
                group = self.groups[pid]
                for replica in group.replica_names:
                    is_leader = replica == group.leader_name
                    method = (
                        "read_and_prepare"
                        if is_leader
                        else "read_and_prepare_replica"
                    )
                    calls.append(
                        client.network.call(client, replica, method, body)
                    )
                    call_meta.append((pid, is_leader))
            replies = yield all_of(calls)

            leader_ok = {}
            leader_values: Dict[str, str] = {}
            unanimous = True
            for (pid, is_leader), reply in zip(call_meta, replies):
                if not reply["ok"]:
                    unanimous = False
                if is_leader:
                    leader_ok[pid] = reply["ok"]
                    if reply["ok"]:
                        leader_values.update(reply["values"])
            if not all(leader_ok.values()):
                # A leader refused: abort (its no-vote triggers cleanup);
                # follower marks are cleared by the coordinator's
                # fast_outcome fan-out when it decides the abort.
                for (pid, is_leader), reply in zip(call_meta, replies):
                    if is_leader and not reply["ok"]:
                        client.note_abort(aid, reply.get("reason"))
                        break
                return False
            writes = spec.make_writes(leader_values)
            if writes is None:
                client.network.send(
                    client,
                    coordinator,
                    "abort_request",
                    AbortRequest(aid, client.name, participants),
                )
                yield decision
                return True
            client.network.send(
                client,
                coordinator,
                "commit_request",
                FastCommitRequest(
                    aid, client.name, participants, writes, unanimous
                ),
            )
            committed = yield decision
            return bool(committed)
        finally:
            client.unregister_attempt(aid)
