"""The trace-inspection CLI behind ``python -m repro.trace``.

Subcommands (all consume the JSONL traces the harness exports):

* ``summary TRACE [TRACE...]`` — run metadata, transaction outcome
  counts, top abort reasons per system and priority, and a per-phase
  latency breakdown (one row per span name: count / mean / p95 ms);
* ``critical-path TRACE --txn ID`` — everything recorded for one
  logical transaction, as a chronological tree, plus the extracted
  critical path (the backward chain of spans that covers the
  transaction's duration);
* ``chrome TRACE -o OUT.json`` — convert JSONL to Chrome
  ``trace_event`` format for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter, defaultdict
from typing import Dict, List, Optional

from repro.obs.export import chrome_trace_from_records, read_jsonl


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"


def _percentile(values: List[float], q: float) -> float:
    values = sorted(values)
    if not values:
        return float("nan")
    rank = (q / 100.0) * (len(values) - 1)
    low = int(rank)
    high = min(low + 1, len(values) - 1)
    frac = rank - low
    return values[low] * (1.0 - frac) + values[high] * frac


def _root_txn(txn: Optional[str]) -> str:
    if not txn:
        return ""
    head, _, tail = txn.rpartition(".")
    return head if head and tail.isdigit() else txn


class TraceFile:
    """One parsed JSONL trace, indexed the ways the subcommands need."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.records = read_jsonl(path)
        self.meta: dict = {}
        self.spans: List[dict] = []
        self.events: List[dict] = []
        for record in self.records:
            kind = record.get("type")
            if kind == "meta":
                self.meta.update(
                    {k: v for k, v in record.items() if k != "type"}
                )
            elif kind == "span":
                self.spans.append(record)
            elif kind == "event":
                self.events.append(record)
        #: logical txn id -> root "txn" span
        self.roots: Dict[str, dict] = {
            s["txn"]: s
            for s in self.spans
            if s["name"] == "txn" and s.get("txn")
        }

    @property
    def system(self) -> str:
        return str(self.meta.get("system", self.path))

    def priority_of(self, txn: Optional[str]) -> str:
        root = self.roots.get(_root_txn(txn))
        if root is None:
            return "?"
        return str((root.get("attrs") or {}).get("priority", "?"))

    def family(self, txn_id: str) -> List[dict]:
        """All spans/events belonging to one logical transaction."""
        out = []
        for record in self.spans + self.events:
            if _root_txn(record.get("txn")) == txn_id:
                out.append(record)
        return out


# ----------------------------------------------------------------------
# summary


def _span_duration(span: dict) -> float:
    end = span.get("end")
    return (end - span["start"]) if end is not None else 0.0


def summarize(trace: TraceFile, out) -> None:
    print(f"== {trace.system} ({trace.path}) ==", file=out)
    for key in ("input_rate", "seed", "window"):
        if key in trace.meta:
            print(f"  {key}: {trace.meta[key]}", file=out)

    roots = list(trace.roots.values())
    committed = sum(
        1 for r in roots if (r.get("attrs") or {}).get("outcome") == "committed"
    )
    attempts = sum(1 for s in trace.spans if s["name"] == "attempt")
    print(
        f"  transactions: {len(roots)} ({committed} committed, "
        f"{len(roots) - committed} failed), attempts: {attempts}",
        file=out,
    )

    # Abort reasons per priority (client-side `abort` events: one per
    # aborted attempt).
    aborts = [e for e in trace.events if e["name"] == "abort"]
    by_priority: Dict[str, Counter] = defaultdict(Counter)
    for event in aborts:
        reason = (event.get("attrs") or {}).get("reason", "UNKNOWN")
        by_priority[trace.priority_of(event.get("txn"))][reason] += 1
    print(f"  aborted attempts: {len(aborts)}", file=out)
    for priority in sorted(by_priority):
        ranked = by_priority[priority].most_common()
        total = sum(count for _, count in ranked)
        detail = ", ".join(f"{reason} {count}" for reason, count in ranked)
        print(f"    priority {priority}: {total}  [{detail}]", file=out)
    unknown = sum(
        counter.get("UNKNOWN", 0) for counter in by_priority.values()
    )
    if aborts:
        print(
            f"    classified: {100.0 * (1 - unknown / len(aborts)):.1f}% "
            "non-UNKNOWN",
            file=out,
        )

    # Per-phase latency breakdown.
    phases: Dict[str, List[float]] = defaultdict(list)
    for span in trace.spans:
        phases[span["name"]].append(_span_duration(span))
    print("  phase breakdown (ms):", file=out)
    header = f"    {'phase':<24}{'count':>8}{'mean':>10}{'p95':>10}"
    print(header, file=out)
    for name in sorted(phases, key=lambda n: -sum(phases[n])):
        durations = phases[name]
        print(
            f"    {name:<24}{len(durations):>8}"
            f"{_ms(sum(durations) / len(durations)):>10}"
            f"{_ms(_percentile(durations, 95.0)):>10}",
            file=out,
        )


# ----------------------------------------------------------------------
# critical-path


def _contains(outer: dict, inner: dict) -> bool:
    o_end = outer.get("end")
    i_end = inner.get("end")
    if o_end is None or i_end is None:
        return False
    return outer["start"] <= inner["start"] and i_end <= o_end


def critical_path(trace: TraceFile, txn_id: str, out) -> int:
    root = trace.roots.get(txn_id)
    if root is None:
        print(f"no root span for transaction {txn_id!r}", file=out)
        known = ", ".join(sorted(trace.roots)[:10])
        print(f"known ids start with: {known} ...", file=out)
        return 1
    family = trace.family(txn_id)
    spans = sorted(
        (r for r in family if r["type"] == "span"),
        key=lambda s: (s["start"], -(_span_duration(s))),
    )
    events = sorted(
        (r for r in family if r["type"] == "event"), key=lambda e: e["time"]
    )

    print(f"== transaction {txn_id} ==", file=out)
    attrs = root.get("attrs") or {}
    print(
        f"  priority={attrs.get('priority', '?')} "
        f"type={attrs.get('txn_type', '?')} "
        f"outcome={attrs.get('outcome', '?')} "
        f"latency={_ms(_span_duration(root))}ms",
        file=out,
    )

    print("  timeline:", file=out)
    t0 = root["start"]
    for span in spans:
        depth = sum(
            1 for other in spans if other is not span and _contains(other, span)
        )
        indent = "  " * depth
        print(
            f"    {span['start'] - t0:>9.4f}s {indent}{span['name']} "
            f"[{_ms(_span_duration(span))}ms] "
            f"node={span.get('node') or '-'} txn={span.get('txn') or '-'}",
            file=out,
        )
    for event in events:
        reason = (event.get("attrs") or {}).get("reason")
        suffix = f" reason={reason}" if reason else ""
        print(
            f"    {event['time'] - t0:>9.4f}s * {event['name']} "
            f"node={event.get('node') or '-'}{suffix}",
            file=out,
        )

    # Backward chain: repeatedly pick the span that ends latest at or
    # before the frontier; the chain (plus its gaps) is where the
    # transaction's wall-clock went.
    leaves = [
        s for s in spans
        if s is not root and s.get("end") is not None
        and not any(_contains(s, other) for other in spans if other is not s)
    ]
    frontier = root.get("end") or max(
        (s.get("end") or s["start"] for s in spans), default=root["start"]
    )
    chain: List[dict] = []
    eps = 1e-9
    while True:
        candidates = [s for s in leaves if s["end"] <= frontier + eps]
        if not candidates:
            break
        best = max(candidates, key=lambda s: (s["end"], _span_duration(s)))
        chain.append(best)
        if best["start"] <= root["start"] + eps:
            break
        frontier = best["start"]
        leaves = [s for s in leaves if s is not best]
    chain.reverse()

    print("  critical path:", file=out)
    previous_end = root["start"]
    for span in chain:
        gap = span["start"] - previous_end
        if gap > eps:
            print(f"    ... ({_ms(gap)}ms gap)", file=out)
        print(
            f"    {span['name']} [{_ms(_span_duration(span))}ms] "
            f"node={span.get('node') or '-'}",
            file=out,
        )
        previous_end = span["end"]
    return 0


# ----------------------------------------------------------------------
# entry point


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect JSONL traces exported by the harness.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p_summary = commands.add_parser(
        "summary", help="abort taxonomy + per-phase latency breakdown"
    )
    p_summary.add_argument("traces", nargs="+", help="JSONL trace file(s)")

    p_path = commands.add_parser(
        "critical-path", help="timeline + critical path for one transaction"
    )
    p_path.add_argument("trace", help="JSONL trace file")
    p_path.add_argument("--txn", required=True, help="logical transaction id")

    p_chrome = commands.add_parser(
        "chrome", help="convert JSONL to Chrome trace_event JSON (Perfetto)"
    )
    p_chrome.add_argument("trace", help="JSONL trace file")
    p_chrome.add_argument("-o", "--output", required=True)

    args = parser.parse_args(argv)
    out = sys.stdout

    try:
        if args.command == "summary":
            for path in args.traces:
                summarize(TraceFile(path), out)
            return 0
        if args.command == "critical-path":
            return critical_path(TraceFile(args.trace), args.txn, out)
        if args.command == "chrome":
            with open(args.output, "w") as fh:
                json.dump(
                    chrome_trace_from_records(read_jsonl(args.trace)), fh
                )
            print(f"wrote {args.output}", file=out)
            return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: not a JSONL trace file: {exc.msg}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the choices
