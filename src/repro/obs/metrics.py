"""Counters, gauges and simulation-time-windowed histograms.

All instruments read the *simulated* clock (the registry is attached to
a :class:`~repro.sim.kernel.Simulator` by
:meth:`repro.obs.core.Observability.attach`), so histogram samples can
be re-aggregated over any simulated-time window after the run — e.g.
"p95 append-entries commit latency inside the measurement window".

Zero-dependency by design: percentile math is plain Python, no numpy.
When observability is disabled the registry is replaced by
:data:`NULL_METRICS`, whose instruments are shared no-op singletons, so
guarded call sites cost one attribute load and a branch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


def _label_key(labels: Dict[str, object]) -> str:
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


class Counter:
    """A monotonically increasing count, optionally split by labels."""

    __slots__ = ("name", "value", "_labeled")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._labeled: Dict[str, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        self.value += amount
        if labels:
            key = _label_key(labels)
            self._labeled[key] = self._labeled.get(key, 0.0) + amount

    def labeled(self) -> Dict[str, float]:
        return dict(self._labeled)

    def snapshot(self) -> dict:
        out: dict = {"type": "counter", "value": self.value}
        if self._labeled:
            out["labels"] = dict(self._labeled)
        return out


class Gauge:
    """A point-in-time value; remembers its maximum."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class Histogram:
    """Raw-sample histogram with simulation-time windowing.

    Samples are ``(sim_time, value)`` pairs; aggregates (``mean``,
    ``percentile``) accept an optional ``window=(start, end)`` filtered
    on the *record* time, mirroring the harness's measurement-window
    trimming.  Optional labels split samples into sub-series (e.g. one
    delay series per WAN link).
    """

    __slots__ = ("name", "_clock", "samples", "_labeled")

    def __init__(
        self, name: str, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self.samples: List[Tuple[float, float]] = []
        self._labeled: Dict[str, List[Tuple[float, float]]] = {}

    def observe(self, value: float, at: Optional[float] = None, **labels) -> None:
        t = self._clock() if at is None else at
        self.samples.append((t, value))
        if labels:
            self._labeled.setdefault(_label_key(labels), []).append((t, value))

    @property
    def count(self) -> int:
        return len(self.samples)

    def _selected(self, window: Optional[tuple], label: Optional[str]) -> List[float]:
        samples = self._labeled.get(label, []) if label else self.samples
        if window is None:
            return [v for _, v in samples]
        start, end = window
        return [v for t, v in samples if start <= t < end]

    def mean(self, window: Optional[tuple] = None, label: Optional[str] = None) -> float:
        values = self._selected(window, label)
        return sum(values) / len(values) if values else float("nan")

    def percentile(
        self, q: float, window: Optional[tuple] = None, label: Optional[str] = None
    ) -> float:
        return _percentile(sorted(self._selected(window, label)), q)

    def labels(self) -> List[str]:
        return sorted(self._labeled)

    def snapshot(self) -> dict:
        values = sorted(v for _, v in self.samples)
        out: dict = {
            "type": "histogram",
            "count": len(values),
            "mean": (sum(values) / len(values)) if values else float("nan"),
            "p50": _percentile(values, 50.0),
            "p95": _percentile(values, 95.0),
            "p99": _percentile(values, 99.0),
            "max": values[-1] if values else float("nan"),
        }
        if self._labeled:
            out["labels"] = {
                label: len(samples) for label, samples in self._labeled.items()
            }
        return out


class MetricsRegistry:
    """Get-or-create home for all instruments of one run."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.enabled = True
        self._clock = clock or (lambda: 0.0)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def attach_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        for histogram in self._histograms.values():
            histogram._clock = clock

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, self._clock)
        return histogram

    def snapshot(self) -> Dict[str, dict]:
        """JSON-able view of every instrument, sorted by name."""
        out: Dict[str, dict] = {}
        for store in (self._counters, self._gauges, self._histograms):
            for name in sorted(store):
                out[name] = store[name].snapshot()
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0.0
    max_value = 0.0
    count = 0
    samples: List[Tuple[float, float]] = []

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, at: Optional[float] = None, **labels) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False

    def attach_clock(self, clock) -> None:
        pass

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, dict]:
        return {}


NULL_METRICS = NullMetricsRegistry()
