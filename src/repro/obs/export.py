"""Trace exporters: JSONL (machine-diffable) and Chrome ``trace_event``.

JSONL is the canonical format: one JSON object per line, ``type`` one of
``meta`` / ``span`` / ``event``, all times in simulated seconds.  It is
what :mod:`repro.obs.cli` consumes and what the round-trip tests parse.

The Chrome format is the ``trace_event`` JSON-object flavour (a
``traceEvents`` array), loadable in Perfetto or ``chrome://tracing``:
spans become complete ("X") events with microsecond timestamps, nodes
become processes (named via metadata events), and each logical
transaction gets its own thread lane so its attempts stack readably.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional

from repro.obs.trace import Tracer


def span_dict(span) -> dict:
    record = {
        "type": "span",
        "id": span.span_id,
        "name": span.name,
        "node": span.node,
        "txn": span.txn,
        "start": span.start,
        "end": span.end,
    }
    if span.parent_id is not None:
        record["parent"] = span.parent_id
    if span.attrs:
        record["attrs"] = span.attrs
    return record


def event_dict(event) -> dict:
    record = {
        "type": "event",
        "name": event.name,
        "node": event.node,
        "txn": event.txn,
        "time": event.time,
    }
    if event.attrs:
        record["attrs"] = event.attrs
    return record


def jsonl_lines(tracer: Tracer, meta: Optional[dict] = None) -> Iterator[str]:
    """All trace records as JSON strings, meta first, time-ordered-ish."""
    if meta is not None:
        yield json.dumps({"type": "meta", **meta})
    for span in tracer.spans:
        yield json.dumps(span_dict(span))
    for event in tracer.events:
        yield json.dumps(event_dict(event))


def write_jsonl(tracer: Tracer, path: str, meta: Optional[dict] = None) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(tracer, meta):
            fh.write(line)
            fh.write("\n")


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSONL trace back into a list of record dicts."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def parse_jsonl_lines(lines: Iterable[str]) -> List[dict]:
    return [json.loads(line) for line in lines if line.strip()]


# ----------------------------------------------------------------------
# Chrome trace_event


def _root_txn(txn: Optional[str]) -> str:
    """Attempt ids look like ``<txn_id>.<n>``; group lanes by txn id."""
    if not txn:
        return ""
    head, _, tail = txn.rpartition(".")
    return head if head and tail.isdigit() else txn


def chrome_trace_from_records(
    records: Iterable[dict], meta: Optional[dict] = None
) -> dict:
    """JSONL-style record dicts as a Chrome ``trace_event`` object."""
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}
    events: List[dict] = []

    def pid_for(node: Optional[str]) -> int:
        name = node or "(unknown)"
        if name not in pids:
            pids[name] = len(pids) + 1
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": pids[name],
                "tid": 0,
                "args": {"name": name},
            })
        return pids[name]

    def tid_for(txn: Optional[str]) -> int:
        root = _root_txn(txn)
        if root not in tids:
            tids[root] = len(tids)
        return tids[root]

    for record in records:
        kind = record.get("type")
        txn = record.get("txn")
        args = dict(record.get("attrs") or {})
        if txn:
            args["txn"] = txn
        if kind == "span":
            start = record["start"]
            end = record["end"] if record.get("end") is not None else start
            events.append({
                "ph": "X",
                "cat": "span",
                "name": record["name"],
                "pid": pid_for(record.get("node")),
                "tid": tid_for(txn),
                "ts": start * 1e6,
                "dur": max(0.0, (end - start) * 1e6),
                "args": args,
            })
        elif kind == "event":
            events.append({
                "ph": "i",
                "s": "t",
                "cat": "event",
                "name": record["name"],
                "pid": pid_for(record.get("node")),
                "tid": tid_for(txn),
                "ts": record["time"] * 1e6,
                "args": args,
            })
        elif kind == "meta" and meta is None:
            meta = {k: v for k, v in record.items() if k != "type"}

    trace: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if meta is not None:
        trace["otherData"] = meta
    return trace


def chrome_trace(tracer: Tracer, meta: Optional[dict] = None) -> dict:
    """The tracer's records as a Chrome ``trace_event`` JSON object."""
    records = [span_dict(s) for s in tracer.spans]
    records.extend(event_dict(e) for e in tracer.events)
    return chrome_trace_from_records(records, meta=meta)


def write_chrome_trace(
    tracer: Tracer, path: str, meta: Optional[dict] = None
) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, meta), fh)
