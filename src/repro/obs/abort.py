"""The abort-reason taxonomy.

Every abort site in the repository classifies *why* an attempt died and
stamps that reason on (a) the refusal reply / no-vote / decision message
so the client driver can account for it, and (b) the trace stream so
``python -m repro.trace summary`` can break aborts down per reason and
priority.  The taxonomy is deliberately small: each value names a
distinct *mechanism*, not a site — e.g. a Natto priority abort and a
2PL wound are both ``PREEMPTED`` (a higher-priority/older transaction
evicted this one).
"""

from __future__ import annotations

import enum


class AbortReason(str, enum.Enum):
    """Why one transaction attempt aborted."""

    #: Blocked by / conflicting with currently *held* locks or prepared
    #: marks under a locking discipline (2PL lock denial, Natto
    #: high-priority path).
    LOCK_CONFLICT = "LOCK_CONFLICT"
    #: OCC validation failure: the key sets intersect a prepared (or
    #: earlier-waiting) transaction (Carousel, TAPIR prepared-set check,
    #: Natto low-priority path).
    OCC_CONFLICT = "OCC_CONFLICT"
    #: A read version no longer matches at validation time (TAPIR).
    STALE_READ = "STALE_READ"
    #: Arrived after its own execution timestamp in a way that violates
    #: timestamp order with an ongoing conflicting transaction (Natto
    #: late-arrival rule, §3.2).
    TIMESTAMP_MISS = "TIMESTAMP_MISS"
    #: Evicted by a higher-priority (or older, for wound-wait)
    #: transaction: Natto priority abort, 2PL wound.
    PREEMPTED = "PREEMPTED"
    #: A conditional prepare's condition failed (the blocker committed)
    #: and the retry path could not recover the attempt (Natto CP).
    CONDITION_FAILED = "CONDITION_FAILED"
    #: The attempt died waiting on a message that was dropped by fault
    #: injection or lost to the loss model.
    PACKET_LOSS_TIMEOUT = "PACKET_LOSS_TIMEOUT"
    #: The client chose to abort after its reads (2FI voluntary abort).
    VOLUNTARY = "VOLUNTARY"
    #: The retry budget ran out (terminal outcome, not a per-attempt
    #: cause — the attempts each carry their own reason).
    RETRY_EXHAUSTED = "RETRY_EXHAUSTED"
    #: No site classified the abort.  The trace CLI reports the fraction
    #: of these; it should stay ~0.
    UNKNOWN = "UNKNOWN"

    def __str__(self) -> str:  # "LOCK_CONFLICT", not "AbortReason.LOCK..."
        return self.value


def reason_value(reason) -> str:
    """Normalize an :class:`AbortReason`, string, or None to a string."""
    if reason is None:
        return AbortReason.UNKNOWN.value
    return getattr(reason, "value", None) or str(reason)
