"""Simulation-time observability: tracing, metrics, abort taxonomy.

The pieces:

* :class:`Tracer` / :class:`Span` — structured spans and events on the
  simulated clock, forming per-transaction trace trees (client dispatch
  → network hops → Raft replication → lock/queue waits → prepare →
  commit) — see :mod:`repro.obs.trace`;
* :class:`AbortReason` — the abort-reason taxonomy every abort site in
  the protocol implementations stamps on refusals and decisions;
* :class:`MetricsRegistry` — counters, gauges and simulation-time-
  windowed histograms (:mod:`repro.obs.metrics`);
* :class:`Observability` — the per-run bundle attached to a simulator
  (``sim.obs``); :data:`NULL_OBS` is the disabled default whose tracer
  and metrics are no-ops;
* exporters — JSONL and Chrome ``trace_event`` (Perfetto-loadable), in
  :mod:`repro.obs.export`;
* ``python -m repro.trace`` — the trace-inspection CLI
  (:mod:`repro.obs.cli`).
"""

from repro.obs.abort import AbortReason, reason_value
from repro.obs.core import NULL_OBS, Observability
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, TraceEvent, Tracer

__all__ = [
    "AbortReason",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observability",
    "Span",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "read_jsonl",
    "reason_value",
    "write_chrome_trace",
    "write_jsonl",
]
