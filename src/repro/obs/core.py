"""The per-run observability context: one tracer + one metrics registry.

An :class:`Observability` object is created per deployment (the harness
makes one per :class:`~repro.systems.base.Cluster` when
``ExperimentSettings.tracing`` is on) and attached to the simulator.
Everything that holds a simulator reference reaches it as ``sim.obs``;
the simulator's default is :data:`NULL_OBS`, so instrumented call sites
are always safe to execute and near-free when disabled::

    obs = self.sim.obs
    if obs.enabled:
        obs.metrics.counter("net.messages").inc()
        span = obs.tracer.span("prepare", node=self.name, txn=txn)
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


class Observability:
    """Bundle of tracer + metrics sharing one simulated clock."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer() if enabled else NULL_TRACER
        self.metrics = MetricsRegistry() if enabled else NULL_METRICS

    def attach(self, sim) -> "Observability":
        """Bind to ``sim``: become ``sim.obs`` and read its clock."""
        sim.obs = self
        if self.enabled:
            clock: Callable[[], float] = lambda: sim.now
            self.tracer.attach_clock(clock)
            self.metrics.attach_clock(clock)
        return self

    # ------------------------------------------------------------------
    # Snapshots and exports

    def snapshot(self) -> dict:
        """Metrics snapshot plus trace volume counts (JSON-able)."""
        return {
            "enabled": self.enabled,
            "spans": len(self.tracer.spans),
            "events": len(self.tracer.events),
            "metrics": self.metrics.snapshot(),
        }

    def export_jsonl(self, path: str, meta: Optional[dict] = None) -> None:
        write_jsonl(self.tracer, path, meta=meta)

    def export_chrome_trace(self, path: str, meta: Optional[dict] = None) -> None:
        write_chrome_trace(self.tracer, path, meta=meta)


#: Shared disabled context; the simulator's default ``obs``.
NULL_OBS = Observability(enabled=False)
