"""Simulation-clock-native spans and events.

A :class:`Span` is a named interval of *simulated* time on one node,
optionally tied to a transaction (or transaction attempt) id and to a
parent span.  An event is a point-in-time record.  Together they form
per-transaction trace trees:

* the client driver opens a root ``txn`` span per logical transaction
  and one ``attempt`` child span per attempt (explicit ``parent=``);
* servers, the network and Raft tag their spans/events with the attempt
  id (``"<txn_id>.<n>"``) they belong to — the exporters and the trace
  CLI re-attach them to the owning attempt by that id, which avoids
  threading span contexts through every message payload.

Abort sites call :meth:`Tracer.abort` (client-side, one per aborted
attempt) or :meth:`Tracer.refuse` (server-side, one per refusal site),
both stamped with an :class:`~repro.obs.abort.AbortReason`.

When tracing is disabled the tracer is :data:`NULL_TRACER`: ``span``
returns a shared no-op span and every other method is a pass — hot
paths additionally guard on ``obs.enabled`` so disabled runs pay one
attribute load and a branch per site.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.abort import reason_value


class Span:
    """One named interval; finish it explicitly or via ``with``."""

    __slots__ = ("span_id", "parent_id", "name", "node", "txn", "start",
                 "end", "attrs", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        *,
        node: Optional[str] = None,
        txn: Optional[str] = None,
        parent_id: Optional[int] = None,
        start: float = 0.0,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.txn = txn
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, at: Optional[float] = None) -> None:
        """Close the span (idempotent); ``at`` overrides the clock."""
        if self.end is None:
            self.end = self._tracer._clock() if at is None else at

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()


class _NullSpan:
    """Shared no-op span returned by the disabled tracer."""

    __slots__ = ()
    span_id = -1
    parent_id = None
    name = "null"
    node = None
    txn = None
    start = 0.0
    end = 0.0
    attrs: Dict[str, Any] = {}
    finished = True

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self, at: Optional[float] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class TraceEvent:
    """A point-in-time record (aborts, drops, wounds, ...)."""

    __slots__ = ("name", "time", "node", "txn", "attrs")

    def __init__(
        self,
        name: str,
        time: float,
        node: Optional[str] = None,
        txn: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.time = time
        self.node = node
        self.txn = txn
        self.attrs = attrs or {}


class Tracer:
    """Collects spans and events for one run."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._next_id = 0
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []

    def attach_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def span(
        self,
        name: str,
        *,
        node: Optional[str] = None,
        txn: Optional[str] = None,
        parent: Any = None,
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        self._next_id += 1
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(
            self,
            self._next_id,
            name,
            node=node,
            txn=txn,
            parent_id=parent_id,
            start=self._clock() if start is None else start,
            attrs=attrs or None,
        )
        self.spans.append(span)
        return span

    def event(
        self,
        name: str,
        *,
        node: Optional[str] = None,
        txn: Optional[str] = None,
        at: Optional[float] = None,
        **attrs: Any,
    ) -> None:
        self.events.append(
            TraceEvent(
                name,
                self._clock() if at is None else at,
                node=node,
                txn=txn,
                attrs=attrs or None,
            )
        )

    # ------------------------------------------------------------------
    # Abort taxonomy entry points

    def abort(
        self,
        reason,
        *,
        node: Optional[str] = None,
        txn: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Client-side record: one per aborted attempt."""
        self.event("abort", node=node, txn=txn,
                   reason=reason_value(reason), **attrs)

    def refuse(
        self,
        reason,
        *,
        node: Optional[str] = None,
        txn: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        """Server-side record: one per refusal site (an attempt touching
        several partitions can collect several)."""
        self.event("refuse", node=node, txn=txn,
                   reason=reason_value(reason), **attrs)


class NullTracer:
    """Disabled tracer: allocation-free no-ops."""

    enabled = False
    spans: List[Span] = []
    events: List[TraceEvent] = []

    def attach_clock(self, clock) -> None:
        pass

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **kwargs: Any) -> None:
        pass

    def abort(self, reason, **kwargs: Any) -> None:
        pass

    def refuse(self, reason, **kwargs: Any) -> None:
        pass


NULL_TRACER = NullTracer()
