"""The discrete-event simulator: an event heap and a clock.

Design notes
------------
* Events are ``(deadline, sequence, callback)`` triples in a binary heap.
  The monotonically increasing sequence number makes ordering of
  same-deadline events deterministic (FIFO in scheduling order), which in
  turn makes every experiment bit-reproducible for a fixed seed.
* Cancellation is lazy: a cancelled :class:`Timer` stays in the heap and
  is skipped when popped.  This keeps ``schedule`` and ``cancel`` O(log n)
  and O(1) respectively.
* Time is a float in **seconds**.  All delay models and protocol
  parameters use seconds; reporting code converts to milliseconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from repro.sim.future import Future


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("deadline", "_callback", "_cancelled")

    def __init__(self, deadline: float, callback: Callable[[], None]) -> None:
        self.deadline = deadline
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self._cancelled = True
        self._callback = _noop

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        self._callback()


def _noop() -> None:
    return None


class Simulator:
    """Deterministic discrete-event loop.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print(sim.now))
        sim.run()            # run until the event heap drains
        sim.run(until=60.0)  # or until simulated time passes 60 s
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._heap: List[Any] = []
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s into the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})"
            )
        timer = Timer(when, callback)
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, timer))
        return timer

    def timeout(self, delay: float) -> Future:
        """A future that resolves (with ``None``) after ``delay`` seconds."""
        future = Future()
        self.schedule(delay, future.set_result)
        return future

    def spawn(self, generator: Generator) -> "Process":
        """Start a coroutine process; see :class:`repro.sim.process.Process`."""
        # Imported here to avoid a module cycle (process imports kernel types).
        from repro.sim.process import Process

        return Process(self, generator)

    def stop(self) -> None:
        """Make the current ``run`` call return after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> None:
        """Process events in deadline order.

        With ``until``, the loop stops once the next event would be later
        than ``until`` and advances the clock exactly to ``until`` (so
        periodic activities observe a consistent end time).  Without it,
        the loop drains the heap.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            deadline, _, timer = self._heap[0]
            if until is not None and deadline > until:
                break
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = deadline
            timer._fire()
        if until is not None and self._now < until:
            self._now = until
