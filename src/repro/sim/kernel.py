"""The discrete-event simulator: an event heap and a clock.

Design notes
------------
* Events are ``(deadline, sequence, target)`` triples in a binary heap,
  where ``target`` is either a :class:`Timer` (cancellable, returned by
  :meth:`Simulator.schedule`) or a bare callback posted through the
  :meth:`Simulator.post` fast path.  The monotonically increasing
  sequence number makes ordering of same-deadline events deterministic
  (FIFO in scheduling order), which in turn makes every experiment
  bit-reproducible for a fixed seed; it also means heapq never compares
  the third element, so Timers and bare callables can share the heap.
* ``post``/``post_at`` exist because most events are never cancelled:
  message deliveries, process steps and open-loop ticks fire exactly
  once.  Skipping the Timer allocation and the cancellation bookkeeping
  for them roughly doubles raw event throughput (see
  ``benchmarks/perf/bench_sweep.py``).
* Cancellation is lazy: a cancelled :class:`Timer` stays in the heap and
  is skipped when popped.  This keeps ``schedule`` and ``cancel`` O(log n)
  and O(1) respectively.  The kernel counts cancelled-but-still-heaped
  entries and compacts the heap once they outnumber the live ones, so
  workloads that cancel most of their timers (retry timeouts, lease
  guards) don't grow the heap without bound.
* Time is a float in **seconds**.  All delay models and protocol
  parameters use seconds; reporting code converts to milliseconds.
* ``sim.obs`` is the run's :class:`~repro.obs.core.Observability` bundle
  (default: the disabled :data:`~repro.obs.core.NULL_OBS`); instrumented
  components guard on ``sim.obs.enabled``.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional

from repro.obs.core import NULL_OBS, Observability
from repro.sim.future import Future


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    # ``_sim`` doubles as the in-heap marker: the kernel nulls it when
    # the entry leaves the heap, so a late ``cancel`` doesn't disturb
    # the cancelled-entry count.
    __slots__ = ("deadline", "_callback", "_cancelled", "_sim")

    def __init__(
        self,
        deadline: float,
        callback: Callable[[], None],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.deadline = deadline
        self._callback = callback
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _noop
        sim = self._sim
        if sim is not None:
            # Inlined Simulator._note_cancelled: cancel is hot enough
            # that the extra method call shows up in benchmarks.
            sim._cancelled_in_heap += 1
            if sim._cancelled_in_heap * 2 > len(sim._heap) >= 64:
                sim._compact()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        self._callback()


def _noop() -> None:
    return None


class PeriodicTimer:
    """Handle for a repeating callback armed by :meth:`Simulator.every`.

    Each firing invokes the callback and re-arms the next occurrence,
    so at most one heap entry exists per series at any time.  ``cancel``
    stops the series (idempotent); a callback may also cancel its own
    timer to stop from the inside.
    """

    __slots__ = ("_sim", "_interval", "_callback", "_until", "_timer",
                 "_cancelled", "fired")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        until: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"period must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._until = until
        self._cancelled = False
        self.fired = 0
        self._timer: Optional[Timer] = None
        self._arm()

    def _arm(self) -> None:
        when = self._sim._now + self._interval
        if self._until is not None and when > self._until:
            self._timer = None
            return
        self._timer = self._sim.schedule_at(when, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._callback()
        if not self._cancelled:
            self._arm()

    def cancel(self) -> None:
        """Stop the series.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """Deterministic discrete-event loop.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print(sim.now))
        sim.run()            # run until the event heap drains
        sim.run(until=60.0)  # or until simulated time passes 60 s
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._heap: List[Any] = []
        self._stopped = False
        self._cancelled_in_heap = 0
        self.obs: Observability = NULL_OBS

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s into the past")
        when = self._now + delay
        timer = Timer(when, callback, self)
        self._sequence += 1
        heappush(self._heap, (when, self._sequence, timer))
        return timer

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})"
            )
        timer = Timer(when, callback, self)
        self._sequence += 1
        heappush(self._heap, (when, self._sequence, timer))
        return timer

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Timer`, no cancel.

        The hot path for events that are never cancelled (message
        deliveries, process resumptions, open-loop ticks): the heap
        entry holds the bare callback, skipping the Timer allocation on
        the way in and the cancellation checks on the way out.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s into the past")
        self._sequence += 1
        heappush(self._heap, (self._now + delay, self._sequence, callback))

    def post_at(self, when: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule_at`; see :meth:`post`."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})"
            )
        self._sequence += 1
        heappush(self._heap, (when, self._sequence, callback))

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        until: Optional[float] = None,
    ) -> PeriodicTimer:
        """Run ``callback`` every ``interval`` seconds, starting one
        interval from now.

        With ``until``, no firing is scheduled past that time.  Returns
        a :class:`PeriodicTimer` whose ``cancel`` stops the series —
        the hook runtime invariant monitors and the fault injector use
        for periodic mid-run checks.
        """
        return PeriodicTimer(self, interval, callback, until)

    def timeout(self, delay: float) -> Future:
        """A future that resolves (with ``None``) after ``delay`` seconds."""
        future = Future()
        self.post(delay, future.set_result)
        return future

    def spawn(self, generator: Generator) -> "Process":
        """Start a coroutine process; see :class:`repro.sim.process.Process`."""
        # Imported here to avoid a module cycle (process imports kernel types).
        from repro.sim.process import Process

        return Process(self, generator)

    def stop(self) -> None:
        """Make the current ``run`` call return after the current event."""
        self._stopped = True

    #: Below this heap size lazy skipping beats rebuilding: pops clear
    #: cancelled entries quickly and compaction would thrash.  Keep in
    #: sync with the literal in :meth:`Timer.cancel`, where the check is
    #: inlined for speed.
    _COMPACT_MIN_HEAP = 64

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Deterministic: (deadline, sequence) keys are unique, so heapify
        yields the same pop order the lazy skip would have.
        """
        self._heap = [
            entry
            for entry in self._heap
            if entry[2].__class__ is not Timer or not entry[2]._cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def run(self, until: Optional[float] = None) -> None:
        """Process events in deadline order.

        With ``until``, the loop stops once the next event would be later
        than ``until`` and advances the clock exactly to ``until`` (so
        periodic activities observe a consistent end time).  Without it,
        the loop drains the heap.
        """
        self._stopped = False
        if self.obs.enabled:
            self._run_instrumented(until)
            return
        # The innermost loop of every experiment: locals for the heap
        # and pop, an infinite sentinel instead of a None check per
        # event, and a single type test to split Timer entries (which
        # need cancellation bookkeeping) from posted bare callbacks.
        limit = float("inf") if until is None else until
        heap = self._heap
        pop = heappop
        timer_class = Timer
        while heap and not self._stopped:
            entry = heap[0]
            deadline = entry[0]
            if deadline > limit:
                break
            pop(heap)
            target = entry[2]
            if target.__class__ is timer_class:
                if target._cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                target._sim = None
                self._now = deadline
                target._callback()
            else:
                self._now = deadline
                target()
        if until is not None and self._now < until:
            self._now = until

    def _run_instrumented(self, until: Optional[float]) -> None:
        """The ``run`` loop plus kernel metrics (tracing enabled)."""
        obs = self.obs
        fired = obs.metrics.counter("sim.events_fired")
        depth = obs.metrics.gauge("sim.heap_depth")
        heap = self._heap
        while heap and not self._stopped:
            deadline, _, target = heap[0]
            if until is not None and deadline > until:
                break
            heapq.heappop(heap)
            if target.__class__ is Timer:
                if target._cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                target._sim = None
            self._now = deadline
            fired.inc()
            depth.set(self.pending_events)
            if target.__class__ is Timer:
                target._callback()
            else:
                target()
        if until is not None and self._now < until:
            self._now = until
