"""Named, independently seeded random streams.

Every source of randomness in an experiment (network jitter, workload key
choice, client think time, ...) draws from its own stream, derived
deterministically from a root seed and the stream's name.  This gives two
properties the harness relies on:

* **Reproducibility** — the same root seed replays the same experiment.
* **Independence under change** — adding a consumer to one stream does
  not shift the values another stream produces, so e.g. turning on delay
  jitter does not silently reshuffle the workload's key sequence.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = generator
        return generator

    def _derive_seed(self, name: str) -> int:
        # crc32 is stable across processes and Python versions (unlike
        # hash()), which keeps experiments reproducible everywhere.
        return (self._root_seed << 32) ^ zlib.crc32(name.encode("utf-8"))

    def fork(self, salt: int) -> "RandomStreams":
        """A new family of streams for an independent repetition."""
        return RandomStreams(self._root_seed * 1_000_003 + salt + 1)
