"""Named, independently seeded random streams.

Every source of randomness in an experiment (network jitter, workload key
choice, client think time, ...) draws from its own stream, derived
deterministically from a root seed and the stream's name.  This gives two
properties the harness relies on:

* **Reproducibility** — the same root seed replays the same experiment.
* **Independence under change** — adding a consumer to one stream does
  not shift the values another stream produces, so e.g. turning on delay
  jitter does not silently reshuffle the workload's key sequence.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class BatchedUniform:
    """Scalar U[0, 1) draws served from pre-filled numpy blocks.

    numpy's block fill (``rng.random(n)``) consumes the generator's
    bitstream exactly as ``n`` scalar ``rng.random()`` calls do, so
    pulling from a block changes the allocation pattern per draw — one
    numpy scalar plus dispatch overhead — but not a single value.  The
    block refills on exhaustion; the block size is therefore free to
    tune and invisible to the draw sequence.

    Exposes ``random()`` so it can stand in for a ``Generator`` wherever
    only uniforms are drawn.  All consumers of a stream must share one
    batcher (or none): mixing batched and direct draws on the same
    generator would interleave block fills with scalar pulls and
    reorder the stream.
    """

    __slots__ = ("_rng", "_block", "_pos", "_size")

    def __init__(self, rng: "np.random.Generator", block_size: int = 4096) -> None:
        self._rng = rng
        self._size = int(block_size)
        self._block = None
        self._pos = 0

    def random(self) -> float:
        block = self._block
        pos = self._pos
        if block is None or pos >= self._size:
            block = self._block = self._rng.random(self._size)
            pos = 0
        self._pos = pos + 1
        return block.item(pos)


class BatchedStandardExponential:
    """Scalar Exp(1) draws from pre-filled blocks (same bitstream).

    ``rng.exponential(scale)`` is ``scale * standard_exponential()`` and
    ``rng.pareto(a)`` is ``expm1(standard_exponential() / a)``, so one
    standard-exponential block serves both shapes with per-draw
    parameters while reproducing the unbatched sequences bit-for-bit.
    """

    __slots__ = ("_rng", "_block", "_pos", "_size")

    def __init__(self, rng: "np.random.Generator", block_size: int = 2048) -> None:
        self._rng = rng
        self._size = int(block_size)
        self._block = None
        self._pos = 0

    def next(self) -> float:
        block = self._block
        pos = self._pos
        if block is None or pos >= self._size:
            block = self._block = self._rng.standard_exponential(self._size)
            pos = 0
        self._pos = pos + 1
        return block.item(pos)


class BatchedGeometric:
    """Scalar geometric(p) draws (fixed ``p``) from pre-filled blocks."""

    __slots__ = ("_rng", "_p", "_block", "_pos", "_size")

    def __init__(
        self,
        rng: "np.random.Generator",
        p: float,
        block_size: int = 1024,
    ) -> None:
        self._rng = rng
        self._p = float(p)
        self._size = int(block_size)
        self._block = None
        self._pos = 0

    def next(self) -> int:
        block = self._block
        pos = self._pos
        if block is None or pos >= self._size:
            block = self._block = self._rng.geometric(self._p, self._size)
            pos = 0
        self._pos = pos + 1
        return int(block.item(pos))


class RandomStreams:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = generator
        return generator

    def _derive_seed(self, name: str) -> int:
        # crc32 is stable across processes and Python versions (unlike
        # hash()), which keeps experiments reproducible everywhere.
        return (self._root_seed << 32) ^ zlib.crc32(name.encode("utf-8"))

    def fork(self, salt: int) -> "RandomStreams":
        """A new family of streams for an independent repetition."""
        return RandomStreams(self._root_seed * 1_000_003 + salt + 1)
