"""Deterministic discrete-event simulation kernel.

Everything in this repository — network, clocks, Raft, the transaction
protocols — runs on this kernel.  Time is simulated: the kernel pops the
earliest pending event from a heap, advances ``now`` to its deadline and
invokes its callback.  Latency numbers reported by the harness are
differences of simulated timestamps, so they measure protocol structure
(round trips, queueing, retries) rather than Python interpreter speed.

Public surface:

* :class:`Simulator` — the event loop (``schedule``, ``spawn``, ``run``).
* :class:`Future` — a one-shot, observable result container.
* :class:`Process` — a generator-based coroutine driven by the simulator;
  yields delays, futures or other processes.
* :func:`all_of` / :func:`any_of` — future combinators.
* :class:`RandomStreams` — named, independently seeded RNG streams so that
  experiments are reproducible and individually perturbable.
"""

from repro.sim.future import Future, all_of, any_of
from repro.sim.kernel import Simulator, SimulationError, Timer
from repro.sim.process import Process
from repro.sim.randomness import (
    BatchedGeometric,
    BatchedStandardExponential,
    BatchedUniform,
    RandomStreams,
)

__all__ = [
    "BatchedGeometric",
    "BatchedStandardExponential",
    "BatchedUniform",
    "Future",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "Timer",
    "all_of",
    "any_of",
]
