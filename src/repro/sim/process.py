"""Generator-based coroutines driven by the simulator.

A process is a Python generator that yields *suspension points*:

* ``yield 0.25`` — sleep for 0.25 simulated seconds (ints work too);
* ``yield future`` — suspend until the :class:`~repro.sim.future.Future`
  resolves; the ``yield`` expression evaluates to its value;
* ``yield other_process`` — processes are futures, so joining a child is
  just yielding it.

The process itself is a :class:`~repro.sim.future.Future` whose value is
the generator's return value, so sequential protocol logic (clients,
coordinators) reads top-to-bottom while servers stay callback-driven.

Exceptions raised by an awaited future are thrown *into* the generator at
the yield point, so protocol code can use ordinary ``try/except``.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.future import Future


class Process(Future):
    """A running coroutine.  Create via :meth:`repro.sim.Simulator.spawn`."""

    __slots__ = ("_sim", "_generator")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:  # noqa: F821
        super().__init__()
        self._sim = sim
        self._generator = generator
        # Start on a fresh event so spawn() returns before the first step
        # runs; this avoids re-entrancy surprises when a process resolves
        # futures its spawner is also watching.
        sim.post(0.0, lambda: self._step(None, None))

    def _step(self, value: Any, exc: BaseException | None) -> None:
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            if not self.done:
                self.set_result(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate into future
            if not self.done:
                self.set_exception(error)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Future):
            yielded.add_done_callback(self._resume_from_future)
        elif isinstance(yielded, (int, float)):
            self._sim.post(float(yielded), lambda: self._step(None, None))
        else:
            self._step(
                None,
                TypeError(
                    f"process yielded {yielded!r}; expected a delay "
                    "(int/float) or a Future"
                ),
            )

    def _resume_from_future(self, future: Future) -> None:
        if future.exception is not None:
            self._step(None, future.exception)
        else:
            self._step(future.value, None)
