"""One-shot result containers used for asynchronous completion.

A :class:`Future` is resolved at most once, either with a value
(:meth:`Future.set_result`) or an exception (:meth:`Future.set_exception`).
Callbacks registered with :meth:`Future.add_done_callback` fire
synchronously at resolution time, in registration order.

Futures are the currency between the callback world (message handlers)
and the coroutine world (:class:`repro.sim.process.Process` generators can
``yield`` a future to suspend until it resolves).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional


class FutureError(Exception):
    """Raised on misuse of a future (double-resolve, unset result)."""


class Future:
    """A single-assignment, observable result.

    Unlike asyncio futures there is no event loop affinity; resolution
    runs callbacks immediately on the resolver's stack, which keeps the
    simulation deterministic (no hidden scheduling points).
    """

    __slots__ = ("_done", "_value", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        """Whether the future has been resolved (value or exception)."""
        return self._done

    @property
    def value(self) -> Any:
        """The resolved value; raises if unresolved or resolved to an error."""
        if not self._done:
            raise FutureError("future is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The resolved exception, or ``None``."""
        if not self._done:
            raise FutureError("future is not resolved yet")
        return self._exception

    def set_result(self, value: Any = None) -> None:
        """Resolve with ``value`` and run callbacks."""
        if self._done:
            raise FutureError("future already resolved")
        self._done = True
        self._value = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Resolve with an exception and run callbacks."""
        if self._done:
            raise FutureError("future already resolved")
        self._done = True
        self._exception = exc
        self._run_callbacks()

    def try_set_result(self, value: Any = None) -> bool:
        """Resolve if still pending; return whether this call resolved it.

        Useful when several racing paths (e.g. LECSF vs RECSF reads) may
        each try to deliver the same logical result.
        """
        if self._done:
            return False
        self.set_result(value)
        return True

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` at resolution; immediately if already done."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._done:
            state = "pending"
        elif self._exception is not None:
            state = f"error={self._exception!r}"
        else:
            state = f"value={self._value!r}"
        return f"<Future {state}>"


def all_of(futures: Iterable[Future]) -> Future:
    """A future resolving with the list of values once every input resolves.

    Resolution order does not matter; values are returned in input order.
    If any input resolves with an exception, the combined future resolves
    with the first such exception.
    """
    futures = list(futures)
    combined = Future()
    if not futures:
        combined.set_result([])
        return combined
    remaining = [len(futures)]

    def _on_done(_: Future) -> None:
        remaining[0] -= 1
        if remaining[0] == 0 and not combined.done:
            try:
                combined.set_result([f.value for f in futures])
            except BaseException as exc:  # noqa: BLE001 - propagate into future
                combined.set_exception(exc)

    for future in futures:
        future.add_done_callback(_on_done)
    return combined


def any_of(futures: Iterable[Future]) -> Future:
    """A future resolving with the value of the first input to resolve."""
    futures = list(futures)
    if not futures:
        raise ValueError("any_of requires at least one future")
    combined = Future()

    def _on_done(done: Future) -> None:
        if combined.done:
            return
        if done.exception is not None:
            combined.set_exception(done.exception)
        else:
            combined.set_result(done.value)

    for future in futures:
        future.add_done_callback(_on_done)
    return combined
