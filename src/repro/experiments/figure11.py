"""Figure 11: impact of network delay variance.

YCSB+T at 350 txn/s with Pareto-distributed delays whose std/mean ratio
sweeps 0-40%.  Natto's timestamps come from p95 delay estimates, so
rising variance means more late arrivals and (under contention) more
timestamp-order aborts — yet the paper finds Natto at 40% variance
still beats the baselines at 0%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    latency_point_spec,
    resolve_scale,
    sweep,
)
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import WorkloadSpec
from repro.harness.report import SeriesTable
from repro.harness.systems import AZURE_SYSTEMS
from repro.workloads import YcsbTWorkload

VARIANCES = (0.0, 5.0, 15.0, 40.0)  # percent (std/mean)
INPUT_RATE = 350


def run(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    variances: Optional[Sequence[float]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    scale = resolve_scale(scale)
    variances = tuple(variances or VARIANCES)
    tables = {
        "high": SeriesTable(
            "Figure 11 — 95P latency, high-priority vs delay variance "
            "(YCSB+T @350 txn/s)",
            "delay variance (%)",
            variances,
        )
    }
    spec_for = latency_point_spec(
        workload_spec_for=lambda v: WorkloadSpec.of(YcsbTWorkload),
        rate_for=lambda v: float(INPUT_RATE),
        settings_for=lambda v: scale.apply(
            ExperimentSettings(
                system_config=ExperimentSettings().system_config.with_overrides(
                    delay_variance_cv=v / 100.0
                )
            )
        ),
        repeats=scale.repeats,
        seed=seed,
        tag="fig11",
    )
    sweep(
        systems or AZURE_SYSTEMS,
        variances,
        spec_for,
        tables,
        {"high": lambda r: r.p95_high_ms()},
        jobs=jobs,
    )
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
