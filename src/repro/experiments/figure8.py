"""Figure 8: performance under high contention (Zipf coefficient sweep).

* (a) — YCSB+T, all systems, Zipf 0.65-0.95 at 50 txn/s.
* (b) — Retwis, the Azure line-up, Zipf 0.65-0.95 at 100 txn/s.

Raising the Zipfian coefficient concentrates accesses on a handful of
keys; OCC systems (Carousel, TAPIR) retry their way to order-of-
magnitude latency increases while Natto's timestamp order and priority
mechanisms keep the high-priority tail bounded.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    STANDARD_EXTRACT,
    high_low_tables,
    latency_point_spec,
    resolve_scale,
    sweep,
)
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import WorkloadSpec
from repro.harness.report import SeriesTable
from repro.harness.systems import ALL_SYSTEMS, AZURE_SYSTEMS
from repro.workloads import RetwisWorkload, YcsbTWorkload

ZIPF_COEFFICIENTS = (0.65, 0.75, 0.85, 0.95)


def _run_variant(
    title, tag, systems, workload_class, rate, scale, seed, zipfs=None,
    jobs=None,
) -> Dict[str, SeriesTable]:
    scale = resolve_scale(scale)
    zipfs = tuple(zipfs or ZIPF_COEFFICIENTS)
    tables = high_low_tables(title, "zipf coefficient", zipfs)
    spec_for = latency_point_spec(
        workload_spec_for=lambda theta: WorkloadSpec.of(
            workload_class, zipf_theta=theta
        ),
        rate_for=lambda theta: float(rate),
        settings_for=lambda theta: scale.apply(ExperimentSettings()),
        repeats=scale.repeats,
        seed=seed,
        tag=tag,
    )
    sweep(systems, zipfs, spec_for, tables, STANDARD_EXTRACT, jobs=jobs)
    return tables


def run_ycsbt(scale="bench", systems=None, seed=0, zipfs=None, jobs=None
              ) -> Dict[str, SeriesTable]:
    """Figure 8(a): YCSB+T at 50 txn/s."""
    return _run_variant(
        "Figure 8(a) YCSB+T @50 txn/s",
        "fig8-ycsbt",
        systems or ALL_SYSTEMS,
        YcsbTWorkload,
        50,
        scale,
        seed,
        zipfs,
        jobs,
    )


def run_retwis(scale="bench", systems=None, seed=0, zipfs=None, jobs=None
               ) -> Dict[str, SeriesTable]:
    """Figure 8(b): Retwis at 100 txn/s."""
    return _run_variant(
        "Figure 8(b) Retwis @100 txn/s",
        "fig8-retwis",
        systems or AZURE_SYSTEMS,
        RetwisWorkload,
        100,
        scale,
        seed,
        zipfs,
        jobs,
    )


def run(scale="bench", **kwargs) -> Dict[str, SeriesTable]:
    tables = {}
    for prefix, runner in (("ycsbt", run_ycsbt), ("retwis", run_retwis)):
        for key, table in runner(scale, **kwargs).items():
            tables[f"{prefix}.{key}"] = table
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
