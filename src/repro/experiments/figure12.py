"""Figure 12: impact of network packet loss.

YCSB+T at 100 txn/s with per-segment loss from 0 to 3%.  Loss acts two
ways (see :mod:`repro.net.loss`): retransmission latency on every
message, and a Mathis-bound bandwidth collapse that saturates the
systems pushing the most bytes first — Carousel Basic replicates
transactional data twice, so it and Natto-TS hit the wall around 1.5%,
Carousel Fast (full-replica fan-out) even earlier, while Natto-RECSF
survives to ~2.5% because commits leave the critical path sooner.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    latency_point_spec,
    resolve_scale,
    sweep,
)
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import WorkloadSpec
from repro.harness.report import SeriesTable
from repro.harness.systems import AZURE_SYSTEMS
from repro.net.loss import LossConfig
from repro.workloads import YcsbTWorkload

LOSS_RATES = (0.0, 1.0, 2.0, 3.0)  # percent
INPUT_RATE = 100


def run(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    loss_rates: Optional[Sequence[float]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    scale = resolve_scale(scale)
    loss_rates = tuple(loss_rates or LOSS_RATES)
    tables = {
        "high": SeriesTable(
            "Figure 12 — 95P latency, high-priority vs packet loss "
            "(YCSB+T @100 txn/s)",
            "packet loss (%)",
            loss_rates,
        )
    }
    spec_for = latency_point_spec(
        workload_spec_for=lambda loss: WorkloadSpec.of(YcsbTWorkload),
        rate_for=lambda loss: float(INPUT_RATE),
        settings_for=lambda loss: scale.apply(
            ExperimentSettings(
                system_config=ExperimentSettings().system_config.with_overrides(
                    loss=LossConfig(loss_rate=loss / 100.0)
                )
            )
        ),
        repeats=scale.repeats,
        seed=seed,
        tag="fig12",
    )
    sweep(
        systems or AZURE_SYSTEMS,
        loss_rates,
        spec_for,
        tables,
        {"high": lambda r: r.p95_high_ms()},
        jobs=jobs,
    )
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
