"""Figure 9: impact of the high-priority transaction percentage.

YCSB+T at 350 txn/s, sweeping the share of high-priority transactions
from 10% to 100%.  The paper shows only the prioritizing systems
(2PL+2PC and its P/POW variants, plus Natto-RECSF): plain 2PL is flat,
(P)/(POW) converge up to it as fewer low-priority victims exist, and
Natto stays low until high-priority transactions dominate the mix.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    latency_point_spec,
    resolve_scale,
    sweep,
)
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import WorkloadSpec
from repro.harness.report import SeriesTable
from repro.workloads import YcsbTWorkload

SYSTEMS = ("2PL+2PC", "2PL+2PC(P)", "2PL+2PC(POW)", "Natto-RECSF")
PERCENTAGES = (10, 40, 60, 80, 100)
INPUT_RATE = 350


def run(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    percentages: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    scale = resolve_scale(scale)
    percentages = tuple(percentages or PERCENTAGES)
    tables = {
        "high": SeriesTable(
            "Figure 9 — 95P latency, high-priority (YCSB+T @350 txn/s)",
            "high-priority %",
            percentages,
        )
    }
    spec_for = latency_point_spec(
        workload_spec_for=lambda pct: WorkloadSpec.of(
            YcsbTWorkload, high_priority_fraction=pct / 100.0
        ),
        rate_for=lambda pct: float(INPUT_RATE),
        settings_for=lambda pct: scale.apply(ExperimentSettings()),
        repeats=scale.repeats,
        seed=seed,
        tag="fig9",
    )
    sweep(
        systems or SYSTEMS,
        percentages,
        spec_for,
        tables,
        {"high": lambda r: r.p95_high_ms()},
        jobs=jobs,
    )
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
