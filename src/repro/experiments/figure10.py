"""Figure 10: SmallBank with sendPayment as the only high-priority type.

The paper plots the *increase ratio* of high-priority 95P latency at
each input rate relative to the latency at 100 txn/s.  At 6000 txn/s
the 2PL systems exceed a 200% increase while Natto-RECSF stays below
50% — prioritization holding up as total load grows.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    latency_point_spec,
    resolve_scale,
    sweep,
)
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import WorkloadSpec
from repro.harness.report import SeriesTable
from repro.workloads import SmallBankWorkload

SYSTEMS = ("2PL+2PC", "2PL+2PC(P)", "2PL+2PC(POW)", "Natto-RECSF")
RATES = (100, 1500, 3500, 6000)
BASELINE_RATE = 100


def run(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    rates: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    scale = resolve_scale(scale)
    rates = tuple(rates or RATES)
    if rates[0] != BASELINE_RATE:
        rates = (BASELINE_RATE,) + tuple(rates)
    tables = {
        "high": SeriesTable(
            "Figure 10 — 95P latency, sendPayment=high (SmallBank)",
            "input rate (txn/s)",
            rates,
        ),
        "increase": SeriesTable(
            "Figure 10 — 95P latency increase vs 100 txn/s",
            "input rate (txn/s)",
            rates,
            unit="%",
        ),
    }
    spec_for = latency_point_spec(
        workload_spec_for=lambda rate: WorkloadSpec.of(
            SmallBankWorkload, high_priority_types=frozenset({"send_payment"})
        ),
        rate_for=lambda rate: float(rate),
        settings_for=lambda rate: scale.apply(ExperimentSettings()),
        repeats=scale.repeats,
        seed=seed,
        tag="fig10",
    )

    def extract_high(result):
        return result.p95_ms(priority=None, txn_type="send_payment")

    sweep(
        systems or SYSTEMS,
        rates,
        spec_for,
        tables,
        {"high": extract_high},
        jobs=jobs,
    )
    # Derive the increase-ratio series from the absolute latencies.
    for name, values in tables["high"].series.items():
        baseline = values[0]
        for value in values:
            tables["increase"].add_point(
                name, 100.0 * (value - baseline) / baseline
            )
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
