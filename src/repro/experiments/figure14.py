"""Figure 14: peak throughput vs number of partitions.

The local-cluster setup: three simulated datacenters 4/6/8 ms apart,
Retwis with a **uniform** key distribution (contention out of the
picture), 2-12 partitions.  Peak throughput is CPU-bound: we offer load
beyond saturation and report committed goodput.  The paper's result —
every system scales roughly linearly with partitions, Carousel Basic
and Natto close together (8000 -> 17500 txn/s from 2 to 12 partitions)
— is a property of the per-message service-time model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cluster.clock import ClockConfig
from repro.experiments.common import resolve_scale, sweep, trace_label
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import PointSpec, WorkloadSpec
from repro.harness.report import SeriesTable
from repro.net.topology import local_cluster_topology
from repro.workloads import RetwisWorkload

SYSTEMS = (
    "2PL+2PC",
    "2PL+2PC(P)",
    "TAPIR",
    "Carousel Basic",
    "Carousel Fast",
    "Natto-RECSF",
)
PARTITIONS = (2, 4, 8, 12)
#: Offered load per partition — beyond each leader's service capacity,
#: so committed goodput reads out the saturation point.
OFFERED_PER_PARTITION = 2600
#: Per-message CPU cost for this experiment, calibrated so a partition
#: leader saturates in the paper's range (~1500 committed txn/s each).
SERVICE_TIME = 60e-6


def _settings(partitions: int, scale, service_time: float) -> ExperimentSettings:
    return scale.apply(
        ExperimentSettings(
            topology_factory=local_cluster_topology,
            clients_per_dc=4,
            system_config=ExperimentSettings().system_config.with_overrides(
                num_partitions=partitions,
                server_service_time=service_time,
                clock=ClockConfig(max_offset=0.0002),
            ),
            probe_warmup=1.5,
        )
    )


def run(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    partitions: Optional[Sequence[int]] = None,
    seed: int = 0,
    offered_per_partition: Optional[int] = None,
    service_time: Optional[float] = None,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    """``offered_per_partition``/``service_time`` let cheap runs saturate
    with fewer simulated events (higher CPU cost per message = earlier
    saturation = same linear-scaling shape at a fraction of the event
    count)."""
    scale = resolve_scale(scale)
    partitions = tuple(partitions or PARTITIONS)
    offered = offered_per_partition or OFFERED_PER_PARTITION
    cpu_cost = service_time or SERVICE_TIME
    tables = {
        "throughput": SeriesTable(
            "Figure 14 — peak throughput vs partitions "
            "(uniform Retwis, 3-DC local cluster)",
            "partitions",
            partitions,
            unit="txn/s",
        )
    }

    def spec_for(system_name: str, n_partitions: int) -> PointSpec:
        return PointSpec(
            system=system_name,
            x=n_partitions,
            input_rate=float(offered * n_partitions),
            workload=WorkloadSpec.of(RetwisWorkload, uniform_keys=1_000_000),
            settings=_settings(n_partitions, scale, cpu_cost).scaled(
                seed=seed,
                trace_label=trace_label("fig14", system_name, n_partitions),
            ),
            repeats=scale.repeats,
        )

    sweep(
        systems or SYSTEMS,
        partitions,
        spec_for,
        tables,
        {"throughput": lambda r: r.goodput()},
        jobs=jobs,
    )
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
