"""Shared machinery for the figure modules: scales and the sweep engine.

A sweep is built as a flat list of :class:`~repro.harness.parallel.PointSpec`
objects (one per system × x-value) and handed to
:func:`~repro.harness.parallel.run_points`, which fans them over worker
processes (``jobs`` workers, default all cores) or runs them in-process
(``jobs=1``).  Results come back in spec order, so the tables a sweep
fills are byte-identical however many workers ran it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.harness.experiment import ExperimentSettings, slugify
from repro.harness.parallel import PointSpec, WorkloadSpec, run_points
from repro.harness.report import SeriesTable
from repro.txn.priority import Priority


@dataclass(frozen=True)
class Scale:
    """How long and how often to run each point."""

    name: str
    duration: float
    trim: float
    repeats: int
    drain: float

    def apply(self, settings: ExperimentSettings) -> ExperimentSettings:
        return settings.scaled(
            duration=self.duration, trim=self.trim, drain=self.drain
        )


SCALES: Dict[str, Scale] = {
    "quick": Scale("quick", duration=4.0, trim=1.0, repeats=1, drain=6.0),
    "bench": Scale("bench", duration=6.0, trim=1.5, repeats=1, drain=10.0),
    "full": Scale("full", duration=60.0, trim=10.0, repeats=10, drain=30.0),
}


def resolve_scale(scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def trace_label(tag: Optional[str], system_name: str, x) -> Optional[str]:
    """Trace-export stem for one sweep point.

    Derived from (figure tag, system, x-value); the harness appends the
    run's seed.  Unique per point by construction — no shared counter,
    so parallel workers can't collide.
    """
    if tag is None:
        return None
    return f"{slugify(tag)}-{slugify(system_name)}-x{slugify(x)}"


def sweep(
    systems: Sequence[str],
    x_values: Sequence,
    spec_for: Callable[[str, object], PointSpec],
    tables: Dict[str, SeriesTable],
    extract: Dict[str, Callable[..., tuple]],
    progress: Optional[Callable[[str], None]] = print,
    jobs: Optional[int] = None,
) -> None:
    """Fill ``tables`` by sweeping every system over ``x_values``.

    ``spec_for`` maps (system label, x-value) to a
    :class:`~repro.harness.parallel.PointSpec`; ``extract`` maps a table
    key to a function producing ``(value, error)`` from a
    :class:`~repro.harness.experiment.RepeatedResult` (each key must
    exist in ``tables``).  Points run through
    :func:`~repro.harness.parallel.run_points` with ``jobs`` workers;
    tables fill in (system, x) order regardless of completion order.
    """
    specs = [spec_for(name, x) for name in systems for x in x_values]
    results = run_points(specs, jobs=jobs)
    for spec, result in zip(specs, results):
        system_name = result.system_name
        for key, fn in extract.items():
            value, error = fn(result)
            tables[key].add_point(system_name, value, error)
        if progress is not None:
            progress(
                f"[{system_name} @ {spec.x}] "
                + " ".join(
                    f"{key}={tables[key].series[system_name][-1]:.1f}"
                    for key in extract
                )
            )


def latency_point_spec(
    workload_spec_for: Callable[[object], WorkloadSpec],
    rate_for: Callable[[object], float],
    settings_for: Callable[[object], ExperimentSettings],
    repeats: int,
    seed: int = 0,
    tag: Optional[str] = None,
) -> Callable[[str, object], PointSpec]:
    """Build the standard ``spec_for`` used by most figures."""

    def spec_for(system_name: str, x) -> PointSpec:
        settings = settings_for(x).scaled(
            seed=seed, trace_label=trace_label(tag, system_name, x)
        )
        return PointSpec(
            system=system_name,
            x=x,
            input_rate=rate_for(x),
            workload=workload_spec_for(x),
            settings=settings,
            repeats=repeats,
        )

    return spec_for


def high_low_tables(
    title: str, x_label: str, x_values: Sequence
) -> Dict[str, SeriesTable]:
    """The common pair of tables: high-pri p95 and low-pri p95 (+goodput)."""
    return {
        "high": SeriesTable(
            f"{title} — 95P latency, high-priority", x_label, x_values
        ),
        "low": SeriesTable(
            f"{title} — 95P latency, low-priority", x_label, x_values
        ),
        "low_goodput": SeriesTable(
            f"{title} — committed low-priority txn/s",
            x_label,
            x_values,
            unit="txn/s",
        ),
    }


STANDARD_EXTRACT = {
    "high": lambda r: r.p95_high_ms(),
    "low": lambda r: r.p95_low_ms(),
    "low_goodput": lambda r: r.goodput(Priority.LOW),
}
