"""Shared machinery for the figure modules: scales and the sweep loop."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.harness.experiment import (
    ExperimentSettings,
    RepeatedResult,
    run_repeated,
)
from repro.harness.report import SeriesTable
from repro.harness.systems import make_system
from repro.txn.priority import Priority


@dataclass(frozen=True)
class Scale:
    """How long and how often to run each point."""

    name: str
    duration: float
    trim: float
    repeats: int
    drain: float

    def apply(self, settings: ExperimentSettings) -> ExperimentSettings:
        return settings.scaled(
            duration=self.duration, trim=self.trim, drain=self.drain
        )


SCALES: Dict[str, Scale] = {
    "quick": Scale("quick", duration=4.0, trim=1.0, repeats=1, drain=6.0),
    "bench": Scale("bench", duration=6.0, trim=1.5, repeats=1, drain=10.0),
    "full": Scale("full", duration=60.0, trim=10.0, repeats=10, drain=30.0),
}


def resolve_scale(scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def sweep(
    systems: Sequence[str],
    x_values: Sequence,
    run_point: Callable[[str, object], RepeatedResult],
    tables: Dict[str, SeriesTable],
    extract: Dict[str, Callable[[RepeatedResult], tuple]],
    progress: Optional[Callable[[str], None]] = print,
) -> None:
    """Fill ``tables`` by sweeping every system over ``x_values``.

    ``extract`` maps a table key to a function producing ``(value,
    error)`` from a :class:`RepeatedResult`; each key must exist in
    ``tables``.
    """
    for system_name in systems:
        for x in x_values:
            result = run_point(system_name, x)
            for key, fn in extract.items():
                value, error = fn(result)
                tables[key].add_point(system_name, value, error)
            if progress is not None:
                progress(
                    f"[{system_name} @ {x}] "
                    + " ".join(
                        f"{key}={tables[key].series[system_name][-1]:.1f}"
                        for key in extract
                    )
                )


def latency_point_runner(
    workload_factory_for: Callable[[object], Callable],
    rate_for: Callable[[object], float],
    settings_for: Callable[[object], ExperimentSettings],
    repeats: int,
    seed: int = 0,
) -> Callable[[str, object], RepeatedResult]:
    """Build the standard ``run_point`` used by most figures."""

    def run_point(system_name: str, x) -> RepeatedResult:
        return run_repeated(
            lambda: make_system(system_name),
            workload_factory_for(x),
            rate_for(x),
            settings_for(x).scaled(seed=seed),
            repeats=repeats,
        )

    return run_point


def high_low_tables(
    title: str, x_label: str, x_values: Sequence
) -> Dict[str, SeriesTable]:
    """The common pair of tables: high-pri p95 and low-pri p95 (+goodput)."""
    return {
        "high": SeriesTable(
            f"{title} — 95P latency, high-priority", x_label, x_values
        ),
        "low": SeriesTable(
            f"{title} — 95P latency, low-priority", x_label, x_values
        ),
        "low_goodput": SeriesTable(
            f"{title} — committed low-priority txn/s",
            x_label,
            x_values,
            unit="txn/s",
        ),
    }


STANDARD_EXTRACT = {
    "high": lambda r: r.p95_high_ms(),
    "low": lambda r: r.p95_low_ms(),
    "low_goodput": lambda r: r.goodput(Priority.LOW),
}
