"""Table 1: network round-trip delays between the five Azure DCs.

In the paper this is measurement data (from Domino); in this repository
it is the topology configuration — the "reproduction" verifies that the
simulator's measured round trips match the configured matrix, probing
through the real message path (including clock skew and service time).
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.node import Node
from repro.net.network import Network
from repro.net.probing import ProbeProxy, ProbeTargetMixin
from repro.net.topology import AZURE_DATACENTERS, azure_topology
from repro.sim import Simulator


class _Responder(ProbeTargetMixin, Node):
    pass


def measure_rtt_matrix(probe_seconds: float = 1.0) -> Dict[tuple, float]:
    """Measured round-trip delays (ms) between all datacenter pairs."""
    sim = Simulator()
    topology = azure_topology()
    network = Network(sim, topology)
    for dc in AZURE_DATACENTERS:
        network.register(_Responder(sim, f"server-{dc}", dc))
    proxies = {}
    for dc in AZURE_DATACENTERS:
        proxy = ProbeProxy(
            sim,
            network,
            dc,
            [f"server-{other}" for other in AZURE_DATACENTERS if other != dc],
        )
        proxy.start()
        proxies[dc] = proxy
    sim.run(until=probe_seconds + 0.5)

    measured = {}
    for src, proxy in proxies.items():
        for dst in AZURE_DATACENTERS:
            if dst == src:
                continue
            one_way = proxy.estimate(f"server-{dst}")
            if one_way is not None:
                measured[(src, dst)] = 2.0 * one_way * 1000.0
    return measured


def run(scale: str = "bench") -> Dict[tuple, float]:
    topology = azure_topology()
    measured = measure_rtt_matrix()
    print("== Table 1: Azure inter-datacenter RTTs (ms) ==")
    print(f"{'pair':12s} {'paper':>8s} {'measured':>9s}")
    for (a, b), paper_value in sorted(
        {
            pair: topology.rtt(*pair)
            for pair in measured
            if pair[0] < pair[1]
        }.items()
    ):
        print(f"{a+'-'+b:12s} {paper_value:8.0f} {measured[(a, b)]:9.1f}")
    return measured


if __name__ == "__main__":
    run()
