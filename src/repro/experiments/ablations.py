"""Ablations of Natto's design choices (beyond the paper's figures).

DESIGN.md calls out three load-bearing choices that the paper sweeps
only implicitly; each gets an explicit ablation here:

* **Timestamp margin** — headroom added to the p95 delay estimate.
  Too little: requests arrive after their own timestamps and abort
  (under contention); too much: every transaction waits longer than
  necessary.  Sweep 0 / 2 ms (default) / 20 ms.
* **PA skip rule** — §3.3.1's completion-time estimate that spares a
  low-priority transaction about to finish anyway.  Off = always
  abort: high-priority latency improves marginally, low-priority abort
  rates climb.
* **Probe cadence** — how fresh the delay estimates are (probe
  interval x window).  Sparse probing degrades estimate quality, which
  shows up as late-arrival aborts once delays jitter.

Run: ``python -m repro.experiments ablations [--scale quick]``.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional, Sequence

from repro.core import Natto
from repro.core.config import natto_recsf
from repro.experiments.common import resolve_scale, trace_label
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import PointSpec, WorkloadSpec, run_points
from repro.harness.report import SeriesTable
from repro.txn.priority import Priority
from repro.workloads import YcsbTWorkload

INPUT_RATE = 250


def _spec(config, settings, scale, seed, tag, x) -> PointSpec:
    """One ablation point: an unregistered Natto variant, so the system
    travels as a ``functools.partial`` factory instead of a registry
    label."""
    return PointSpec(
        system=partial(Natto, config),
        x=x,
        input_rate=float(INPUT_RATE),
        workload=WorkloadSpec.of(YcsbTWorkload),
        settings=scale.apply(settings).scaled(
            seed=seed, trace_label=trace_label(tag, "Natto-RECSF", x)
        ),
        repeats=scale.repeats,
    )


def run_timestamp_margin(
    scale="bench",
    margins_ms: Sequence[float] = (0.0, 2.0, 20.0),
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    """Margin sweep under mild jitter (where under-prediction bites)."""
    scale = resolve_scale(scale)
    tables = {
        "high": SeriesTable(
            "Ablation: timestamp margin — 95P high-priority latency "
            f"(YCSB+T @{INPUT_RATE} txn/s, 2% delay jitter)",
            "margin (ms)",
            margins_ms,
        ),
    }
    settings = ExperimentSettings(
        system_config=ExperimentSettings().system_config.with_overrides(
            delay_variance_cv=0.02
        )
    )
    specs = [
        _spec(
            natto_recsf(timestamp_margin=margin / 1000.0),
            settings,
            scale,
            seed,
            "abl-margin",
            margin,
        )
        for margin in margins_ms
    ]
    for result in run_points(specs, jobs=jobs):
        tables["high"].add_point("Natto-RECSF", *result.p95_high_ms())
    return tables


def run_pa_skip_rule(
    scale="bench", seed: int = 0, jobs: Optional[int] = None
) -> Dict[str, SeriesTable]:
    """The completion-time skip rule on vs off."""
    scale = resolve_scale(scale)
    variants = ("skip rule on", "skip rule off")
    tables = {
        "high": SeriesTable(
            "Ablation: PA skip rule — 95P high-priority latency",
            "variant",
            variants,
        ),
        "low": SeriesTable(
            "Ablation: PA skip rule — 95P low-priority latency",
            "variant",
            variants,
        ),
    }
    specs = [
        _spec(
            natto_recsf(pa_skip_rule=flag),
            ExperimentSettings(),
            scale,
            seed,
            "abl-skip-rule",
            label,
        )
        for label, flag in (("skip rule on", True), ("skip rule off", False))
    ]
    for result in run_points(specs, jobs=jobs):
        tables["high"].add_point("Natto-RECSF", *result.p95_high_ms())
        tables["low"].add_point("Natto-RECSF", *result.p95_low_ms())
    return tables


def run_probe_cadence(
    scale="bench",
    intervals_ms: Sequence[float] = (10.0, 100.0, 500.0),
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    """Probe interval sweep under jitter (estimate freshness)."""
    scale = resolve_scale(scale)
    tables = {
        "high": SeriesTable(
            "Ablation: probe interval — 95P high-priority latency "
            "(15% delay variance)",
            "probe interval (ms)",
            intervals_ms,
        ),
    }
    specs = []
    for interval in intervals_ms:
        settings = ExperimentSettings(
            system_config=ExperimentSettings().system_config.with_overrides(
                delay_variance_cv=0.15,
                probe_interval=interval / 1000.0,
            )
        )
        specs.append(
            _spec(natto_recsf(), settings, scale, seed, "abl-probes", interval)
        )
    for result in run_points(specs, jobs=jobs):
        tables["high"].add_point("Natto-RECSF", *result.p95_high_ms())
    return tables


def run(scale="bench", **kwargs) -> Dict[str, SeriesTable]:
    tables = {}
    for prefix, runner in (
        ("margin", run_timestamp_margin),
        ("skip_rule", run_pa_skip_rule),
        ("probes", run_probe_cadence),
    ):
        for key, table in runner(scale, **kwargs).items():
            tables[f"{prefix}.{key}"] = table
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
