"""Reproductions of every table and figure in the paper's evaluation.

One module per exhibit; each exposes ``run(scale=...) -> dict of
SeriesTable`` and can be invoked from the command line::

    python -m repro.experiments fig7a --scale quick
    python -m repro.experiments fig11 --scale full
    python -m repro.experiments all --scale bench

Scales trade fidelity for wall-clock time (the paper's runs are 60 s,
repeated 10x, which costs hours of host CPU on a simulator):

* ``quick`` — smoke test: short runs, single repetition, sparse grids.
* ``bench`` — the defaults used by ``benchmarks/``: enough to read the
  shape (who wins, by what factor, where crossovers fall).
* ``full``  — the paper's durations, repetitions, and full grids.

The mapping from exhibits to modules lives in DESIGN.md; measured-vs-
paper numbers live in EXPERIMENTS.md.
"""

from repro.experiments.common import SCALES, Scale

__all__ = ["SCALES", "Scale"]
