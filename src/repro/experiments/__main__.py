"""Command-line entry point for the experiment suite.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig7a --scale quick
    python -m repro.experiments fig7a --systems "Natto-RECSF" "Carousel Basic"
    python -m repro.experiments all --scale bench
    python -m repro.experiments fig11 --scale full   # paper-scale (slow!)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from repro.harness import experiment as experiment_module
from repro.experiments import (
    ablations,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    table1,
)

EXHIBITS: Dict[str, Callable] = {
    "ablations": lambda scale, systems, jobs: ablations.run(scale, jobs=jobs),
    "table1": lambda scale, systems, jobs: table1.run(scale),
    "fig7a": lambda scale, systems, jobs: figure7.run_ycsbt(
        scale, systems, jobs=jobs
    ),
    "fig7c": lambda scale, systems, jobs: figure7.run_retwis(
        scale, systems, jobs=jobs
    ),
    "fig7e": lambda scale, systems, jobs: figure7.run_smallbank(
        scale, systems, jobs=jobs
    ),
    "fig8a": lambda scale, systems, jobs: figure8.run_ycsbt(
        scale, systems, jobs=jobs
    ),
    "fig8b": lambda scale, systems, jobs: figure8.run_retwis(
        scale, systems, jobs=jobs
    ),
    "fig9": lambda scale, systems, jobs: figure9.run(scale, systems, jobs=jobs),
    "fig10": lambda scale, systems, jobs: figure10.run(
        scale, systems, jobs=jobs
    ),
    "fig11": lambda scale, systems, jobs: figure11.run(
        scale, systems, jobs=jobs
    ),
    "fig12": lambda scale, systems, jobs: figure12.run(
        scale, systems, jobs=jobs
    ),
    "fig13": lambda scale, systems, jobs: figure13.run(
        scale, systems, jobs=jobs
    ),
    "fig14": lambda scale, systems, jobs: figure14.run(
        scale, systems, jobs=jobs
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibit",
        choices=sorted(EXHIBITS) + ["all"],
        help="which exhibit to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "bench", "full"),
        default="bench",
        help="run length/repetitions preset (default: bench)",
    )
    parser.add_argument(
        "--systems",
        nargs="+",
        default=None,
        help="restrict to a subset of systems (paper labels)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="enable tracing and export one .trace.jsonl per run into "
        "DIR (inspect with python -m repro.trace)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep points (default: all cores; "
        "1 = run in-process). Results are identical at any job count.",
    )
    args = parser.parse_args(argv)

    if args.trace is not None:
        # Construction-time defaults: every ExperimentSettings built
        # after this point carries the trace config with it, so worker
        # processes never need to see these globals.
        experiment_module.DEFAULT_TRACING = True
        experiment_module.TRACE_DIR = args.trace
        os.makedirs(args.trace, exist_ok=True)

    names = sorted(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        started = time.time()
        print(f"\n##### {name} (scale={args.scale}) #####")
        result = EXHIBITS[name](args.scale, args.systems, args.jobs)
        if isinstance(result, dict):
            for value in result.values():
                if hasattr(value, "print"):
                    value.print()
        print(f"##### {name} done in {time.time() - started:.0f}s #####")
    return 0


if __name__ == "__main__":
    sys.exit(main())
