"""Figure 13: hybrid cloud (AWS + Azure).

Retwis at 1000 txn/s with VA/WA replaced by AWS us-east/us-west; the
cross-provider links carry higher jitter (the property the experiment
probes — Natto's measurements must cope with a less uniform network).
A bar chart in the paper; a one-row table here.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    latency_point_spec,
    resolve_scale,
    sweep,
)
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import WorkloadSpec
from repro.harness.report import SeriesTable
from repro.harness.systems import AZURE_SYSTEMS
from repro.net.topology import hybrid_cloud_topology
from repro.workloads import RetwisWorkload

INPUT_RATE = 1000
#: Baseline jitter (std/mean) on same-provider links; cross-provider
#: links are scaled up by the topology's jitter multiplier.
BASE_JITTER_CV = 0.01


def run(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    scale = resolve_scale(scale)
    tables = {
        "high": SeriesTable(
            "Figure 13 — 95P latency, high-priority, hybrid AWS+Azure "
            "(Retwis @1000 txn/s)",
            "deployment",
            ("hybrid",),
        )
    }
    spec_for = latency_point_spec(
        workload_spec_for=lambda _: WorkloadSpec.of(RetwisWorkload),
        rate_for=lambda _: float(INPUT_RATE),
        settings_for=lambda _: scale.apply(
            ExperimentSettings(
                topology_factory=hybrid_cloud_topology,
                system_config=ExperimentSettings().system_config.with_overrides(
                    delay_variance_cv=BASE_JITTER_CV
                ),
            )
        ),
        repeats=scale.repeats,
        seed=seed,
        tag="fig13",
    )
    sweep(
        systems or AZURE_SYSTEMS,
        ("hybrid",),
        spec_for,
        tables,
        {"high": lambda r: r.p95_high_ms()},
        jobs=jobs,
    )
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
