"""Figure 7: impact of transaction input rate (all six sub-figures).

* (a)/(b) — YCSB+T on the emulated-WAN cluster, all eleven systems,
  input rates 50-350 txn/s.
* (c)/(d) — Retwis on the Azure deployment, eight systems, 100-1500.
* (e)/(f) — SmallBank on Azure, eight systems, 500-2000.

The (b)/(d)/(f) sub-figures plot low-priority 95P latency against
committed goodput; we report both series against input rate, which
carries the same information as the paper's parametric plot.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    SCALES,
    STANDARD_EXTRACT,
    high_low_tables,
    latency_point_spec,
    resolve_scale,
    sweep,
)
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import WorkloadSpec
from repro.harness.report import SeriesTable
from repro.harness.systems import ALL_SYSTEMS, AZURE_SYSTEMS
from repro.workloads import RetwisWorkload, SmallBankWorkload, YcsbTWorkload

RATES_YCSBT = (50, 150, 250, 350)
RATES_RETWIS = (100, 500, 1000, 1500)
RATES_SMALLBANK = (500, 1000, 1500, 2000)


def _run_variant(
    title: str,
    tag: str,
    systems: Sequence[str],
    rates: Sequence[int],
    workload_cls: type,
    scale,
    seed: int,
    jobs: Optional[int],
) -> Dict[str, SeriesTable]:
    scale = resolve_scale(scale)
    tables = high_low_tables(title, "input rate (txn/s)", rates)
    spec_for = latency_point_spec(
        workload_spec_for=lambda rate: WorkloadSpec.of(workload_cls),
        rate_for=lambda rate: float(rate),
        settings_for=lambda rate: scale.apply(ExperimentSettings()),
        repeats=scale.repeats,
        seed=seed,
        tag=tag,
    )
    sweep(systems, rates, spec_for, tables, STANDARD_EXTRACT, jobs=jobs)
    return tables


def run_ycsbt(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    rates: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    """Figure 7 (a) and (b)."""
    return _run_variant(
        "Figure 7(a/b) YCSB+T",
        "fig7-ycsbt",
        systems or ALL_SYSTEMS,
        rates or RATES_YCSBT,
        YcsbTWorkload,
        scale,
        seed,
        jobs,
    )


def run_retwis(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    rates: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    """Figure 7 (c) and (d)."""
    return _run_variant(
        "Figure 7(c/d) Retwis",
        "fig7-retwis",
        systems or AZURE_SYSTEMS,
        rates or RATES_RETWIS,
        RetwisWorkload,
        scale,
        seed,
        jobs,
    )


def run_smallbank(
    scale="bench",
    systems: Optional[Sequence[str]] = None,
    rates: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SeriesTable]:
    """Figure 7 (e) and (f)."""
    return _run_variant(
        "Figure 7(e/f) SmallBank",
        "fig7-smallbank",
        systems or AZURE_SYSTEMS,
        rates or RATES_SMALLBANK,
        SmallBankWorkload,
        scale,
        seed,
        jobs,
    )


def run(scale="bench", **kwargs) -> Dict[str, SeriesTable]:
    tables = {}
    for prefix, runner in (
        ("ycsbt", run_ycsbt),
        ("retwis", run_retwis),
        ("smallbank", run_smallbank),
    ):
        for key, table in runner(scale, **kwargs).items():
            tables[f"{prefix}.{key}"] = table
    return tables


if __name__ == "__main__":
    for table in run().values():
        table.print()
