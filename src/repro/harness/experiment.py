"""Run one experiment: deploy, drive load, measure.

Measurement follows §5.1:

* clients are application servers in every datacenter (two per DC by
  default), all generating transactions at the same rate; the
  *transaction input rate* is the total across clients and counts only
  new transactions, not retries;
* aborted transactions retry immediately; 100 failed retries mark the
  transaction failed and drop it from latency stats;
* the measurement window trims a warm-up and cool-down interval (the
  paper trims 10 s off both ends of a 60 s run — scaled runs trim
  proportionally);
* experiments are repeated with independent seeds; aggregates carry a
  95% confidence interval.

Simulated durations are configurable because a full 60 s x 10 repeats
paper run is hours of host CPU; the benchmark suite uses scaled-down
defaults and the CLI exposes ``--full`` for paper-scale runs.
"""

from __future__ import annotations

import math
import os
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.net.topology import Topology, azure_topology
from repro.obs.core import Observability
from repro.systems.base import Cluster, SystemConfig, TransactionSystem
from repro.systems.client import ClientDriver
from repro.txn.priority import Priority
from repro.txn.stats import StatsCollector
from repro.workloads.base import Workload

SystemFactory = Callable[[], TransactionSystem]
WorkloadFactory = Callable[[np.random.Generator], Workload]

#: Process-wide default for :attr:`ExperimentSettings.tracing`; the
#: experiments CLI flips this with ``--trace DIR`` so every run in the
#: sweep is traced without threading a flag through each figure module.
DEFAULT_TRACING: bool = False

#: When set (a directory path), every traced run exports its span/event
#: stream as ``<system>-r<rate>-seed<seed>.trace.jsonl`` under it.
TRACE_DIR: Optional[str] = None

#: Export-name collision counter: sweeps over a non-rate x-axis reuse
#: (system, rate, seed), so repeats get a ``.2``, ``.3``, ... suffix
#: instead of overwriting the earlier point's trace.
_EXPORT_COUNTS: Dict[str, int] = {}


@dataclass(frozen=True)
class ExperimentSettings:
    """Deployment and measurement parameters."""

    topology_factory: Callable[[], Topology] = azure_topology
    system_config: SystemConfig = field(default_factory=SystemConfig)
    clients_per_dc: int = 2
    duration: float = 20.0      # load-generation span (paper: 60 s)
    trim: float = 4.0           # cut from both ends (paper: 10 s)
    probe_warmup: float = 2.0   # delay-estimate warm-up before load
    drain: float = 15.0         # post-load settling time
    seed: int = 0
    #: Attach an :class:`~repro.obs.core.Observability` to the run's
    #: simulator (spans, events, metrics).  Defaults to the module-level
    #: :data:`DEFAULT_TRACING` so the CLI can switch whole sweeps.
    tracing: bool = field(default_factory=lambda: DEFAULT_TRACING)

    def scaled(self, **overrides) -> "ExperimentSettings":
        return replace(self, **overrides)


@dataclass
class ExperimentResult:
    """Stats plus the measurement window, with the paper's metrics."""

    system_name: str
    stats: StatsCollector
    window: tuple
    input_rate: float
    #: The deployed system object (stores, counters) for post-hoc
    #: inspection; None after serialization.
    system: Optional[TransactionSystem] = None
    #: The run's observability context when tracing was on (spans,
    #: events, live metrics); None otherwise.
    obs: Optional[Observability] = None
    #: JSON-able metrics/trace-volume snapshot taken at the end of the
    #: run (survives dropping ``obs``); None when tracing was off.
    obs_snapshot: Optional[dict] = None

    def p95_ms(
        self,
        priority: Optional[Priority] = None,
        txn_type: Optional[str] = None,
    ) -> float:
        return 1000.0 * self.stats.p95_latency(
            priority, self.window, txn_type
        )

    @property
    def p95_high_ms(self) -> float:
        return self.p95_ms(Priority.HIGH)

    @property
    def p95_low_ms(self) -> float:
        return self.p95_ms(Priority.LOW)

    def goodput(self, priority: Optional[Priority] = None) -> float:
        return self.stats.goodput(self.window, priority)

    @property
    def committed_per_second(self) -> float:
        return self.goodput()


def run_experiment(
    system_factory: SystemFactory,
    workload_factory: WorkloadFactory,
    input_rate: float,
    settings: ExperimentSettings = ExperimentSettings(),
) -> ExperimentResult:
    """One run of one system at one input rate."""
    system = system_factory()
    cluster = Cluster(
        settings.topology_factory(), settings.system_config, settings.seed
    )
    obs = Observability().attach(cluster.sim) if settings.tracing else None
    system.setup(cluster)
    stats = StatsCollector()
    workload = workload_factory(cluster.streams.stream("workload"))

    clients: List[ClientDriver] = []
    for dc in cluster.topology.datacenters:
        for i in range(settings.clients_per_dc):
            name = f"client-{dc}-{i}"
            client = ClientDriver(
                cluster.sim,
                cluster.network,
                name,
                dc,
                system,
                stats,
                clock=cluster.make_clock(name),
            )
            client.use_streams(cluster.streams)
            clients.append(client)

    per_client_rate = input_rate / len(clients)
    load_start = settings.probe_warmup
    load_end = load_start + settings.duration

    def start_load() -> None:
        for client in clients:
            client.run_open_loop(workload, per_client_rate, until=load_end)

    cluster.sim.schedule(load_start, start_load)
    cluster.sim.run(until=load_end + settings.drain)

    window = (load_start + settings.trim, load_end - settings.trim)
    snapshot = None
    if obs is not None:
        snapshot = obs.snapshot()
        if TRACE_DIR is not None:
            _export_trace(obs, system.name, settings, input_rate)
    return ExperimentResult(
        system.name, stats, window, input_rate, system,
        obs=obs, obs_snapshot=snapshot,
    )


def _export_trace(
    obs: Observability,
    system_name: str,
    settings: ExperimentSettings,
    input_rate: float,
) -> None:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", system_name)
    os.makedirs(TRACE_DIR, exist_ok=True)
    base = f"{slug}-r{input_rate:g}-seed{settings.seed}"
    count = _EXPORT_COUNTS.get(base, 0) + 1
    _EXPORT_COUNTS[base] = count
    name = base if count == 1 else f"{base}.{count}"
    path = os.path.join(TRACE_DIR, f"{name}.trace.jsonl")
    obs.export_jsonl(
        path,
        meta={
            "system": system_name,
            "seed": settings.seed,
            "input_rate": input_rate,
            "duration": settings.duration,
        },
    )


@dataclass
class RepeatedResult:
    """Mean and 95% CI over independent repetitions."""

    system_name: str
    input_rate: float
    results: List[ExperimentResult]

    def _ci(self, values: Sequence[float]) -> tuple:
        values = [v for v in values if not math.isnan(v)]
        if not values:
            return (float("nan"), float("nan"))
        mean = float(np.mean(values))
        if len(values) == 1:
            return (mean, 0.0)
        half = 1.96 * float(np.std(values, ddof=1)) / math.sqrt(len(values))
        return (mean, half)

    def p95_high_ms(self) -> tuple:
        return self._ci([r.p95_high_ms for r in self.results])

    def p95_low_ms(self) -> tuple:
        return self._ci([r.p95_low_ms for r in self.results])

    def p95_ms(self, **kwargs) -> tuple:
        return self._ci([r.p95_ms(**kwargs) for r in self.results])

    def goodput(self, priority: Optional[Priority] = None) -> tuple:
        return self._ci([r.goodput(priority) for r in self.results])


def run_repeated(
    system_factory: SystemFactory,
    workload_factory: WorkloadFactory,
    input_rate: float,
    settings: ExperimentSettings = ExperimentSettings(),
    repeats: int = 3,
) -> RepeatedResult:
    """Repeat a run with independent seeds (paper: 10 repetitions)."""
    results = []
    for repetition in range(repeats):
        run_settings = settings.scaled(
            seed=settings.seed * 1000 + repetition
        )
        results.append(
            run_experiment(
                system_factory, workload_factory, input_rate, run_settings
            )
        )
    return RepeatedResult(results[0].system_name, input_rate, results)
