"""Run one experiment: deploy, drive load, measure.

Measurement follows §5.1:

* clients are application servers in every datacenter (two per DC by
  default), all generating transactions at the same rate; the
  *transaction input rate* is the total across clients and counts only
  new transactions, not retries;
* aborted transactions retry immediately; 100 failed retries mark the
  transaction failed and drop it from latency stats;
* the measurement window trims a warm-up and cool-down interval (the
  paper trims 10 s off both ends of a 60 s run — scaled runs trim
  proportionally);
* experiments are repeated with independent seeds; aggregates carry a
  95% confidence interval.

Simulated durations are configurable because a full 60 s x 10 repeats
paper run is hours of host CPU; the benchmark suite uses scaled-down
defaults and the CLI exposes ``--full`` for paper-scale runs.
"""

from __future__ import annotations

import math
import os
import re
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.net.topology import Topology, azure_topology
from repro.obs.core import Observability
from repro.systems.base import Cluster, SystemConfig, TransactionSystem
from repro.systems.client import ClientDriver
from repro.txn.priority import Priority
from repro.txn.stats import StatsCollector
from repro.workloads.base import Workload

SystemFactory = Callable[[], TransactionSystem]
WorkloadFactory = Callable[[np.random.Generator], Workload]

#: Process-wide default for :attr:`ExperimentSettings.tracing`; the
#: experiments CLI flips this with ``--trace DIR`` so every run in the
#: sweep is traced without threading a flag through each figure module.
#: Resolved into each :class:`ExperimentSettings` at construction time
#: (in the parent process), so parallel workers never consult it.
DEFAULT_TRACING: bool = False

#: Process-wide default for :attr:`ExperimentSettings.trace_dir`, set by
#: the CLI's ``--trace DIR``.  Like :data:`DEFAULT_TRACING` it is only a
#: construction-time default — the resolved value travels inside the
#: settings object to workers, which never read this global.
TRACE_DIR: Optional[str] = None


def seed_schedule(base_seed: int, repeats: int) -> tuple:
    """Per-repetition seeds for ``repeats`` runs of base seed ``base_seed``.

    The mapping is ``base_seed * stride + repetition`` with ``stride =
    max(1000, repeats)``: for any two distinct (base seed, repetition)
    pairs produced by one call the seeds differ, because repetition
    indexes never reach the stride.  For up to 1000 repetitions (the
    paper uses 10) the stride is pinned at 1000, which reproduces the
    historical ``seed * 1000 + repetition`` derivation exactly — every
    existing figure keeps its numbers.  Beyond 1000 repetitions the
    stride grows instead of silently colliding with the next base
    seed's block, which the old fixed multiplier did.
    """
    if repeats < 0:
        raise ValueError(f"repeats must be non-negative, got {repeats}")
    stride = max(1000, repeats)
    return tuple(base_seed * stride + rep for rep in range(repeats))


@dataclass(frozen=True)
class ExperimentSettings:
    """Deployment and measurement parameters."""

    topology_factory: Callable[[], Topology] = azure_topology
    system_config: SystemConfig = field(default_factory=SystemConfig)
    clients_per_dc: int = 2
    duration: float = 20.0      # load-generation span (paper: 60 s)
    trim: float = 4.0           # cut from both ends (paper: 10 s)
    probe_warmup: float = 2.0   # delay-estimate warm-up before load
    drain: float = 15.0         # post-load settling time
    seed: int = 0
    #: Attach an :class:`~repro.obs.core.Observability` to the run's
    #: simulator (spans, events, metrics).  Defaults to the module-level
    #: :data:`DEFAULT_TRACING` so the CLI can switch whole sweeps.
    tracing: bool = field(default_factory=lambda: DEFAULT_TRACING)
    #: Directory for per-run trace exports when tracing is on; resolved
    #: from the module-level :data:`TRACE_DIR` default at construction
    #: time so the value travels with the settings into worker
    #: processes.  ``None`` disables export.
    trace_dir: Optional[str] = field(default_factory=lambda: TRACE_DIR)
    #: Filename stem for this run's trace export, normally derived by
    #: the sweep machinery from (figure tag, system, x-value); the run's
    #: seed is always appended, which keeps names collision-free across
    #: repetitions and parallel workers without any shared counter.
    trace_label: Optional[str] = None

    def scaled(self, **overrides) -> "ExperimentSettings":
        return replace(self, **overrides)


@dataclass
class ExperimentResult:
    """Stats plus the measurement window, with the paper's metrics."""

    system_name: str
    stats: StatsCollector
    window: tuple
    input_rate: float
    #: The deployed system object (stores, counters) for post-hoc
    #: inspection; None after serialization.
    system: Optional[TransactionSystem] = None
    #: The run's observability context when tracing was on (spans,
    #: events, live metrics); None otherwise.
    obs: Optional[Observability] = None
    #: JSON-able metrics/trace-volume snapshot taken at the end of the
    #: run (survives dropping ``obs``); None when tracing was off.
    obs_snapshot: Optional[dict] = None

    def p95_ms(
        self,
        priority: Optional[Priority] = None,
        txn_type: Optional[str] = None,
    ) -> float:
        return 1000.0 * self.stats.p95_latency(
            priority, self.window, txn_type
        )

    @property
    def p95_high_ms(self) -> float:
        return self.p95_ms(Priority.HIGH)

    @property
    def p95_low_ms(self) -> float:
        return self.p95_ms(Priority.LOW)

    def goodput(self, priority: Optional[Priority] = None) -> float:
        return self.stats.goodput(self.window, priority)

    @property
    def committed_per_second(self) -> float:
        return self.goodput()

    def detach(self) -> "ExperimentResult":
        """A transportable copy: no live ``system``/``obs`` objects.

        The detached result pickles cheaply (transaction records plus
        the JSON-able ``obs_snapshot``) and still answers every metric
        query — parallel workers ship these back to the parent, which
        is why serial and parallel sweeps extract identical numbers.
        """
        if self.system is None and self.obs is None:
            return self
        return replace(self, system=None, obs=None)


def run_experiment(
    system_factory: SystemFactory,
    workload_factory: WorkloadFactory,
    input_rate: float,
    settings: ExperimentSettings = ExperimentSettings(),
) -> ExperimentResult:
    """One run of one system at one input rate."""
    system = system_factory()
    cluster = Cluster(
        settings.topology_factory(), settings.system_config, settings.seed
    )
    obs = Observability().attach(cluster.sim) if settings.tracing else None
    system.setup(cluster)
    stats = StatsCollector()
    workload = workload_factory(cluster.streams.stream("workload"))

    clients: List[ClientDriver] = []
    for dc in cluster.topology.datacenters:
        for i in range(settings.clients_per_dc):
            name = f"client-{dc}-{i}"
            client = ClientDriver(
                cluster.sim,
                cluster.network,
                name,
                dc,
                system,
                stats,
                clock=cluster.make_clock(name),
            )
            client.use_streams(cluster.streams)
            clients.append(client)

    per_client_rate = input_rate / len(clients)
    load_start = settings.probe_warmup
    load_end = load_start + settings.duration

    def start_load() -> None:
        for client in clients:
            client.run_open_loop(workload, per_client_rate, until=load_end)

    cluster.sim.schedule(load_start, start_load)
    cluster.sim.run(until=load_end + settings.drain)

    window = (load_start + settings.trim, load_end - settings.trim)
    snapshot = None
    if obs is not None:
        snapshot = obs.snapshot()
        if settings.trace_dir is not None:
            _export_trace(obs, system.name, settings, input_rate)
    return ExperimentResult(
        system.name, stats, window, input_rate, system,
        obs=obs, obs_snapshot=snapshot,
    )


def slugify(text) -> str:
    """Filename-safe form of a system label or x-value."""
    return re.sub(r"[^a-z0-9._-]+", "-", str(text).lower()).strip("-")


def _export_trace(
    obs: Observability,
    system_name: str,
    settings: ExperimentSettings,
    input_rate: float,
) -> None:
    """Write the run's trace under ``settings.trace_dir``.

    The name comes entirely from the run's own settings — the sweep
    machinery bakes (figure tag, system, x-value) into ``trace_label``
    and every repetition has a distinct seed (:func:`seed_schedule`) —
    so concurrent workers can't collide and no shared counter is
    needed.  ``makedirs(exist_ok=True)`` is atomic enough for the
    parallel case: the first worker (or the CLI, which pre-creates the
    directory) wins and the rest pass through.
    """
    stem = settings.trace_label or (
        f"{slugify(system_name)}-r{input_rate:g}"
    )
    os.makedirs(settings.trace_dir, exist_ok=True)
    path = os.path.join(
        settings.trace_dir, f"{stem}-seed{settings.seed}.trace.jsonl"
    )
    obs.export_jsonl(
        path,
        meta={
            "system": system_name,
            "seed": settings.seed,
            "input_rate": input_rate,
            "duration": settings.duration,
        },
    )


@dataclass
class RepeatedResult:
    """Mean and 95% CI over independent repetitions."""

    system_name: str
    input_rate: float
    results: List[ExperimentResult]

    def _ci(self, values: Sequence[float]) -> tuple:
        values = [v for v in values if not math.isnan(v)]
        if not values:
            return (float("nan"), float("nan"))
        mean = float(np.mean(values))
        if len(values) == 1:
            return (mean, 0.0)
        half = 1.96 * float(np.std(values, ddof=1)) / math.sqrt(len(values))
        return (mean, half)

    def p95_high_ms(self) -> tuple:
        return self._ci([r.p95_high_ms for r in self.results])

    def p95_low_ms(self) -> tuple:
        return self._ci([r.p95_low_ms for r in self.results])

    def p95_ms(self, **kwargs) -> tuple:
        return self._ci([r.p95_ms(**kwargs) for r in self.results])

    def goodput(self, priority: Optional[Priority] = None) -> tuple:
        return self._ci([r.goodput(priority) for r in self.results])


def run_repeated(
    system_factory: SystemFactory,
    workload_factory: WorkloadFactory,
    input_rate: float,
    settings: ExperimentSettings = ExperimentSettings(),
    repeats: int = 3,
) -> RepeatedResult:
    """Repeat a run with independent seeds (paper: 10 repetitions).

    Per-repetition seeds come from :func:`seed_schedule`, which derives
    a collision-free seed for every (base seed, repetition) pair.
    """
    results = []
    for seed in seed_schedule(settings.seed, repeats):
        results.append(
            run_experiment(
                system_factory,
                workload_factory,
                input_rate,
                settings.scaled(seed=seed),
            )
        )
    return RepeatedResult(results[0].system_name, input_rate, results)
