"""Plain-text series tables shaped like the paper's figures.

Every benchmark prints one of these: the x-axis the paper sweeps, one
column per system, cells in the figure's units.  EXPERIMENTS.md pastes
these tables next to the paper's reported numbers.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_ms(value: float) -> str:
    """Format a millisecond value the way the paper quotes them."""
    if value != value:  # NaN
        return "-"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.1f}"


def _encode_cell(value: float):
    """JSON-safe cell: NaN/±inf become tagged strings."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
    return value


def _decode_cell(value) -> float:
    if value == "NaN":
        return float("nan")
    if value == "Infinity":
        return float("inf")
    if value == "-Infinity":
        return float("-inf")
    return value


@dataclass
class SeriesTable:
    """An x-sweep with one series per system."""

    title: str
    x_label: str
    x_values: Sequence
    unit: str = "ms"
    series: Dict[str, List[float]] = field(default_factory=dict)
    errors: Dict[str, List[float]] = field(default_factory=dict)

    def add_point(
        self, name: str, value: float, error: Optional[float] = None
    ) -> None:
        self.series.setdefault(name, []).append(value)
        if error is not None:
            self.errors.setdefault(name, []).append(error)

    def value(self, name: str, x) -> float:
        return self.series[name][list(self.x_values).index(x)]

    def render(self) -> str:
        names = list(self.series)
        header = [self.x_label] + names
        rows = [header]
        for i, x in enumerate(self.x_values):
            row = [str(x)]
            for name in names:
                points = self.series[name]
                if i < len(points):
                    cell = format_ms(points[i])
                    errs = self.errors.get(name)
                    if errs and i < len(errs) and not math.isnan(errs[i]):
                        cell += f"±{format_ms(errs[i])}"
                else:
                    cell = "-"
                row.append(cell)
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(header))
        ]
        lines = [f"== {self.title} ({self.unit}) =="]
        for r, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row))
            )
            if r == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - mirrors the common API shape
        print()
        print(self.render())

    # ------------------------------------------------------------------
    # Serialization (strict JSON: NaN/±inf are tagged strings)

    def to_json(self) -> str:
        payload = {
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "unit": self.unit,
            "series": {
                name: [_encode_cell(v) for v in values]
                for name, values in self.series.items()
            },
            "errors": {
                name: [_encode_cell(v) for v in values]
                for name, values in self.errors.items()
            },
        }
        return json.dumps(payload, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SeriesTable":
        data = json.loads(text)
        return cls(
            title=data["title"],
            x_label=data["x_label"],
            x_values=data["x_values"],
            unit=data["unit"],
            series={
                name: [_decode_cell(v) for v in values]
                for name, values in data["series"].items()
            },
            errors={
                name: [_decode_cell(v) for v in values]
                for name, values in data["errors"].items()
            },
        )
