"""Parallel experiment execution: fan sweep points over worker processes.

Every figure in the paper is a sweep over (system × x-value × seed)
points, and each point is an independent, deterministic discrete-event
run — embarrassingly parallel work that the serial sweep loop left on
the table.  This module turns a sweep into a flat list of
:class:`PointSpec` objects, runs them over a
:class:`~concurrent.futures.ProcessPoolExecutor`, and reassembles the
:class:`~repro.harness.experiment.RepeatedResult` list in submission
order, so tables built from a parallel sweep are byte-identical to the
serial ones.

Determinism contract
--------------------
* A point's outcome depends only on its spec (system, workload recipe,
  rate, settings, seed schedule) — never on scheduling, worker count,
  or completion order.
* Results are reassembled in spec order regardless of completion order.
* Workers return :meth:`~repro.harness.experiment.ExperimentResult.detach`-ed
  results; metric queries on a detached result reproduce the in-process
  answers exactly (the stats indexes are rebuilt from the same records).
* ``jobs=1`` (or a single spec) short-circuits to today's in-process
  loop — no worker processes, no pickling.

Everything in a :class:`PointSpec` must be picklable: systems are named
by their registry label (or any picklable zero-argument factory, e.g. a
``functools.partial``), and workloads travel as :class:`WorkloadSpec`
recipes instead of closures.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.harness.experiment import (
    ExperimentSettings,
    RepeatedResult,
    run_repeated,
)
from repro.harness.systems import make_system


def usable_cpus() -> int:
    """Cores this process may actually run on (cgroup/affinity aware).

    ``os.cpu_count()`` reports the machine; a container or ``taskset``
    allowance can be far smaller, and oversubscribing it makes the
    parallel path *slower* than serial (workers time-slice one core
    while paying process startup).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return os.cpu_count() or 1


def default_jobs() -> int:
    """Worker-count default for ``--jobs``: every usable core."""
    return usable_cpus()


@dataclass(frozen=True)
class WorkloadSpec:
    """Picklable recipe for a workload factory.

    The sweep machinery can't ship ``lambda rng: YcsbTWorkload(rng)``
    closures to worker processes, so workloads travel as (class, kwargs)
    pairs; :meth:`factory` rebuilds the closure on the worker side.

    ``uniform_keys`` covers the one constructor argument that needs the
    run's own RNG (Figure 14's ``UniformKeys`` chooser) — it is rebuilt
    per run from the generator handed to the factory.
    """

    cls: type
    kwargs: tuple = ()
    uniform_keys: Optional[int] = None

    @classmethod
    def of(cls, workload_cls: type, uniform_keys: Optional[int] = None,
           **kwargs: Any) -> "WorkloadSpec":
        return cls(workload_cls, tuple(kwargs.items()), uniform_keys)

    def factory(self) -> Callable:
        workload_cls = self.cls
        kwargs = dict(self.kwargs)
        if self.uniform_keys is None:
            return lambda rng: workload_cls(rng, **kwargs)
        num_keys = self.uniform_keys

        def factory_with_chooser(rng):
            from repro.workloads import UniformKeys

            return workload_cls(
                rng, key_chooser=UniformKeys(num_keys, rng), **kwargs
            )

        return factory_with_chooser


@dataclass(frozen=True)
class PointSpec:
    """One sweep point: everything a worker needs to run it.

    ``system`` is a registry label (resolved through
    :func:`~repro.harness.systems.make_system`) or any picklable
    zero-argument factory — e.g. ``functools.partial(Natto, config)``
    for the ablation sweeps that run unregistered variants.
    """

    system: Any
    x: Any
    input_rate: float
    workload: WorkloadSpec
    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    repeats: int = 1

    def system_factory(self) -> Callable:
        system = self.system
        if isinstance(system, str):
            return lambda: make_system(system)
        return system

    def label(self) -> str:
        name = self.system if isinstance(self.system, str) else "<factory>"
        return f"{name} @ {self.x}"


def run_point(spec: PointSpec) -> RepeatedResult:
    """Run one point in-process, returning detached (transportable)
    results.

    This is both the worker entry point and the ``jobs=1`` path, so the
    two produce literally the same object graph.
    """
    repeated = run_repeated(
        spec.system_factory(),
        spec.workload.factory(),
        spec.input_rate,
        spec.settings,
        repeats=spec.repeats,
    )
    return RepeatedResult(
        repeated.system_name,
        repeated.input_rate,
        [result.detach() for result in repeated.results],
    )


def run_points(
    specs: Sequence[PointSpec],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[RepeatedResult]:
    """Run every spec; return results in spec order.

    ``jobs=None`` uses :func:`default_jobs` (all cores); ``jobs=1``
    preserves the serial in-process path.  The executor path submits
    every spec up front and collects in submission order, so the
    returned list — and anything built from it — is independent of
    completion order.
    """
    specs = list(specs)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    # Parallelism has to beat two fixed costs before it helps: each
    # worker's startup (process spawn + imports) and the host's real
    # concurrency.  Cap the pool at half the point count — a worker
    # hired for a single point rarely amortizes its startup — and at
    # the cores this process may actually use; ignoring either made
    # the parallel smoke sweep ~10% slower than serial.
    jobs = min(jobs, len(specs) // 2, usable_cpus())
    if jobs <= 1 or len(specs) <= 1:
        results = []
        for index, spec in enumerate(specs):
            results.append(run_point(spec))
            if progress is not None:
                progress(f"[{index + 1}/{len(specs)}] {spec.label()}")
        return results
    results = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        futures = [pool.submit(run_point, spec) for spec in specs]
        for index, (spec, future) in enumerate(zip(specs, futures)):
            results.append(future.result())
            if progress is not None:
                progress(f"[{index + 1}/{len(specs)}] {spec.label()}")
    return results
