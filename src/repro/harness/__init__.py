"""Experiment harness: deployment, measurement, and reporting.

* :mod:`repro.harness.experiment` — build a deployment (5 partitions x
  3 replicas over 5 DCs, 2 clients per DC by default), drive an
  open-loop workload at a configured input rate, apply the paper's
  measurement rules (warm-up/cool-down trimming, retry-inclusive
  latency, 100-retry failure cap), and aggregate repeats with 95%
  confidence intervals.
* :mod:`repro.harness.parallel` — fan independent sweep points over
  worker processes (``--jobs N``) with deterministic, order-stable
  result assembly.
* :mod:`repro.harness.systems` — the registry of system factories, one
  per line in the paper's plots.
* :mod:`repro.harness.report` — plain-text series tables shaped like
  the paper's figures.
"""

from repro.harness.experiment import (
    ExperimentResult,
    ExperimentSettings,
    RepeatedResult,
    run_experiment,
    run_repeated,
    seed_schedule,
    slugify,
)
from repro.harness.parallel import (
    PointSpec,
    WorkloadSpec,
    default_jobs,
    run_point,
    run_points,
)
from repro.harness.report import SeriesTable, format_ms
from repro.harness.systems import SYSTEM_FACTORIES, make_system

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "PointSpec",
    "RepeatedResult",
    "SYSTEM_FACTORIES",
    "SeriesTable",
    "WorkloadSpec",
    "default_jobs",
    "format_ms",
    "make_system",
    "run_experiment",
    "run_point",
    "run_points",
    "run_repeated",
    "seed_schedule",
    "slugify",
]
