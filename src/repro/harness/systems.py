"""Registry of the systems the paper compares.

Keys are the labels used in the paper's figures; every experiment
module addresses systems through :func:`make_system` so benches and
examples agree on naming.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core import (
    Natto,
    natto_cp,
    natto_lecsf,
    natto_pa,
    natto_recsf,
    natto_ts,
)
from repro.systems.base import TransactionSystem
from repro.systems.carousel import CarouselBasic, CarouselFast
from repro.systems.tapir import Tapir
from repro.systems.twopl import (
    PreemptOnWaitPolicy,
    PreemptPolicy,
    TwoPL,
    WoundWaitPolicy,
)

SYSTEM_FACTORIES: Dict[str, Callable[[], TransactionSystem]] = {
    "2PL+2PC": lambda: TwoPL(WoundWaitPolicy()),
    "2PL+2PC(P)": lambda: TwoPL(PreemptPolicy()),
    "2PL+2PC(POW)": lambda: TwoPL(PreemptOnWaitPolicy()),
    "TAPIR": Tapir,
    "Carousel Basic": CarouselBasic,
    "Carousel Fast": CarouselFast,
    "Natto-TS": lambda: Natto(natto_ts()),
    "Natto-LECSF": lambda: Natto(natto_lecsf()),
    "Natto-PA": lambda: Natto(natto_pa()),
    "Natto-CP": lambda: Natto(natto_cp()),
    "Natto-RECSF": lambda: Natto(natto_recsf()),
}

#: The full line-up of Figure 7(a)/(b) and Figure 8(a).
ALL_SYSTEMS = tuple(SYSTEM_FACTORIES)

#: The reduced line-up the paper uses for the Azure figures (7c-f, 8b).
AZURE_SYSTEMS = (
    "2PL+2PC",
    "2PL+2PC(P)",
    "2PL+2PC(POW)",
    "TAPIR",
    "Carousel Basic",
    "Carousel Fast",
    "Natto-TS",
    "Natto-RECSF",
)


def make_system(name: str) -> TransactionSystem:
    """A fresh instance of the named system."""
    try:
        factory = SYSTEM_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; known: {sorted(SYSTEM_FACTORIES)}"
        ) from None
    return factory()
