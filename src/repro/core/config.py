"""Natto feature flags and the paper's cumulative variant ladder."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class NattoConfig:
    """Which of Natto's mechanisms are active.

    Timestamp ordering (TS) is Natto itself and is always on.  The
    remaining flags follow the evaluation's cumulative ladder.

    ``promote_after_aborts`` implements the starvation mitigation the
    paper sketches in §3.3.1 ("a low-priority transaction can be
    promoted to high priority if it is aborted one or more times") — an
    extension, off by default to match the measured system.

    ``timestamp_margin`` is extra headroom (seconds) added to every
    assigned timestamp.  In the real system the p95-over-median gap of
    a jittery network provides this headroom implicitly; probe messages
    are also smaller and cheaper to serve than read-and-prepare
    requests, so a pure p95 estimate systematically undershoots the
    request's own delivery time.  The 2 ms default absorbs that bias
    (it is <2% of a WAN round trip); set it to 0 to ablate.
    """

    lecsf: bool = False
    pa: bool = False
    cp: bool = False
    recsf: bool = False
    promote_after_aborts: Optional[int] = None
    timestamp_margin: float = 0.002
    #: §3.3.1's completion-time estimate: skip a priority abort when the
    #: low-priority transaction should finish before the high-priority
    #: execution time.  Off = always abort (an ablation knob).
    pa_skip_rule: bool = True

    @property
    def variant_name(self) -> str:
        if self.recsf:
            return "Natto-RECSF"
        if self.cp:
            return "Natto-CP"
        if self.pa:
            return "Natto-PA"
        if self.lecsf:
            return "Natto-LECSF"
        return "Natto-TS"

    def with_overrides(self, **kwargs) -> "NattoConfig":
        return replace(self, **kwargs)


def natto_ts(**kwargs) -> NattoConfig:
    """Basic timestamp-based prioritization only."""
    return NattoConfig(**kwargs)


def natto_lecsf(**kwargs) -> NattoConfig:
    """TS + Local ECSF."""
    return NattoConfig(lecsf=True, **kwargs)


def natto_pa(**kwargs) -> NattoConfig:
    """TS + LECSF + Priority Abort."""
    return NattoConfig(lecsf=True, pa=True, **kwargs)


def natto_cp(**kwargs) -> NattoConfig:
    """TS + LECSF + PA + Conditional Prepare."""
    return NattoConfig(lecsf=True, pa=True, cp=True, **kwargs)


def natto_recsf(**kwargs) -> NattoConfig:
    """All mechanisms: TS + LECSF + PA + CP + Remote ECSF."""
    return NattoConfig(lecsf=True, pa=True, cp=True, recsf=True, **kwargs)
