"""The Natto participant leader (§3.2–§3.4).

Life of a transaction at one participant:

1. **Arrival.**  The read-and-prepare request carries the transaction
   timestamp (arrival at the *furthest* participant), the full read and
   write key sets, per-participant arrival estimates and the client's
   dominating one-way-delay estimate.  Late arrivals that would violate
   timestamp order with an ongoing conflicting transaction abort here.
   With PA on, arrival may also priority-abort queued low-priority
   transactions (or the arriving one).

2. **Buffering.**  The transaction waits in the timestamp-ordered queue
   until the server's clock passes its timestamp and it reaches the
   queue head.  This buffering is what creates the abort window PA
   exploits.

3. **Dispatch.**  Low priority: Carousel OCC — conflict with anything
   prepared (or with an earlier waiting high-priority transaction)
   aborts; otherwise prepare, serve reads, replicate, vote.  High
   priority: lock-style — if the keys are free, prepare; otherwise wait
   in timestamp order.  A blocked high-priority transaction may be
   **conditionally prepared** (CP) past prepared low-priority blockers
   predicted to be priority-aborted elsewhere, and may have its reads
   **forwarded** (RECSF) to the blockers' coordinators.

4. **Outcome.**  Commit with LECSF: the writes become visible and the
   marks release the moment the commit message arrives (replication to
   followers continues in the background).  Without LECSF: Carousel's
   behaviour — replicate first, then apply and release.  Either way,
   releasing drains the waiting list in timestamp order and resolves
   any conditions hanging off the transaction.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.partition import Partitioner
from repro.core.config import NattoConfig
from repro.net.payload import (
    ConditionResolved,
    NattoVoteYes,
    PartitionValuesEvent,
    ReadOkEpoch,
    ReadsEvent,
    RecsfForward,
    Refusal,
    VoteReason,
)
from repro.net.probing import ProbeTargetMixin
from repro.obs.abort import AbortReason, reason_value
from repro.raft.node import RaftReplica
from repro.sim import Future
from repro.store.kv import KeyValueStore
from repro.store.occ import PreparedSet, sets_conflict
from repro.txn.priority import Priority

#: Margin (seconds) added to completion-time estimates used by the PA
#: skip rule and CP predictions: covers prepare replication + decision
#: fan-out beyond the pure client<->participant round trip.
COMPLETION_MARGIN = 0.05

#: Sort key for the timestamp-ordered queue (see ``NattoTxn.order``).
_queue_order = attrgetter("order")


@dataclass
class NattoTxn:
    """Server-side state of one transaction attempt."""

    txn: str
    ts: float
    priority: Priority
    reads: List[str]           # this partition's slice
    writes: List[str]          # this partition's slice
    full_reads: List[str]
    full_writes: List[str]
    coordinator: str
    client: str
    participants: List[int]
    arrival_estimates: Dict[int, float]
    max_owd: float
    reply: Future
    state: str = "queued"      # queued|waiting|cond|prepared|done
    epoch: int = 0
    condition: Set[str] = field(default_factory=set)
    # Trace spans for this attempt's server-side phases (None when
    # tracing is off).
    queue_span: Any = None
    prepared_span: Any = None

    @property
    def order(self) -> Tuple[float, str]:
        return (self.ts, self.txn)

    @property
    def is_high(self) -> bool:
        return self.priority is Priority.HIGH

    @property
    def uses_locking(self) -> bool:
        """Everything above the lowest level prepares with locks."""
        return self.priority.uses_locking

    def conflicts_with(self, other: "NattoTxn") -> bool:
        return sets_conflict(self.reads, self.writes, other.reads, other.writes)

    def estimated_completion_time(self) -> float:
        """When this transaction should be done, if it executes at its
        timestamp: one more round trip (results to client, commit back)
        plus replication margin."""
        return self.ts + 2.0 * self.max_owd + COMPLETION_MARGIN


class _ConflictIndex:
    """key -> live transactions touching the key (either access mode).

    Conflicting transactions necessarily share a key, so the union of
    the per-key buckets for a transaction's own keys is a superset of
    its true conflict set; ``conflicts_with`` stays the only judge.
    The arrival/dispatch scans filter these candidates instead of
    walking (copies of) the whole queue and waiting list.

    Buckets are ``txn -> NattoTxn`` dicts: O(1) add/remove, insertion-
    ordered, and usable for transactions that are not hashable.
    """

    __slots__ = ("_by_key",)

    def __init__(self) -> None:
        self._by_key: Dict[str, Dict[str, NattoTxn]] = {}

    def add(self, info: "NattoTxn") -> None:
        by_key = self._by_key
        for keys in (info.reads, info.writes):
            for key in keys:
                bucket = by_key.get(key)
                if bucket is None:
                    bucket = by_key[key] = {}
                bucket[info.txn] = info

    def remove(self, info: "NattoTxn") -> None:
        by_key = self._by_key
        for keys in (info.reads, info.writes):
            for key in keys:
                bucket = by_key.get(key)
                if bucket is not None:
                    bucket.pop(info.txn, None)
                    if not bucket:
                        del by_key[key]

    def candidates(self, info: "NattoTxn") -> Iterable["NattoTxn"]:
        """Every live transaction sharing a key with ``info`` (possibly
        including ``info`` itself), deduplicated."""
        by_key = self._by_key
        found: Dict[str, NattoTxn] = {}
        for keys in (info.reads, info.writes):
            for key in keys:
                bucket = by_key.get(key)
                if bucket:
                    found.update(bucket)
        return found.values()


class NattoParticipant(ProbeTargetMixin, RaftReplica):
    """Leader (and follower) replica of one Natto data partition."""

    def __init__(
        self,
        *args: Any,
        store: Optional[KeyValueStore] = None,
        natto_config: NattoConfig = NattoConfig(),
        partitioner: Optional[Partitioner] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.store = store if store is not None else KeyValueStore()
        self.natto = natto_config
        self.partitioner = partitioner
        self.prepared = PreparedSet()
        self.txns: Dict[str, NattoTxn] = {}
        self.queue: List[NattoTxn] = []
        self.waiting: List[NattoTxn] = []
        #: conflict candidates for every transaction in ``txns``
        #: (queued, waiting, conditional or prepared).
        self._index = _ConflictIndex()
        #: blocker txn -> conditioned high-priority txns (CP bookkeeping)
        self._conditions: Dict[str, Set[str]] = {}
        #: LECSF: writes applied before their log entry (dedup at apply)
        self._applied_early: Set[str] = set()
        # Abort decisions (coordinator path) can beat the transaction's
        # own read-and-prepare (client path) under jitter; tombstones
        # make the cancellation order-independent.  Values remember the
        # abort reason so the late refusal stays classified.
        self._abort_tombstones: Dict[str, Optional[str]] = {}
        self._rap_seen: Set[str] = set()
        self._dispatch_timer = None
        # Counters (tests, reports, ablations).
        self.stats = {
            "prepares": 0,
            "occ_aborts": 0,
            "late_aborts": 0,
            "priority_aborts": 0,
            "conditional_prepares": 0,
            "conditions_ok": 0,
            "conditions_failed": 0,
            "recsf_forwards": 0,
        }

    def partition_id(self) -> int:
        return int(self.name.split("-")[0][1:])

    # ------------------------------------------------------------------
    # Arrival

    def handle_read_and_prepare(self, payload: dict, src: str) -> Future:
        if payload["txn"] in self._abort_tombstones:
            reason = self._abort_tombstones.pop(payload["txn"])
            obs = self.sim.obs
            if obs.enabled:
                obs.tracer.refuse(reason, node=self.name, txn=payload["txn"])
            reply = Future()
            reply.set_result(Refusal(reason_value(reason)))
            return reply
        self._rap_seen.add(payload["txn"])
        pid = self.partition_id()
        slices = self.partitioner.group_keys
        info = NattoTxn(
            txn=payload["txn"],
            ts=payload["ts"],
            priority=Priority(payload["priority"]),
            reads=slices(payload["full_reads"]).get(pid, []),
            writes=slices(payload["full_writes"]).get(pid, []),
            full_reads=payload["full_reads"],
            full_writes=payload["full_writes"],
            coordinator=payload["coordinator"],
            client=payload["client"],
            participants=payload["participants"],
            arrival_estimates=payload["arrival_estimates"],
            max_owd=payload["max_owd"],
            reply=Future(),
        )
        if self._late_violation(info):
            self.stats["late_aborts"] += 1
            self._refuse(info, AbortReason.TIMESTAMP_MISS)
            return info.reply
        if self.natto.pa and self._priority_abort_on_arrival(info):
            return info.reply
        self.txns[info.txn] = info
        self._index.add(info)
        self._enqueue(info)
        return info.reply

    def _late_violation(self, info: NattoTxn) -> bool:
        """§3.2: abort a late arrival only if it breaks timestamp order
        with a conflicting ongoing transaction."""
        if self.clock.now() <= info.ts:
            return False
        order = info.order
        if info.uses_locking:
            # Conflict with any ongoing (prepared, waiting or queued)
            # smaller-timestamp transaction forces an abort: the other
            # servers may already have ordered past us.
            return any(
                other.order < order and info.conflicts_with(other)
                for other in self._index.candidates(info)
            )
        # Lowest priority (OCC): order is violated if a conflicting
        # *larger*-timestamp transaction was already dispatched
        # (waiting, conditional or prepared — queued ones have not).
        return any(
            other.state != "queued"
            and other.order > order
            and info.conflicts_with(other)
            for other in self._index.candidates(info)
        )

    def _refuse(self, info: NattoTxn, reason) -> None:
        """Abort before (or instead of) preparing: fail the client's
        read reply and vote no so the coordinator cleans up."""
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.refuse(reason, node=self.name, txn=info.txn)
        if not info.reply.done:
            info.reply.set_result(Refusal(reason_value(reason)))
        self._network.send(
            self,
            info.coordinator,
            "vote",
            VoteReason(
                info.txn,
                self.partition_id(),
                "no",
                info.participants,
                info.client,
                reason_value(reason),
            ),
        )

    # ------------------------------------------------------------------
    # Priority abort (§3.3.1)

    def _priority_abort_on_arrival(self, info: NattoTxn) -> bool:
        """Apply PA rules at arrival, relationally over priority levels.
        Returns True if *info itself* was aborted (arriving behind a
        queued strictly-higher-priority transaction)."""
        candidates = list(self._index.candidates(info))
        # Evict queued strictly-lower-priority conflicts ordered before
        # us — in queue (timestamp) order, as a queue walk would visit
        # them, so the abort messages leave in the same sequence.
        victims = [
            queued
            for queued in candidates
            if queued.state == "queued"
            and queued.priority < info.priority
            and queued.order < info.order
            and info.conflicts_with(queued)
            and not self._completes_in_time(queued, info)
        ]
        if victims:
            victims.sort(key=_queue_order)
            for queued in victims:
                self._priority_abort(queued, by=info)
        # Yield to strictly-higher-priority conflicts ordered after us
        # that are still queued or waiting (prepared ones do not wound).
        for other in candidates:
            if (
                other.state in ("queued", "waiting", "cond")
                and other.priority > info.priority
                and other.order > info.order
                and info.conflicts_with(other)
                and not self._completes_in_time(info, other)
            ):
                self.stats["priority_aborts"] += 1
                self._trace_priority_abort(info, other)
                self._refuse(info, AbortReason.PREEMPTED)
                return True
        return False

    def _completes_in_time(self, low: NattoTxn, high: NattoTxn) -> bool:
        """PA's skip rule: don't abort a lower-priority transaction that
        should complete before the higher-priority execution time.
        Disabled by the ``pa_skip_rule`` ablation knob."""
        if not self.natto.pa_skip_rule:
            return False
        return high.ts > low.estimated_completion_time()

    def _priority_abort(self, low: NattoTxn, by: NattoTxn = None) -> None:
        self.stats["priority_aborts"] += 1
        self.queue.remove(low)
        self.txns.pop(low.txn, None)
        self._index.remove(low)
        low.state = "done"
        if low.queue_span is not None:
            low.queue_span.set(outcome="preempted")
            low.queue_span.finish()
        if by is not None:
            self._trace_priority_abort(low, by)
        self._refuse(low, AbortReason.PREEMPTED)

    def _trace_priority_abort(self, victim: NattoTxn, winner: NattoTxn) -> None:
        """Record who wounded whom (and at which priorities).

        The priority-ordering invariant checker consumes these events:
        a priority abort whose winner does not outrank its victim is a
        protocol bug, not a tuning artifact.
        """
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.event(
                "priority_abort",
                node=self.name,
                txn=victim.txn,
                by=winner.txn,
                victim_priority=int(victim.priority),
                winner_priority=int(winner.priority),
            )

    # ------------------------------------------------------------------
    # Queue and dispatch

    def _enqueue(self, info: NattoTxn) -> None:
        obs = self.sim.obs
        if obs.enabled:
            info.queue_span = obs.tracer.span(
                "queue", node=self.name, txn=info.txn
            )
            obs.metrics.gauge(f"natto.queue_depth.{self.name}").set(
                len(self.queue) + 1
            )
        # The queue is kept sorted by (ts, txn); a binary insertion is
        # O(log n) key calls where the old append+sort was O(n).  ``ts``
        # is fixed at construction, so the invariant can't rot, and
        # insort_right matches the stable sort's placement of ties.
        insort(self.queue, info, key=_queue_order)
        self._schedule_dispatch()

    def _schedule_dispatch(self) -> None:
        if self._dispatch_timer is not None:
            self._dispatch_timer.cancel()
            self._dispatch_timer = None
        if not self.queue:
            return
        delay = self.clock.until(self.queue[0].ts)
        self._dispatch_timer = self.sim.schedule(delay, self._dispatch_due)

    def _dispatch_due(self) -> None:
        self._dispatch_timer = None
        while self.queue and self.clock.now() >= self.queue[0].ts:
            self._dispatch(self.queue.pop(0))
        self._schedule_dispatch()

    def _dispatch(self, info: NattoTxn) -> None:
        if info.queue_span is not None:
            info.queue_span.finish()
            info.queue_span = None
        if not info.uses_locking:
            blocked = not self.prepared.is_free(info.reads, info.writes)
            blocked = blocked or any(
                w.state == "waiting" and info.conflicts_with(w)
                for w in self._index.candidates(info)
            )
            if blocked:
                self.stats["occ_aborts"] += 1
                self.txns.pop(info.txn, None)
                self._index.remove(info)
                info.state = "done"
                self._refuse(info, AbortReason.OCC_CONFLICT)
                return
            self._prepare(info)
            return
        info.state = "waiting"
        self.waiting.append(info)
        self._drain_waiting()
        if info.state == "waiting":
            handled_by_cp = False
            if self.natto.cp:
                handled_by_cp = self._try_conditional_prepare(info)
            if self.natto.recsf and not handled_by_cp:
                self._recsf_forward(info)

    def _drain_waiting(self) -> None:
        """Prepare waiting high-priority transactions in timestamp order;
        a still-blocked earlier waiter's keys stay claimed so later
        waiters cannot jump it.  The list is rebuilt in one pass —
        preparing never re-enters this method (replication and read
        delivery are asynchronous), so no copy is needed and released
        entries cost O(1) instead of an O(n) ``remove`` each."""
        claimed: List[Tuple[List[str], List[str]]] = []
        kept: List[NattoTxn] = []
        for info in self.waiting:
            if info.state == "cond":
                kept.append(info)
                continue  # resolved via its condition, not via draining
            blockers = self.prepared.conflicting(info.reads, info.writes)
            blockers.discard(info.txn)
            blocked_by_earlier = any(
                sets_conflict(info.reads, info.writes, reads, writes)
                for reads, writes in claimed
            )
            if blockers or blocked_by_earlier:
                claimed.append((info.reads, info.writes))
                kept.append(info)
                continue
            # Preparing here (not after the loop) keeps the released
            # transaction's marks visible to later waiters in this pass.
            self._prepare(info)
        self.waiting = kept

    # ------------------------------------------------------------------
    # Prepare paths

    def _prepare(self, info: NattoTxn) -> None:
        self.stats["prepares"] += 1
        self.prepared.add(info.txn, info.reads, info.writes)
        info.state = "prepared"
        obs = self.sim.obs
        if obs.enabled and info.prepared_span is None:
            info.prepared_span = obs.tracer.span(
                "prepared", node=self.name, txn=info.txn
            )
        self._deliver_reads(info)
        self.propose(("prepare", info.txn)).add_done_callback(
            lambda _: self._vote_yes(info, conditional=None)
        )

    def _deliver_reads(self, info: NattoTxn) -> None:
        values = {key: self.store.read(key).value for key in info.reads}
        if not info.reply.done:
            info.reply.set_result(ReadOkEpoch(values, info.epoch))
        else:
            self._network.send(
                self,
                info.client,
                "txn_event",
                ReadsEvent(
                    info.txn, self.partition_id(), values, info.epoch
                ),
            )

    def _vote_yes(self, info: NattoTxn, conditional) -> None:
        self._network.send(
            self,
            info.coordinator,
            "vote",
            NattoVoteYes(
                info.txn,
                self.partition_id(),
                "yes",
                info.epoch,
                conditional,
                info.participants,
                info.client,
            ),
        )

    # ------------------------------------------------------------------
    # Conditional prepare (§3.3.2)

    def _try_conditional_prepare(self, info: NattoTxn) -> bool:
        blockers = self.prepared.conflicting(info.reads, info.writes)
        blockers.discard(info.txn)
        if not blockers:
            return False
        blocker_infos = []
        for txn_id in blockers:
            blocker = self.txns.get(txn_id)
            if blocker is None or blocker.state != "prepared":
                return False
            blocker_infos.append(blocker)
        if not all(
            self._predicts_remote_priority_abort(info, blocker)
            for blocker in blocker_infos
        ):
            return False
        # Also require no earlier waiting transaction in the way: the
        # conditional values would not match the normal path otherwise.
        for other in self._index.candidates(info):
            if (
                other is not info
                and other.state in ("waiting", "cond")
                and other.order < info.order
                and info.conflicts_with(other)
            ):
                return False
        self.stats["conditional_prepares"] += 1
        self.prepared.add(info.txn, info.reads, info.writes)
        info.state = "cond"
        obs = self.sim.obs
        if obs.enabled and info.prepared_span is None:
            info.prepared_span = obs.tracer.span(
                "prepared", node=self.name, txn=info.txn, conditional=True
            )
        info.condition = {b.txn for b in blocker_infos}
        for blocker in blocker_infos:
            self._conditions.setdefault(blocker.txn, set()).add(info.txn)
        self._deliver_reads(info)
        self.propose(("cond_prepare", info.txn)).add_done_callback(
            lambda _: self._vote_yes(info, conditional=sorted(info.condition))
        )
        return True

    def _predicts_remote_priority_abort(
        self, high: NattoTxn, low: NattoTxn
    ) -> bool:
        """Would another participant priority-abort ``low`` because of
        ``high``?  Uses the piggybacked key sets and arrival estimates."""
        if low.priority >= high.priority or not self.natto.pa:
            return False
        if high.order < low.order:
            return False
        if self._completes_in_time(low, high):
            return False  # remote servers apply the same skip rule
        my_pid = self.partition_id()
        common = set(high.participants) & set(low.participants) - {my_pid}
        slices = self.partitioner.group_keys
        high_reads = slices(high.full_reads)
        high_writes = slices(high.full_writes)
        low_reads = slices(low.full_reads)
        low_writes = slices(low.full_writes)
        for pid in common:
            if not sets_conflict(
                high_reads.get(pid, []),
                high_writes.get(pid, []),
                low_reads.get(pid, []),
                low_writes.get(pid, []),
            ):
                continue
            # high must reach that server while low still sits in its
            # queue (i.e. before low's execution timestamp).
            if high.arrival_estimates.get(pid, float("inf")) < low.ts:
                return True
        return False

    # ------------------------------------------------------------------
    # RECSF (§3.4)

    def _recsf_forward(self, info: NattoTxn) -> None:
        blockers = self.prepared.conflicting(info.reads, info.writes)
        blockers.discard(info.txn)
        if not blockers:
            return
        blocker_infos = []
        for txn_id in blockers:
            blocker = self.txns.get(txn_id)
            if blocker is None or blocker.state != "prepared":
                return  # conditional blockers make forwarding unsafe
            blocker_infos.append(blocker)
        # An earlier *waiting* transaction will write before this one
        # prepares, so "base" values read now could be stale — the same
        # safety condition conditional prepare applies.
        for other in self._index.candidates(info):
            if (
                other is not info
                and other.state in ("waiting", "cond")
                and other.order < info.order
                and info.conflicts_with(other)
            ):
                return
        remaining = set(info.reads)
        forwarded_any = False
        for blocker in blocker_infos:
            overlap = remaining & set(blocker.full_writes)
            if not overlap:
                continue
            remaining -= overlap
            forwarded_any = True
            self.stats["recsf_forwards"] += 1
            self._network.send(
                self,
                blocker.coordinator,
                "recsf_forward",
                RecsfForward(
                    blocker.txn,
                    info.txn,
                    info.client,
                    self.partition_id(),
                    sorted(overlap),
                ),
            )
        if not forwarded_any:
            return
        # Keys untouched by any blocker are stable until we prepare;
        # serve them now so the client can assemble the partition early.
        base_values = {key: self.store.read(key).value for key in remaining}
        self._network.send(
            self,
            info.client,
            "txn_event",
            PartitionValuesEvent(
                info.txn, "recsf_base", self.partition_id(), base_values
            ),
        )

    # ------------------------------------------------------------------
    # Outcome

    def handle_commit_txn(self, payload: dict, src: str) -> None:
        txn = payload["txn"]
        if not payload["decision"]:
            if txn not in self._rap_seen:
                # The abort overtook the read-and-prepare; refuse it on
                # arrival instead of leaving a stuck prepared mark.
                self._abort_tombstones[txn] = payload.get("reason")
            self._resolve_conditions(txn, committed=False)
            self._remove_everywhere(txn, reason=payload.get("reason"))
            self._drain_waiting()
            return
        writes = payload.get("writes") or {}
        self._resolve_conditions(txn, committed=True)
        if self.natto.lecsf:
            # ECSF: visible and released at commit arrival; replication
            # to followers continues in the background.
            self.store.apply_writes(writes, txn)
            self._applied_early.add(txn)
            self._release(txn)
            self.propose(("writes", txn, writes))
            self._drain_waiting()
        else:
            self.propose(("writes", txn, writes)).add_done_callback(
                lambda _: (self._release(txn), self._drain_waiting())
            )

    def _release(self, txn: str) -> None:
        self.prepared.remove(txn)
        self._rap_seen.discard(txn)
        info = self.txns.pop(txn, None)
        if info is not None:
            self._index.remove(info)
            info.state = "done"
            self._finish_spans(info)

    @staticmethod
    def _finish_spans(info: NattoTxn) -> None:
        for span in (info.queue_span, info.prepared_span):
            if span is not None:
                span.finish()
        info.queue_span = None
        info.prepared_span = None

    def _remove_everywhere(self, txn: str, reason=None) -> None:
        """Abort cleanup: the transaction may be queued, waiting,
        conditionally prepared or prepared."""
        info = self.txns.pop(txn, None)
        self.prepared.remove(txn)
        self._rap_seen.discard(txn)
        if info is None:
            return
        self._index.remove(info)
        # The state says which list holds the transaction — no
        # membership scan needed.
        state = info.state
        info.state = "done"
        self._finish_spans(info)
        if state == "queued":
            self.queue.remove(info)
            self._schedule_dispatch()
        elif state in ("waiting", "cond"):
            self.waiting.remove(info)
        for blocker in info.condition:
            waiters = self._conditions.get(blocker)
            if waiters is not None:
                waiters.discard(txn)
        if not info.reply.done:
            info.reply.set_result(Refusal(reason_value(reason)))

    def _resolve_conditions(self, blocker_txn: str, committed: bool) -> None:
        waiters = self._conditions.pop(blocker_txn, set())
        for txn_id in waiters:
            high = self.txns.get(txn_id)
            if high is None or high.state != "cond":
                continue
            if committed:
                # Condition failed: back to the normal path with a fresh
                # read epoch.
                self.stats["conditions_failed"] += 1
                obs = self.sim.obs
                if obs.enabled:
                    obs.tracer.event(
                        "condition_failed",
                        node=self.name,
                        txn=high.txn,
                        reason=str(AbortReason.CONDITION_FAILED),
                        blocker=blocker_txn,
                    )
                self.prepared.remove(high.txn)
                for other in high.condition - {blocker_txn}:
                    others = self._conditions.get(other)
                    if others is not None:
                        others.discard(high.txn)
                high.condition = set()
                high.state = "waiting"
                high.epoch += 1
                self._notify_condition(high, ok=False)
            else:
                high.condition.discard(blocker_txn)
                if not high.condition:
                    self.stats["conditions_ok"] += 1
                    high.state = "prepared"
                    if high in self.waiting:
                        self.waiting.remove(high)
                    self._notify_condition(high, ok=True)

    def _notify_condition(self, info: NattoTxn, ok: bool) -> None:
        self._network.send(
            self,
            info.coordinator,
            "condition_resolved",
            ConditionResolved(
                info.txn,
                self.partition_id(),
                ok,
                info.epoch if ok else info.epoch - 1,
            ),
        )

    # ------------------------------------------------------------------
    # Replicated state machine

    def on_apply(self, payload: Any, index: int) -> None:
        if payload[0] != "writes":
            return  # prepare / cond_prepare records: recovery-only
        _, txn, writes = payload
        if txn in self._applied_early:
            self._applied_early.discard(txn)  # LECSF applied it already
            return
        self.store.apply_writes(writes, txn)
