"""Natto: distributed transaction prioritization (the paper's core).

Natto extends Carousel Basic with a timestamp-based global transaction
order derived from network measurements, and builds four mechanisms on
top of it (each cumulative variant matches a line in the paper's plots):

==============  ====================================================
Variant         Mechanisms
==============  ====================================================
Natto-TS        timestamp ordering; locking prepare for high priority
Natto-LECSF     + local early committed state forwarding
Natto-PA        + priority abort of queued low-priority transactions
Natto-CP        + conditional prepare past predicted remote aborts
Natto-RECSF     + remote ECSF (read forwarding to the predecessor's
                  coordinator)
==============  ====================================================

Modules:

* :mod:`repro.core.config` — feature flags and the variant factories.
* :mod:`repro.core.timestamps` — timestamp assignment from the local
  probe proxy's p95 one-way-delay estimates.
* :mod:`repro.core.server` — the Natto participant leader (transaction
  queue, dispatch, PA, CP, ECSF).
* :mod:`repro.core.coordinator` — coordinator extensions: conditional
  votes, read-epoch matching, RECSF serving.
* :mod:`repro.core.system` — the Natto client protocol and wiring.
"""

from repro.core.config import (
    NattoConfig,
    natto_cp,
    natto_lecsf,
    natto_pa,
    natto_recsf,
    natto_ts,
)
from repro.core.system import Natto

__all__ = [
    "Natto",
    "NattoConfig",
    "natto_cp",
    "natto_lecsf",
    "natto_pa",
    "natto_recsf",
    "natto_ts",
]
