"""Priority quotas for untrusted clients (§3.2's deployment sketch).

The measured system trusts application servers to set priorities
honestly.  For shared environments the paper sketches an extension:
clients submit through a trusted proxy that assigns timestamps and
enforces a quota — "clients can be given a quota of high-priority
transactions based on their payment plan, and their high-priority
transaction can be processed as a low-priority transaction if they go
over their quota."

:class:`PriorityQuota` implements that policy as a per-client token
bucket: each client earns ``rate`` elevated-priority admissions per
second up to a burst of ``burst``; an elevated-priority transaction
that finds the bucket empty is demoted to LOW.  The Natto system
accepts an optional quota and consults it on every attempt (retries of
an admitted transaction are not re-charged — the admission decision
sticks for the transaction's lifetime, so a retry storm cannot consume
the client's budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.txn.priority import Priority


@dataclass
class _Bucket:
    tokens: float
    last_refill: float


class PriorityQuota:
    """Token-bucket admission control for elevated priorities."""

    def __init__(self, rate: float, burst: float) -> None:
        """``rate`` tokens/second, up to ``burst`` accumulated."""
        if rate < 0 or burst <= 0:
            raise ValueError("rate must be >= 0 and burst positive")
        self.rate = rate
        self.burst = burst
        self._buckets: Dict[str, _Bucket] = {}
        #: txn_id -> admitted priority (sticky across retries).
        self._admitted: Dict[str, Priority] = {}
        self.demotions = 0

    def _bucket(self, client: str, now: float) -> _Bucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = _Bucket(tokens=self.burst, last_refill=now)
            self._buckets[client] = bucket
        return bucket

    def _refill(self, bucket: _Bucket, now: float) -> None:
        elapsed = max(0.0, now - bucket.last_refill)
        bucket.tokens = min(self.burst, bucket.tokens + elapsed * self.rate)
        bucket.last_refill = now

    def authorize(
        self, client: str, txn_id: str, requested: Priority, now: float
    ) -> Priority:
        """The priority this transaction actually runs at."""
        if requested is Priority.LOW:
            return requested
        sticky = self._admitted.get(txn_id)
        if sticky is not None:
            return sticky
        bucket = self._bucket(client, now)
        self._refill(bucket, now)
        if bucket.tokens >= 1.0:
            bucket.tokens -= 1.0
            granted = requested
        else:
            self.demotions += 1
            granted = Priority.LOW
        self._admitted[txn_id] = granted
        return granted

    def finish(self, txn_id: str) -> None:
        """Forget a completed transaction's sticky admission."""
        self._admitted.pop(txn_id, None)

    def available_tokens(self, client: str, now: float) -> float:
        bucket = self._bucket(client, now)
        self._refill(bucket, now)
        return bucket.tokens
