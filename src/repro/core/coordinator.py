"""Natto's 2PC coordinator: conditional votes, read epochs, RECSF.

Extensions over the Carousel coordinator:

* **Vote records** carry an epoch (which read delivery the vote belongs
  to) and an optional condition (the low-priority transactions whose
  abort the vote is contingent on).  A transaction commits only when
  every participant's vote is *firm* and its epoch matches the epoch of
  the reads the client's write data was computed from — the invariant
  §3.3.2 states: "it cannot commit the high-priority transaction based
  on the conditional prepare result if the condition is not satisfied."
* **Condition resolution**: participants report success (upgrade the
  conditional vote to firm) or failure (the vote is discarded; a fresh
  normal-path vote with a higher epoch will follow).
* **RECSF serving**: participants forward a blocked high-priority
  transaction's reads of this coordinator's transaction's write keys;
  once that transaction commits here, the values go straight to the
  blocked transaction's client.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.net.payload import PartitionValuesEvent
from repro.systems.carousel.coordinator import (
    CarouselCoordinator,
    CoordinatedTxn,
)


class NattoCoordinator(CarouselCoordinator):
    """Per-datacenter coordinator with Natto's vote state machine."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: txn -> queued RECSF forwards awaiting this txn's commit.
        self._recsf_waiters: Dict[str, List[dict]] = {}

    # ------------------------------------------------------------------
    # Client messages

    def handle_commit_request(self, payload: dict, src: str) -> None:
        state = self.txn_state(payload["txn"])
        state.client = payload["client"]
        state.participants = payload["participants"]
        state.writes = payload["writes"]
        # Natto addition: which read epoch each partition's write data
        # was computed from; re-sent commit requests overwrite it.
        state.write_epochs = payload.get("epochs", {})
        if state.decided is not None:
            return
        version = getattr(state, "writes_version", 0) + 1
        state.writes_version = version
        state.writes_replicated = False
        self.propose(("writedata", state.txn, state.writes)).add_done_callback(
            lambda _: self._writes_version_durable(state, version)
        )

    def _writes_version_durable(self, state: CoordinatedTxn, version: int) -> None:
        if getattr(state, "writes_version", 0) == version:
            state.writes_replicated = True
            self._try_decide(state)

    # ------------------------------------------------------------------
    # Votes

    def handle_vote(self, payload: dict, src: str) -> None:
        state = self.txn_state(payload["txn"])
        if state.client is None:
            state.client = payload["client"]
        if state.participants is None:
            state.participants = payload["participants"]
        if state.decided is not None:
            return
        if payload["vote"] == "no":
            self._decide(state, False)
            return
        state.votes[payload["partition"]] = {
            "epoch": payload.get("epoch", 0),
            "firm": not payload.get("conditional"),
            "conditional": payload.get("conditional"),
        }
        self._try_decide(state)

    def handle_condition_resolved(self, payload: dict, src: str) -> None:
        state = self.txn_state(payload["txn"])
        if state.decided is not None:
            return
        vote = state.votes.get(payload["partition"])
        if vote is None or vote["firm"]:
            return
        if payload["ok"]:
            if vote["epoch"] == payload["epoch"]:
                vote["firm"] = True
                vote["conditional"] = None
                self._try_decide(state)
        else:
            # Discard the conditional result; the participant's normal
            # path will vote again with a higher epoch.
            del state.votes[payload["partition"]]

    def _vote_ready(self, state: CoordinatedTxn, partition: int) -> bool:
        vote = state.votes.get(partition)
        if vote is None or not isinstance(vote, dict) or not vote["firm"]:
            return False
        expected = getattr(state, "write_epochs", {}).get(partition, 0)
        return vote["epoch"] == expected

    # ------------------------------------------------------------------
    # RECSF

    def handle_recsf_forward(self, payload: dict, src: str) -> None:
        state = self.txns.get(payload["txn"])
        if state is not None and state.decided is True:
            self._serve_recsf(state, payload)
            return
        if state is not None and state.decided is False:
            return  # the blocker aborted; the normal path will serve
        self._recsf_waiters.setdefault(payload["txn"], []).append(payload)

    def _on_decided(self, state: CoordinatedTxn) -> None:
        waiters = self._recsf_waiters.pop(state.txn, [])
        if state.decided:
            for payload in waiters:
                self._serve_recsf(state, payload)

    def _serve_recsf(self, state: CoordinatedTxn, payload: dict) -> None:
        writes = state.writes or {}
        values = {
            key: writes[key] for key in payload["keys"] if key in writes
        }
        if not values:
            return
        self._network.send(
            self,
            payload["reader_client"],
            "txn_event",
            PartitionValuesEvent(
                payload["reader"], "recsf_reads", payload["partition"], values
            ),
        )
