"""Transaction timestamp assignment (§3.2).

A Natto client stamps each transaction with the time it should have
arrived at **all** participant leaders:

    ts = client_clock.now() + max over participants of OWD_p95(leader)

where the one-way-delay estimates come from the local datacenter's probe
proxy (p95 over a 1 s sliding window, refreshed by the client every
100 ms).  The estimates are *skew-inclusive* — they were measured as
``server_clock_at_receive − proxy_clock_at_send`` — so the resulting
timestamp is meaningful on the receiving server's clock without any
extra skew correction (within the client↔proxy skew, which loose NTP
sync keeps small).

Before the probe window has data (cold start), estimates fall back to
the topology's base delay with a safety factor; the harness starts
clients after a probe warm-up anyway, so the fallback only matters for
unit tests and ad-hoc use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net.probing import ClientDelayView
from repro.net.topology import Topology

#: Cold-start multiplier over the topology's base one-way delay.
FALLBACK_SAFETY = 1.3
#: Cold-start additive headroom (seconds): absorbs modest clock skew.
FALLBACK_HEADROOM = 0.003


@dataclass(frozen=True)
class TimestampAssignment:
    """Everything a read-and-prepare request carries about timing."""

    timestamp: float                  # the transaction timestamp (clock time)
    arrival_estimates: Dict[int, float]  # per-participant arrival clock time
    max_owd: float                    # the dominating one-way delay estimate


class TimestampAssigner:
    """Client-side timestamp computation."""

    def __init__(
        self,
        view: ClientDelayView,
        topology: Topology,
        client_datacenter: str,
        margin: float = 0.0,
    ) -> None:
        self._view = view
        self._topology = topology
        self._client_dc = client_datacenter
        self._margin = margin

    def estimate_owd(self, leader_name: str, leader_dc: str) -> float:
        """p95 OWD estimate to a leader, with a cold-start fallback."""
        estimate = self._view.estimate(leader_name)
        if estimate is not None:
            return estimate
        base = self._topology.one_way(self._client_dc, leader_dc)
        return base * FALLBACK_SAFETY + FALLBACK_HEADROOM

    def assign(
        self,
        now: float,
        participants: List[int],
        leader_names: Dict[int, str],
        leader_dcs: Dict[int, str],
    ) -> TimestampAssignment:
        """Timestamp a transaction issued at client clock time ``now``."""
        estimates = {
            pid: self.estimate_owd(leader_names[pid], leader_dcs[pid])
            for pid in participants
        }
        max_owd = max(estimates.values())
        return TimestampAssignment(
            timestamp=now + max_owd + self._margin,
            arrival_estimates={
                pid: now + owd for pid, owd in estimates.items()
            },
            max_owd=max_owd,
        )
