"""Natto: system wiring and the client protocol.

The client side is where Natto's multi-path read delivery comes
together.  For one attempt the client may receive, per partition:

* the read-and-prepare RPC reply (normal or conditional prepare);
* a replacement read delivery after a failed conditional prepare
  (higher epoch, via a ``reads`` event);
* an assembled RECSF pair: the participant's ``recsf_base`` values plus
  the predecessor coordinator's ``recsf_reads`` values.

The client keeps the highest-epoch value set per partition, and
(re-)sends its write data + commit request whenever it holds a complete
read set it has not submitted yet, tagging each partition with the read
epoch the writes were computed from.  The coordinator matches those
epochs against its vote records, which closes the conditional-prepare
loop safely.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.config import NattoConfig
from repro.core.coordinator import NattoCoordinator
from repro.core.server import NattoParticipant
from repro.core.timestamps import TimestampAssigner
from repro.net.payload import (
    AbortRequest,
    NattoCommitRequest,
    NattoReadAndPrepare,
)
from repro.net.probing import ClientDelayView, ProbeProxy, ProxyDirectory
from repro.sim import Future, any_of
from repro.store.kv import KeyValueStore
from repro.systems.base import Cluster, attempt_id
from repro.systems.carousel.basic import CarouselBasic
from repro.txn.priority import Priority
from repro.txn.transaction import TransactionSpec


class Natto(CarouselBasic):
    """The paper's system.  Pass a :class:`NattoConfig` for the variant."""

    participant_class = NattoParticipant
    coordinator_class = NattoCoordinator

    def __init__(
        self,
        config: NattoConfig = NattoConfig(),
        quota: Optional["PriorityQuota"] = None,  # noqa: F821
    ) -> None:
        self.natto_config = config
        self.name = config.variant_name
        self.proxies = ProxyDirectory()
        #: Optional priority admission control for untrusted clients
        #: (see :mod:`repro.core.quota`).
        self.quota = quota
        self._assigners: Dict[str, TimestampAssigner] = {}

    # ------------------------------------------------------------------
    # Deployment

    def _participant_factory(self, sim, network, name, dc, **kwargs):
        kwargs["rng"] = self.cluster.streams.stream(f"raft.{name}")
        return self.participant_class(
            sim,
            network,
            name,
            dc,
            store=KeyValueStore(),
            natto_config=self.natto_config,
            partitioner=self.cluster.partitioner,
            clock=self.cluster.make_clock(name),
            service_time=self.cluster.config.server_service_time,
            **kwargs,
        )

    def after_setup(self) -> None:
        """One probe proxy (and client view) per datacenter (§4)."""
        cluster = self.cluster
        targets = list(self.leader_names.values())
        for dc in cluster.topology.datacenters:
            proxy = ProbeProxy(
                cluster.sim,
                cluster.network,
                dc,
                targets,
                interval=cluster.config.probe_interval,
                window=cluster.config.probe_window,
            )
            proxy.clock = cluster.make_clock(proxy.name)
            view = ClientDelayView(
                cluster.sim, proxy, cluster.config.client_view_refresh
            )
            self.proxies.add(proxy, view)
        self.proxies.start_all()
        self._leader_dcs = {
            pid: group.leader.datacenter for pid, group in self.groups.items()
        }

    def on_client_created(self, client) -> None:
        self._assigners[client.name] = TimestampAssigner(
            self.proxies.view(client.datacenter),
            self.cluster.topology,
            client.datacenter,
            margin=self.natto_config.timestamp_margin,
        )

    # ------------------------------------------------------------------
    # Client protocol

    def execute(self, client, spec: TransactionSpec, attempt: int) -> Generator:
        aid = attempt_id(spec, attempt)
        priority = spec.priority
        if self.quota is not None:
            priority = self.quota.authorize(
                client.name, spec.txn_id, priority, client.clock.now()
            )
        promote_after = self.natto_config.promote_after_aborts
        if (
            promote_after is not None
            and priority is Priority.LOW
            and attempt >= promote_after
        ):
            priority = Priority.HIGH  # starvation mitigation (§3.3.1)

        partitioner = self.cluster.partitioner
        participants = self.participant_ids(spec)
        coordinator = self.coordinator_name(client.datacenter)
        reads_by_pid = partitioner.group_keys(spec.read_keys)

        assignment = self._assigners[client.name].assign(
            client.clock.now(),
            participants,
            self.leader_names,
            self._leader_dcs,
        )

        # Per-partition read state: highest-epoch full value set wins.
        state = {
            pid: {"epoch": -1, "values": None, "recsf": {}}
            for pid in participants
        }
        sent_epochs: Optional[Dict[int, int]] = None
        decision = Future()
        failed = Future()
        voluntary_abort = [False]

        def deliver(pid: int, values: Dict[str, str], epoch: int) -> None:
            slot = state[pid]
            if epoch <= slot["epoch"]:
                return
            slot["epoch"] = epoch
            slot["values"] = values
            maybe_send_commit()

        def maybe_send_commit() -> None:
            nonlocal sent_epochs
            if any(slot["values"] is None for slot in state.values()):
                return
            epochs = {pid: slot["epoch"] for pid, slot in state.items()}
            if epochs == sent_epochs:
                return
            sent_epochs = epochs
            merged: Dict[str, str] = {}
            for slot in state.values():
                merged.update(slot["values"])
            writes = spec.make_writes(merged)
            if writes is None:
                voluntary_abort[0] = True
                client.network.send(
                    client,
                    coordinator,
                    "abort_request",
                    AbortRequest(aid, client.name, participants),
                )
                return
            client.network.send(
                client,
                coordinator,
                "commit_request",
                NattoCommitRequest(
                    aid, client.name, participants, writes, epochs
                ),
            )

        def merge_recsf(pid: int, values: Dict[str, str]) -> None:
            slot = state[pid]
            slot["recsf"].update(values)
            if set(reads_by_pid.get(pid, [])) <= set(slot["recsf"]):
                deliver(pid, dict(slot["recsf"]), 0)

        def on_event(payload: dict, src: str) -> None:
            kind = payload["kind"]
            if kind == "decision":
                if not payload["committed"]:
                    client.note_abort(aid, payload.get("reason"))
                decision.try_set_result(payload["committed"])
            elif kind == "reads":
                deliver(payload["partition"], payload["values"], payload["epoch"])
            elif kind in ("recsf_base", "recsf_reads"):
                merge_recsf(payload["partition"], payload["values"])

        client.register_attempt(aid, on_event)
        try:
            # Every participant receives the same body (full key sets);
            # one payload object serves the whole fan-out.
            request = NattoReadAndPrepare(
                aid,
                assignment.timestamp,
                int(priority),
                list(spec.read_keys),
                list(spec.write_keys),
                coordinator,
                client.name,
                participants,
                assignment.arrival_estimates,
                assignment.max_owd,
            )
            for pid in participants:
                future = client.network.call(
                    client,
                    self.leader_names[pid],
                    "read_and_prepare",
                    request,
                )
                future.add_done_callback(
                    lambda f, pid=pid: (
                        deliver(pid, f.value["values"], f.value["epoch"])
                        if f.value.get("ok")
                        else (
                            client.note_abort(aid, f.value.get("reason")),
                            failed.try_set_result(False),
                        )
                    )
                )
            result = yield any_of([decision, failed])
            if voluntary_abort[0]:
                if not decision.done:
                    yield decision
                result = True
            committed = bool(result)
            if committed and self.quota is not None:
                self.quota.finish(spec.txn_id)
            return committed
        finally:
            client.unregister_attempt(aid)
