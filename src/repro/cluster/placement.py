"""Leader and replica placement across datacenters.

The paper's deployment: 5 partitions, 3 replicas each, spread over 5
datacenters so that every datacenter hosts exactly one partition leader
and at most one replica of any partition.  We generalise: partition ``i``
places its leader in datacenter ``i mod D`` and its followers in the next
``replication_factor - 1`` datacenters (wrapping), which reproduces the
paper's layout for 5 partitions / 5 DCs / 3 replicas and degrades
sensibly for the Figure 14 local-cluster sweeps (12 partitions, 3 DCs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class PartitionPlacement:
    """Where one partition's replicas live.

    ``datacenters[0]`` hosts the leader; the rest host followers.
    """

    partition_id: int
    datacenters: tuple

    @property
    def leader_datacenter(self) -> str:
        return self.datacenters[0]

    @property
    def follower_datacenters(self) -> tuple:
        return self.datacenters[1:]


def place_partitions(
    datacenters: Sequence[str],
    num_partitions: int,
    replication_factor: int = 3,
) -> List[PartitionPlacement]:
    """Round-robin placement of partition replica groups over datacenters."""
    if replication_factor > len(datacenters):
        raise ValueError(
            f"replication factor {replication_factor} exceeds the "
            f"{len(datacenters)} available datacenters"
        )
    placements = []
    for pid in range(num_partitions):
        chosen = tuple(
            datacenters[(pid + j) % len(datacenters)]
            for j in range(replication_factor)
        )
        placements.append(PartitionPlacement(pid, chosen))
    return placements
