"""Cluster substrate: per-node clocks and the node/service-time model.

* :mod:`repro.cluster.clock` — skewed, drifting clocks with an NTP-like
  loose synchronization bound (Natto only assumes loose sync).
* :mod:`repro.cluster.node` — base class for simulated machines with a
  single-core service-time model (messages queue FIFO behind a busy
  cursor), which is what produces saturation and peak-throughput
  behaviour in the evaluation.
* :mod:`repro.cluster.partition` — hash partitioning of the key space.
* :mod:`repro.cluster.placement` — leader/replica placement across
  datacenters (one partition leader per datacenter, as in the paper).
"""

from repro.cluster.clock import Clock, ClockConfig
from repro.cluster.node import Node, ServiceModel
from repro.cluster.partition import Partitioner
from repro.cluster.placement import PartitionPlacement, place_partitions

__all__ = [
    "Clock",
    "ClockConfig",
    "Node",
    "PartitionPlacement",
    "Partitioner",
    "ServiceModel",
    "place_partitions",
]
