"""Hash partitioning of the key space.

Keys are arbitrary strings; a key belongs to exactly one partition.  We
hash with crc32 (stable across processes — ``hash()`` is salted) so a
given key maps to the same partition in every run and every test.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Sequence, Set


class Partitioner:
    """Maps keys to partition ids ``0 .. num_partitions-1``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions

    def partition_of(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.num_partitions

    def group_keys(self, keys: Iterable[str]) -> Dict[int, List[str]]:
        """Split ``keys`` by partition, preserving input order per group."""
        groups: Dict[int, List[str]] = {}
        for key in keys:
            groups.setdefault(self.partition_of(key), []).append(key)
        return groups

    def participants(self, *key_sets: Sequence[str]) -> Set[int]:
        """The set of partitions touched by any key in any of the sets."""
        touched: Set[int] = set()
        for keys in key_sets:
            for key in keys:
                touched.add(self.partition_of(key))
        return touched

    def representative_keys(
        self, count: int, prefix: str = "key", spread: bool = True
    ) -> List[str]:
        """``count`` deterministic keys, optionally spanning partitions.

        With ``spread`` the first ``min(count, num_partitions)`` keys
        land on pairwise-distinct partitions, so a workload built on
        them is guaranteed to exercise multi-partition 2PC — the fuzz
        harness uses this to make every fault schedule contend across
        shards.  crc32 is stable, so the keys (and their owners) are
        identical in every process.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        keys: List[str] = []
        seen_partitions: Set[int] = set()
        candidate = 0
        while len(keys) < count:
            key = f"{prefix}-{candidate}"
            candidate += 1
            if spread and len(seen_partitions) < self.num_partitions:
                pid = self.partition_of(key)
                if pid in seen_partitions:
                    continue
                seen_partitions.add(pid)
            keys.append(key)
        return keys
