"""Hash partitioning of the key space.

Keys are arbitrary strings; a key belongs to exactly one partition.  We
hash with crc32 (stable across processes — ``hash()`` is salted) so a
given key maps to the same partition in every run and every test.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Sequence, Set


class Partitioner:
    """Maps keys to partition ids ``0 .. num_partitions-1``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions

    def partition_of(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.num_partitions

    def group_keys(self, keys: Iterable[str]) -> Dict[int, List[str]]:
        """Split ``keys`` by partition, preserving input order per group."""
        groups: Dict[int, List[str]] = {}
        for key in keys:
            groups.setdefault(self.partition_of(key), []).append(key)
        return groups

    def participants(self, *key_sets: Sequence[str]) -> Set[int]:
        """The set of partitions touched by any key in any of the sets."""
        touched: Set[int] = set()
        for keys in key_sets:
            for key in keys:
                touched.add(self.partition_of(key))
        return touched
