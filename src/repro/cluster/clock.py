"""Loosely synchronized per-node clocks.

Natto assumes clients and servers keep their clocks loosely synchronized
(e.g. with NTP).  We model each node's clock as::

    clock.now() = sim.now + offset + drift_ppm * 1e-6 * sim.now

with ``offset`` drawn uniformly from ``[-max_offset, +max_offset]`` and a
small constant frequency drift.  An optional periodic sync step pulls the
effective offset back inside the bound, emulating an NTP discipline loop.

Domino-style one-way-delay estimation (``server_receive_clock_time -
client_send_clock_time``) deliberately *includes* the relative clock skew
between the two nodes, so timestamp decisions made against the server's
clock remain correct even when clocks disagree — the tests in
``tests/cluster/test_clock.py`` and ``tests/net/test_probing.py`` pin
this property down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import Simulator


@dataclass(frozen=True)
class ClockConfig:
    """Parameters for a node clock.

    Attributes:
        max_offset: bound (seconds) on the initial offset magnitude.
        drift_ppm: constant frequency error, parts-per-million.
        sync_interval: period (seconds) of the NTP-like discipline step;
            ``0`` disables periodic sync.
        sync_error: residual offset magnitude (seconds) after a sync step.
    """

    max_offset: float = 0.001
    drift_ppm: float = 0.0
    sync_interval: float = 0.0
    sync_error: float = 0.0005


class Clock:
    """One node's view of time."""

    def __init__(
        self,
        sim: Simulator,
        config: ClockConfig = ClockConfig(),
        rng: np.random.Generator | None = None,
    ) -> None:
        self._sim = sim
        self._config = config
        self._rng = rng or np.random.default_rng(0)
        self._offset = float(
            self._rng.uniform(-config.max_offset, config.max_offset)
        )
        self._drift = config.drift_ppm * 1e-6
        #: Additive fault-injected skew (seconds), layered on top of the
        #: NTP-disciplined offset so a sync step during a skew spike
        #: neither hides nor doubles the fault — the injector sets and
        #: clears this term symmetrically.
        self.fault_skew = 0.0
        if config.sync_interval > 0:
            sim.schedule(config.sync_interval, self._sync_step)

    @property
    def offset(self) -> float:
        """Current total offset relative to true simulated time."""
        return self._offset + self._drift * self._sim._now + self.fault_skew

    def now(self) -> float:
        """This node's current clock reading (seconds)."""
        sim_now = self._sim._now
        return sim_now + self._offset + self._drift * sim_now + self.fault_skew

    def until(self, clock_time: float) -> float:
        """Simulated-time delay until this clock reads ``clock_time``.

        Never negative: a deadline already in the past maps to 0, so
        ``sim.schedule(clock.until(t), ...)`` is always legal.
        """
        return max(0.0, clock_time - self.now())

    def _sync_step(self) -> None:
        # NTP discipline: snap the accumulated offset (base + drift so
        # far) back inside the residual error bound.
        error = self._config.sync_error
        self._offset = float(self._rng.uniform(-error, error)) - (
            self._drift * self._sim.now
        )
        self._sim.schedule(self._config.sync_interval, self._sync_step)
