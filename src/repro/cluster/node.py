"""Simulated machines and their CPU service-time model.

A :class:`Node` is anything with an address, a datacenter, a clock and a
message handler.  Servers subclass it and register RPC handlers; clients
usually run as processes holding a reference to a client-side node.

Service model
-------------
Real servers saturate: Figure 14 of the paper (throughput vs partitions)
and the leader-bottleneck effect in Figure 7(c) only exist because CPUs
are finite.  We model each node as a single FIFO service queue: handling
a message costs ``service_time`` seconds of node CPU, messages are
serviced in arrival order, and a message arriving while the node is busy
waits.  ``service_time == 0`` (the default for clients) disposes of the
queue entirely.

The per-message cost is intentionally coarse — one constant for light
messages and the option of per-message overrides via
:meth:`Node.service_time_for`.  Calibration lives with the experiments,
not here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.clock import Clock, ClockConfig
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.message import Message


class ServiceModel:
    """FIFO busy-cursor CPU model for one node."""

    def __init__(self, sim: Simulator, service_time: float = 0.0) -> None:
        self._sim = sim
        self.service_time = service_time
        self._busy_until = 0.0

    def admission_delay(self, cost: float) -> float:
        """Queue a task costing ``cost`` seconds; return delay to completion.

        The returned delay covers both queueing behind earlier work and
        the task's own service time.
        """
        if cost <= 0.0:
            return 0.0
        now = self._sim._now
        busy = self._busy_until
        start = now if now > busy else busy
        self._busy_until = start + cost
        return start + cost - now

    def stall_until(self, when: float) -> None:
        """Freeze this CPU until ``when`` (fault injection).

        Everything already queued, plus every message arriving before
        ``when``, is serviced after the stall in FIFO order — the model
        of a GC pause, a VM freeze, or the non-durable crash+recovery
        the fault injector provides (state survives, time is lost).
        Idempotent against shorter stalls: the cursor only moves forward.
        """
        if when > self._busy_until:
            self._busy_until = when

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def utilization_ahead(self) -> float:
        """Seconds of queued work not yet drained (0 when idle)."""
        return max(0.0, self._busy_until - self._sim.now)


class Node:
    """Base class for simulated machines.

    Subclasses implement :meth:`handle_message` (for one-way messages)
    and/or ``handle_<method>`` methods invoked by the RPC layer in
    :mod:`repro.net.network`.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        datacenter: str,
        clock: Optional[Clock] = None,
        service_time: float = 0.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.datacenter = datacenter
        self.clock = clock or Clock(sim, ClockConfig(max_offset=0.0))
        self.service = ServiceModel(sim, service_time)

    def service_time_for(self, message: "Message") -> float:
        """CPU cost of handling ``message``; override for per-type costs."""
        return self.service.service_time

    def handle_message(self, message: "Message") -> Any:
        """One-way message entry point; default drops the message."""
        raise NotImplementedError(
            f"{type(self).__name__} ({self.name}) cannot handle "
            f"one-way message {message.method!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}@{self.datacenter}>"
