"""Conflict detection for fixed read/write key sets.

Carousel's read-and-prepare uses OCC over the transaction's pre-declared
key sets: a new transaction conflicts with a prepared one iff one of them
writes a key the other reads or writes.  (The paper's prose for Natto's
high-priority lock check says a lock is unavailable if any prepared
transaction "accesses" the key; we use read/write semantics — read-read
does not conflict — which matches standard OCC and Carousel's behaviour.
This choice is recorded in DESIGN.md.)

:class:`PreparedSet` tracks currently prepared transactions with per-key
indexes so conflict checks are O(keys), not O(prepared transactions).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple


def sets_conflict(
    reads_a: Iterable[str],
    writes_a: Iterable[str],
    reads_b: Iterable[str],
    writes_b: Iterable[str],
) -> bool:
    """Do two transactions' fixed key sets conflict (write-read/write-write)?"""
    writes_a = set(writes_a)
    writes_b = set(writes_b)
    if writes_a & writes_b:
        return True
    if writes_a & set(reads_b):
        return True
    if writes_b & set(reads_a):
        return True
    return False


class PreparedSet:
    """Prepared transactions on one partition, with conflict lookup."""

    def __init__(self) -> None:
        self._prepared: Dict[str, Tuple[Set[str], Set[str]]] = {}
        self._readers: Dict[str, Set[str]] = {}
        self._writers: Dict[str, Set[str]] = {}

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self._prepared

    def __len__(self) -> int:
        return len(self._prepared)

    @property
    def txn_ids(self) -> Set[str]:
        return set(self._prepared)

    def conflicting(
        self, reads: Iterable[str], writes: Iterable[str]
    ) -> Set[str]:
        """Ids of prepared transactions conflicting with (reads, writes)."""
        reads = set(reads)
        writes = set(writes)
        conflicts: Set[str] = set()
        for key in writes:
            conflicts |= self._readers.get(key, set())
            conflicts |= self._writers.get(key, set())
        for key in reads:
            conflicts |= self._writers.get(key, set())
        return conflicts

    def is_free(self, reads: Iterable[str], writes: Iterable[str]) -> bool:
        """True iff no prepared transaction conflicts with these sets."""
        return not self.conflicting(reads, writes)

    def add(self, txn_id: str, reads: Iterable[str], writes: Iterable[str]) -> None:
        """Mark a transaction prepared.  Caller checks conflicts first."""
        if txn_id in self._prepared:
            raise ValueError(f"{txn_id} is already prepared")
        reads = set(reads)
        writes = set(writes)
        self._prepared[txn_id] = (reads, writes)
        for key in reads:
            self._readers.setdefault(key, set()).add(txn_id)
        for key in writes:
            self._writers.setdefault(key, set()).add(txn_id)

    def remove(self, txn_id: str) -> bool:
        """Unprepare (commit applied or aborted); returns whether present."""
        sets = self._prepared.pop(txn_id, None)
        if sets is None:
            return False
        reads, writes = sets
        for key in reads:
            readers = self._readers.get(key)
            if readers is not None:
                readers.discard(txn_id)
                if not readers:
                    del self._readers[key]
        for key in writes:
            writers = self._writers.get(key)
            if writers is not None:
                writers.discard(txn_id)
                if not writers:
                    del self._writers[key]
        return True

    def key_sets(self, txn_id: str) -> Tuple[Set[str], Set[str]]:
        """(reads, writes) of a prepared transaction."""
        return self._prepared[txn_id]
