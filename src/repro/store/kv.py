"""In-memory versioned key-value store.

Each key holds a single current version (these systems are not MVCC —
Carousel/Natto serve reads from the latest committed state).  A version
records which transaction wrote it, which is what the history verifier
uses to reconstruct the commit order.

Missing keys are materialized on first read from ``default_factory`` so a
1M-key dataset costs nothing until touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional


@dataclass(frozen=True)
class VersionedValue:
    """One committed version of a key."""

    value: str
    version: int
    writer: Optional[str]  # txn id, None for the initial version


def _default_value(key: str) -> str:
    # 64-byte values, as in the evaluation's dataset.
    return f"init:{key}".ljust(64, "0")[:64]


class KeyValueStore:
    """The state machine each replica applies committed writes to."""

    def __init__(
        self,
        default_factory: Callable[[str], str] = _default_value,
        record_history: bool = False,
    ) -> None:
        self._data: Dict[str, VersionedValue] = {}
        self._default_factory = default_factory
        self.applied_writes = 0
        #: Optional per-key version chains (for the history verifier).
        self.record_history = record_history
        self.history: Dict[str, list] = {}

    def read(self, key: str) -> VersionedValue:
        """Current version of ``key`` (materializing the initial value)."""
        current = self._data.get(key)
        if current is None:
            current = VersionedValue(self._default_factory(key), 0, None)
            self._data[key] = current
        return current

    def read_many(self, keys: Iterable[str]) -> Dict[str, VersionedValue]:
        return {key: self.read(key) for key in keys}

    def apply(self, key: str, value: str, writer: str) -> VersionedValue:
        """Install a committed write; returns the new version."""
        previous = self.read(key)
        new = VersionedValue(value, previous.version + 1, writer)
        self._data[key] = new
        self.applied_writes += 1
        if self.record_history:
            self.history.setdefault(key, []).append(new)
        return new

    def apply_writes(self, writes: Dict[str, str], writer: str) -> None:
        for key, value in writes.items():
            self.apply(key, value, writer)

    def version_of(self, key: str) -> int:
        return self.read(key).version

    def __len__(self) -> int:
        return len(self._data)
