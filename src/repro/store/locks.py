"""Shared/exclusive lock table for the 2PL+2PC baseline.

Mechanics live here; *policy* (wound-wait, priority preemption,
preempt-on-wait) lives in the system built on top, driven by the
``on_blocked`` callback:

* a transaction requests all its keys for one partition at once
  (:meth:`LockTable.request`); it may hold some keys while waiting for
  others (real 2PL behaviour — deadlock is prevented by the policy, not
  by all-or-nothing acquisition);
* whenever a grant attempt fails, ``on_blocked(txn_id, key, blockers)``
  fires, and the policy decides whether to wound/preempt a blocker
  (which eventually leads to :meth:`release` for the victim) or let the
  requester wait;
* waiters queue per key ordered by (timestamp, txn id) — older first —
  which is the wound-wait fairness order and also Natto-paper-style
  timestamp order when the 2PL system runs with priority preemption.

``release`` removes both held locks and queued waits, then re-drives
grants; ``cancel`` is release for a transaction that dies while waiting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim import Future


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


def _compatible(a: LockMode, b: LockMode) -> bool:
    return a is LockMode.SHARED and b is LockMode.SHARED


@dataclass
class LockRequest:
    """One transaction's lock demand on one partition."""

    txn_id: str
    key_modes: Dict[str, LockMode]
    timestamp: float
    priority: int = 0  # higher = more important; policies may use it
    future: Future = field(default_factory=Future)
    granted: Set[str] = field(default_factory=set)

    @property
    def pending(self) -> Set[str]:
        return set(self.key_modes) - self.granted

    def sort_key(self) -> Tuple[float, str]:
        return (self.timestamp, self.txn_id)


class _KeyState:
    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: Dict[str, LockMode] = {}
        self.queue: List[LockRequest] = []


class LockTable:
    """Per-partition lock manager."""

    def __init__(
        self,
        on_blocked: Optional[Callable[[str, str, Set[str]], None]] = None,
        order_key: Optional[Callable[[LockRequest], tuple]] = None,
    ) -> None:
        self._keys: Dict[str, _KeyState] = {}
        self._requests: Dict[str, LockRequest] = {}
        self.on_blocked = on_blocked
        # Queue ordering: timestamp order by default (wound-wait
        # fairness); the prioritized 2PL variants order by priority
        # first ("a separate queue per priority level").
        self.order_key = order_key or LockRequest.sort_key

    # ------------------------------------------------------------------
    # Queries

    def holders(self, key: str) -> Dict[str, LockMode]:
        state = self._keys.get(key)
        return dict(state.holders) if state else {}

    def is_waiting(self, txn_id: str) -> bool:
        """Does this transaction have ungranted keys? (POW's predicate)"""
        request = self._requests.get(txn_id)
        return request is not None and bool(request.pending)

    def blockers_of(self, txn_id: str) -> Set[str]:
        """Transactions currently holding keys this one waits for."""
        request = self._requests.get(txn_id)
        if request is None:
            return set()
        blocking: Set[str] = set()
        for key in request.pending:
            state = self._keys.get(key)
            if state is None:
                continue
            mode = request.key_modes[key]
            for holder, held_mode in state.holders.items():
                if holder != txn_id and not _compatible(mode, held_mode):
                    blocking.add(holder)
        return blocking

    def request_of(self, txn_id: str) -> Optional[LockRequest]:
        return self._requests.get(txn_id)

    # ------------------------------------------------------------------
    # Acquisition / release

    def request(self, request: LockRequest) -> Future:
        """Ask for all of ``request.key_modes``.

        The returned future resolves with ``True`` once every key is
        granted.  It never resolves with failure on its own — abandoning
        a request is the caller's move (:meth:`cancel`).
        """
        if request.txn_id in self._requests:
            raise ValueError(f"{request.txn_id} already has a lock request")
        self._requests[request.txn_id] = request
        for key in request.key_modes:
            state = self._keys.setdefault(key, _KeyState())
            state.queue.append(request)
            state.queue.sort(key=self.order_key)
        for key in list(request.key_modes):
            self._try_grant(key)
        self._check_done(request)
        return request.future

    def release(self, txn_id: str) -> None:
        """Drop all locks and queued waits of ``txn_id``; re-drive grants."""
        request = self._requests.pop(txn_id, None)
        if request is None:
            return
        for key in request.key_modes:
            state = self._keys.get(key)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            state.queue = [r for r in state.queue if r.txn_id != txn_id]
            self._try_grant(key)
            if not state.holders and not state.queue:
                del self._keys[key]

    def cancel(self, txn_id: str) -> None:
        """Alias of release, for a transaction aborted while waiting."""
        self.release(txn_id)

    # ------------------------------------------------------------------
    # Grant machinery

    def _try_grant(self, key: str) -> None:
        state = self._keys.get(key)
        if state is None:
            return
        # Grant from the queue head while compatible; stop at the first
        # waiter that cannot be granted (no barging past the queue).
        progressed = True
        while progressed and state.queue:
            progressed = False
            head = state.queue[0]
            mode = head.key_modes[key]
            conflicting = {
                holder
                for holder, held in state.holders.items()
                if holder != head.txn_id and not _compatible(mode, held)
            }
            if conflicting:
                if self.on_blocked is not None:
                    self.on_blocked(head.txn_id, key, conflicting)
                return
            state.queue.pop(0)
            state.holders[head.txn_id] = mode
            head.granted.add(key)
            self._check_done(head)
            progressed = True

    def _check_done(self, request: LockRequest) -> None:
        if not request.pending and not request.future.done:
            request.future.set_result(True)
