"""Storage substrate: versioned key-value store and concurrency control
primitives shared by the transaction systems.

* :mod:`repro.store.kv` — in-memory versioned KV store (the paper's data
  set is 1M 64-byte key / 64-byte value pairs; values here are created
  lazily from a default factory so the store stays sparse).
* :mod:`repro.store.occ` — the "prepared set" used by Carousel-style OCC
  read-and-prepare: conflict detection between fixed read/write key sets.
* :mod:`repro.store.locks` — a shared/exclusive lock table with wait
  queues and wound-wait / priority-preemption hooks, used by the
  Spanner-like 2PL+2PC baseline.
"""

from repro.store.kv import KeyValueStore, VersionedValue
from repro.store.locks import LockMode, LockRequest, LockTable
from repro.store.occ import PreparedSet, sets_conflict

__all__ = [
    "KeyValueStore",
    "LockMode",
    "LockRequest",
    "LockTable",
    "PreparedSet",
    "VersionedValue",
    "sets_conflict",
]
