"""natto-repro: a reproduction of Natto (SIGMOD 2022).

Natto is a geo-distributed transactional key-value store with
transaction prioritization: clients stamp transactions with
network-measurement-based arrival-time timestamps, servers process them
in timestamp order, and four mechanisms built on that order (priority
abort, conditional prepare, local/remote early committed state
forwarding) cut the high-priority tail latency under contention.

This package contains the full system and everything its evaluation
depends on, all running on a deterministic discrete-event simulator:

========================  ==============================================
``repro.sim``             event kernel, coroutines, seeded randomness
``repro.net``             simulated WAN (Table 1 delays, jitter, loss),
                          probing (Domino-style delay estimation)
``repro.cluster``         clocks, CPU model, partitioning, placement
``repro.raft``            Raft replication groups
``repro.store``           versioned KV, OCC prepared sets, lock table
``repro.txn``             2FI transactions, priorities, measurements
``repro.core``            **Natto** (TS/LECSF/PA/CP/RECSF variants)
``repro.systems``         Carousel Basic/Fast, TAPIR, 2PL+2PC(+P/POW)
``repro.workloads``       YCSB+T, Retwis, SmallBank
``repro.harness``         experiment runner and reporting
``repro.verify``          conflict-serializability checking
``repro.experiments``     one module per paper table/figure + CLI
========================  ==============================================

Quick start: see ``examples/quickstart.py`` and the README.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
