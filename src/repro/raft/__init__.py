"""Raft replication (Ongaro & Ousterhout) for partition replica groups.

Natto/Carousel replicate each data partition with Raft; every latency
figure in the paper includes at least one "replicate to a majority"
round, so the cost structure here matters:

* the leader appends to its log and broadcasts ``AppendEntries``;
* followers ack; the entry commits when a majority (leader included)
  has it — i.e. one round trip to the **nearest majority** of followers;
* committed entries are applied in log order on every replica.

:class:`ReplicationGroup` is the facade the transaction systems use:
``group.replicate(payload) -> Future`` resolves when the entry commits
at the leader.  Full leader election (randomized timeouts, RequestVote,
term safety) is implemented and tested, but the paper's experiments run
failure-free with pre-designated leaders ("our prototypes do not
implement fault recovery"), so the harness disables election timers.
"""

from repro.raft.log import LogEntry, RaftLog
from repro.raft.node import RaftConfig, RaftReplica, Role
from repro.raft.group import ReplicationGroup

__all__ = [
    "LogEntry",
    "RaftConfig",
    "RaftLog",
    "RaftReplica",
    "ReplicationGroup",
    "Role",
]
