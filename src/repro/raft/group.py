"""Facade over a partition's replica group.

Transaction systems do not care about Raft internals; they need exactly
one operation — "make this durable on a majority" — plus knowledge of
where the leader is.  :class:`ReplicationGroup` wires up the replicas of
one partition (leader in the placement's first datacenter) and exposes
:meth:`replicate`.

In failure-free mode (``election_timeout=None``) the designated leader
ascends immediately at construction, so the group is usable at t=0
without an election round — matching the paper's experiments, which
start from a stable deployment.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.cluster.placement import PartitionPlacement
from repro.net.network import Network
from repro.raft.node import RaftConfig, RaftReplica
from repro.sim import Future, Simulator


class ReplicationGroup:
    """All replicas of one partition."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        placement: PartitionPlacement,
        config: RaftConfig = RaftConfig(),
        apply_callback: Optional[Callable[[Any, int], None]] = None,
        rng: Optional[np.random.Generator] = None,
        replica_factory: Optional[Callable[..., RaftReplica]] = None,
        **node_kwargs: Any,
    ) -> None:
        self.placement = placement
        names = [
            self.replica_name(placement.partition_id, dc)
            for dc in placement.datacenters
        ]
        factory = replica_factory or RaftReplica
        self.replicas: List[RaftReplica] = []
        for name, dc in zip(names, placement.datacenters):
            replica = factory(
                sim,
                network,
                name,
                dc,
                peers=names,
                config=config,
                apply_callback=apply_callback,
                rng=rng,
                **node_kwargs,
            )
            self.replicas.append(replica)
        self.leader = self.replicas[0]
        if config.election_timeout is None:
            self.leader.current_term = 1
            self.leader.become_leader()
        else:
            for replica in self.replicas:
                replica.start()

    @staticmethod
    def replica_name(partition_id: int, datacenter: str) -> str:
        return f"p{partition_id}-{datacenter}"

    @property
    def partition_id(self) -> int:
        return self.placement.partition_id

    @property
    def leader_name(self) -> str:
        return self.leader.name

    @property
    def replica_names(self) -> List[str]:
        return [r.name for r in self.replicas]

    def replicate(self, payload: Any) -> Future:
        """Durably replicate ``payload``; resolves at majority commit."""
        return self.leader.propose(payload)

    def replica_in(self, datacenter: str) -> Optional[RaftReplica]:
        """The replica hosted in ``datacenter``, if any."""
        for replica in self.replicas:
            if replica.datacenter == datacenter:
                return replica
        return None

    def closest_replica_name(self, datacenter: str, topology) -> str:
        """Replica with the lowest RTT from ``datacenter`` (TAPIR reads)."""
        return min(
            self.replicas,
            key=lambda r: topology.rtt(datacenter, r.datacenter),
        ).name
