"""The replicated log.

Indexes are 1-based, as in the Raft paper; index 0 is the empty-log
sentinel with term 0.  The log enforces the Log Matching property
locally: entries are only appended after a successful
``(prev_index, prev_term)`` consistency check, and a conflicting suffix
is truncated before new entries are written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class LogEntry:
    """One log slot: the term it was created in and an opaque payload."""

    term: int
    payload: Any


class RaftLog:
    """An in-memory Raft log."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_index(self) -> int:
        return len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else 0

    def term_at(self, index: int) -> Optional[int]:
        """Term of the entry at ``index`` (0 for the sentinel), or None."""
        if index == 0:
            return 0
        if 1 <= index <= len(self._entries):
            return self._entries[index - 1].term
        return None

    def entry_at(self, index: int) -> LogEntry:
        return self._entries[index - 1]

    def append(self, entry: LogEntry) -> int:
        """Leader-side append; returns the new entry's index."""
        self._entries.append(entry)
        return len(self._entries)

    def entries_from(self, index: int) -> List[LogEntry]:
        """Entries at ``index`` and beyond (for AppendEntries payloads)."""
        return self._entries[index - 1:]

    def matches(self, prev_index: int, prev_term: int) -> bool:
        """The AppendEntries consistency check."""
        return self.term_at(prev_index) == prev_term

    def append_from_leader(
        self, prev_index: int, prev_term: int, entries: List[LogEntry]
    ) -> bool:
        """Follower-side append after the consistency check.

        Truncates any conflicting suffix (same index, different term)
        before writing, per Raft's conflict rule.  Returns False if the
        consistency check fails.
        """
        if not self.matches(prev_index, prev_term):
            return False
        for offset, entry in enumerate(entries):
            index = prev_index + 1 + offset
            existing_term = self.term_at(index)
            if existing_term is None:
                self._entries.append(entry)
            elif existing_term != entry.term:
                del self._entries[index - 1:]
                self._entries.append(entry)
            # else: duplicate of an entry we already have; keep it.
        return True

    def up_to_date(self, other_last_index: int, other_last_term: int) -> bool:
        """Is (other_last_index, other_last_term) at least as fresh as us?

        Used by the voting rule: grant votes only to candidates whose
        log is at least as up-to-date.
        """
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index

    def snapshot(self) -> Tuple[LogEntry, ...]:
        """Immutable copy, for tests and invariant checks."""
        return tuple(self._entries)
