"""A Raft replica.

Implements the core of the protocol: terms, the three roles, leader
election with randomized timeouts, AppendEntries replication with
log-matching repair (next_index back-off), and majority commit.

Simplifications relative to a production Raft (documented in DESIGN.md):

* no persistence (the simulation never crash-restarts a node);
* no snapshotting/log compaction;
* no membership changes.

The experiments run with ``election_timeout=None`` (stable pre-designated
leaders, matching the paper's failure-free evaluation); elections are
exercised by the unit tests in ``tests/raft/test_election.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.cluster.node import Node
from repro.net.network import Network
from repro.net.payload import (
    AppendEntries,
    AppendEntriesResponse,
    RequestVote,
    RequestVoteResponse,
)
from repro.raft.log import LogEntry, RaftLog
from repro.sim import Future, Simulator, Timer

#: Shared empty-entries sentinel for heartbeats (never mutated).
_NO_ENTRIES: tuple = ()


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class RaftConfig:
    """Timing parameters.

    ``election_timeout`` of None disables elections entirely (the
    harness's failure-free mode); otherwise each follower draws a
    timeout uniformly from [election_timeout, 2 * election_timeout).
    """

    heartbeat_interval: float = 0.05
    election_timeout: Optional[float] = None


class RaftReplica(Node):
    """One member of a replication group."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        datacenter: str,
        peers: List[str],
        config: RaftConfig = RaftConfig(),
        apply_callback: Optional[Callable[[Any, int], None]] = None,
        rng: Optional[np.random.Generator] = None,
        **node_kwargs: Any,
    ) -> None:
        super().__init__(sim, name, datacenter, **node_kwargs)
        self._network = network
        self.peers = [p for p in peers if p != name]
        self.config = config
        self.apply_callback = apply_callback
        self._rng = rng or np.random.default_rng(0)

        self.role = Role.FOLLOWER
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log = RaftLog()
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint: Optional[str] = None

        # Leader volatile state.
        self._next_index: Dict[str, int] = {}
        self._match_index: Dict[str, int] = {}
        # Pipelining: highest index already shipped to each peer, so a
        # new proposal or heartbeat does not re-send in-flight entries.
        self._sent_index: Dict[str, int] = {}
        self._votes: set = set()
        self._commit_futures: Dict[int, Future] = {}
        # Idle-group fast path: heartbeats to every peer carry the same
        # (term, prev_index, prev_term, [], leader_commit) tuple between
        # log appends, and the matching success responses are likewise
        # identical between term/match changes.  One cached payload
        # object serves all of them — handlers never mutate payloads —
        # so an idle group stops allocating and re-sizing per beat.
        self._idle_append: Optional[AppendEntries] = None
        self._append_response: Optional[AppendEntriesResponse] = None

        self._election_timer: Optional[Timer] = None
        self._heartbeat_timer: Optional[Timer] = None
        #: Fault injection: while True the leader emits no heartbeats
        #: (and schedules none), modelling a frozen process whose
        #: timers cannot fire.  See :meth:`pause_heartbeats`.
        self.heartbeats_paused = False
        network.register(self)

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Arm the election timer (no-op in failure-free mode)."""
        self._reset_election_timer()

    def become_leader(self) -> None:
        """Assume leadership directly (harness failure-free mode)."""
        self._ascend()

    @property
    def quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    # ------------------------------------------------------------------
    # Client interface

    def propose(self, payload: Any) -> Future:
        """Append ``payload``; resolves with its index once committed.

        Only valid on the leader — the transaction systems always talk
        to the partition leader directly.
        """
        if self.role is not Role.LEADER:
            future = Future()
            future.set_exception(RuntimeError(f"{self.name} is not the leader"))
            return future
        index = self.log.append(LogEntry(self.current_term, payload))
        future = Future()
        self._commit_futures[index] = future
        obs = self.sim.obs
        if obs.enabled:
            # Payloads are ("<kind>", "<txn attempt id>", ...) tuples.
            kind = str(payload[0]) if isinstance(payload, tuple) and payload else "?"
            txn = (
                payload[1]
                if isinstance(payload, tuple)
                and len(payload) > 1
                and isinstance(payload[1], str)
                else None
            )
            obs.metrics.counter("raft.appends").inc(kind=kind)
            span = obs.tracer.span(
                "raft:replicate", node=self.name, txn=txn, kind=kind, index=index
            )
            latency = obs.metrics.histogram("raft.commit_latency")
            started = self.sim.now

            def _committed(_f, kind=kind) -> None:
                span.finish()
                latency.observe(self.sim.now - started, kind=kind)

            # Registered before any chance of resolution so the no-peer
            # immediate-commit path still records (fires synchronously).
            future.add_done_callback(_committed)
        if not self.peers:
            self._advance_commit()
        else:
            for peer in self.peers:
                self._send_entries(peer)
        return future

    # ------------------------------------------------------------------
    # Fault injection

    def pause_heartbeats(self) -> None:
        """Stop the heartbeat series (leader pause fault).  The replica
        keeps its role and log; a paused leader simply goes silent, so
        followers with elections enabled will depose it."""
        self.heartbeats_paused = True
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    def resume_heartbeats(self) -> None:
        """Undo :meth:`pause_heartbeats`; a still-leader resumes beating
        immediately."""
        if not self.heartbeats_paused:
            return
        self.heartbeats_paused = False
        if self.role is Role.LEADER:
            self._broadcast_heartbeat()

    # ------------------------------------------------------------------
    # Elections

    def _reset_election_timer(self) -> None:
        if self.config.election_timeout is None:
            return
        if self._election_timer is not None:
            self._election_timer.cancel()
        timeout = float(
            self._rng.uniform(
                self.config.election_timeout, 2 * self.config.election_timeout
            )
        )
        self._election_timer = self.sim.schedule(timeout, self._start_election)

    def _start_election(self) -> None:
        if self.role is Role.LEADER:
            return
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self._votes = {self.name}
        self._reset_election_timer()
        if len(self._votes) >= self.quorum:
            self._ascend()
            return
        for peer in self.peers:
            self._network.send(
                self,
                peer,
                "request_vote",
                RequestVote(
                    self.current_term,
                    self.name,
                    self.log.last_index,
                    self.log.last_term,
                ),
            )

    def handle_request_vote(self, payload: RequestVote, src: str) -> None:
        term = payload.term
        if term > self.current_term:
            self._step_down(term)
        granted = (
            term == self.current_term
            and self.voted_for in (None, payload.candidate)
            and self.log.up_to_date(
                payload.last_log_index, payload.last_log_term
            )
        )
        if granted:
            self.voted_for = payload.candidate
            self._reset_election_timer()
        self._network.send(
            self,
            src,
            "request_vote_response",
            RequestVoteResponse(self.current_term, granted, self.name),
        )

    def handle_request_vote_response(
        self, payload: RequestVoteResponse, src: str
    ) -> None:
        if payload.term > self.current_term:
            self._step_down(payload.term)
            return
        if self.role is not Role.CANDIDATE or payload.term != self.current_term:
            return
        if payload.granted:
            self._votes.add(payload.voter)
            if len(self._votes) >= self.quorum:
                self._ascend()

    def _ascend(self) -> None:
        self.role = Role.LEADER
        self.leader_hint = self.name
        if self._election_timer is not None:
            self._election_timer.cancel()
        for peer in self.peers:
            self._next_index[peer] = self.log.last_index + 1
            self._match_index[peer] = 0
            self._sent_index[peer] = self.log.last_index
        self._broadcast_heartbeat()

    def _step_down(self, term: int) -> None:
        was_leader = self.role is Role.LEADER
        self.current_term = term
        self.role = Role.FOLLOWER
        self.voted_for = None
        if was_leader and self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        self._reset_election_timer()

    # ------------------------------------------------------------------
    # Replication

    def _broadcast_heartbeat(self) -> None:
        if self.role is not Role.LEADER or self.heartbeats_paused:
            return
        for peer in self.peers:
            self._send_entries(peer)
        self._heartbeat_timer = self.sim.schedule(
            self.config.heartbeat_interval, self._broadcast_heartbeat
        )

    def _send_entries(self, peer: str) -> None:
        next_index = self._next_index.get(peer, self.log.last_index + 1)
        # Ship only entries not already in flight; retransmission is
        # driven by failure responses resetting the send pointer.
        start = max(next_index, self._sent_index.get(peer, 0) + 1)
        prev_index = start - 1
        # Probe the tail length before slicing: idle heartbeats (the
        # common case) would otherwise allocate an empty list per peer.
        entries = (
            self.log.entries_from(start)
            if start <= self.log.last_index
            else None
        )
        if entries:
            self._sent_index[peer] = prev_index + len(entries)
            payload = AppendEntries(
                self.current_term,
                self.name,
                prev_index,
                self.log.term_at(prev_index),
                [(e.term, e.payload) for e in entries],
                self.commit_index,
            )
        else:
            # Idle heartbeat: reuse the cached payload while nothing in
            # (term, prev, commit) has moved.  In steady state every
            # peer sees the same tuple, so one object serves them all.
            prev_term = self.log.term_at(prev_index)
            payload = self._idle_append
            if (
                payload is None
                or payload.term != self.current_term
                or payload.prev_index != prev_index
                or payload.prev_term != prev_term
                or payload.leader_commit != self.commit_index
            ):
                payload = AppendEntries(
                    self.current_term,
                    self.name,
                    prev_index,
                    prev_term,
                    _NO_ENTRIES,
                    self.commit_index,
                )
                self._idle_append = payload
        self._network.send(self, peer, "append_entries", payload)

    def handle_append_entries(self, payload: AppendEntries, src: str) -> None:
        term = payload.term
        if term > self.current_term:
            self._step_down(term)
        if term < self.current_term:
            self._network.send(
                self,
                src,
                "append_entries_response",
                AppendEntriesResponse(self.current_term, False, self.name, 0),
            )
            return
        # Valid leader for this term.
        if self.role is Role.CANDIDATE:
            self.role = Role.FOLLOWER
        self.leader_hint = payload.leader
        self._reset_election_timer()
        raw = payload.entries
        if raw:
            entries = [LogEntry(t, p) for t, p in raw]
            success = self.log.append_from_leader(
                payload.prev_index, payload.prev_term, entries
            )
            match_index = payload.prev_index + len(entries) if success else 0
        else:
            # Idle heartbeat: append_from_leader with no entries is just
            # the consistency check — skip the list building.
            success = self.log.matches(payload.prev_index, payload.prev_term)
            match_index = payload.prev_index if success else 0
        if success and payload.leader_commit > self.commit_index:
            self.commit_index = min(
                payload.leader_commit, self.log.last_index
            )
            self._apply_committed()
        # Heartbeat responses between term/match changes are identical;
        # reuse the cached one (mirrors the leader's idle-payload cache).
        response = self._append_response
        if (
            response is None
            or response.term != self.current_term
            or response.success is not success
            or response.match_index != match_index
        ):
            response = AppendEntriesResponse(
                self.current_term, success, self.name, match_index
            )
            self._append_response = response
        self._network.send(self, src, "append_entries_response", response)

    def handle_append_entries_response(
        self, payload: AppendEntriesResponse, src: str
    ) -> None:
        if payload.term > self.current_term:
            self._step_down(payload.term)
            return
        if self.role is not Role.LEADER:
            return
        peer = payload.follower
        if payload.success:
            match = payload.match_index
            if match > self._match_index.get(peer, 0):
                self._match_index[peer] = match
                self._next_index[peer] = match + 1
                self._advance_commit()
        else:
            # Log mismatch: back off, rewind the send pointer, retry.
            self._next_index[peer] = max(1, self._next_index.get(peer, 1) - 1)
            self._sent_index[peer] = self._next_index[peer] - 1
            self._send_entries(peer)

    def _advance_commit(self) -> None:
        # Highest index replicated on a majority whose term is current.
        matches = sorted(
            [self.log.last_index] + list(self._match_index.values()),
            reverse=True,
        )
        majority_match = matches[self.quorum - 1]
        for index in range(self.commit_index + 1, majority_match + 1):
            if self.log.term_at(index) == self.current_term:
                self.commit_index = index
        self._apply_committed()
        self._resolve_commit_futures()

    def _resolve_commit_futures(self) -> None:
        ready = [i for i in self._commit_futures if i <= self.commit_index]
        for index in sorted(ready):
            self._commit_futures.pop(index).set_result(index)

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry_at(self.last_applied)
            self.on_apply(entry.payload, self.last_applied)

    def on_apply(self, payload: Any, index: int) -> None:
        """Apply one committed entry; subclasses override to drive their
        state machines.  Default delegates to ``apply_callback``."""
        if self.apply_callback is not None:
            self.apply_callback(payload, index)
