"""YCSB+T: the transactional YCSB extension used in §5.2.1/§5.3.1.

"Each transaction consists of 6 read-modify-write operations accessing
different keys" over a 1M-key data set with Zipfian-skewed access
(default coefficient 0.65, swept to 0.95 in Figure 8(a))."""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.sim.randomness import BatchedUniform
from repro.workloads.base import KeyChooser, Workload, bump_value
from repro.workloads.zipf import ZipfianKeys


class YcsbTWorkload(Workload):
    """6 RMW operations per transaction, Zipfian keys."""

    name = "ycsbt"

    def __init__(
        self,
        rng: np.random.Generator,
        num_keys: int = 1_000_000,
        zipf_theta: float = 0.65,
        ops_per_txn: int = 6,
        high_priority_fraction: float = 0.1,
        high_priority_types: Optional[Set[str]] = None,
        key_chooser: Optional[KeyChooser] = None,
    ) -> None:
        super().__init__(rng, high_priority_fraction, high_priority_types)
        self.ops_per_txn = ops_per_txn
        if key_chooser is None:
            # The Zipfian path draws nothing but uniforms from this
            # stream (key ranks here, priority flips in the base
            # class), so both consumers share one block-filled sampler:
            # same draw sequence, no per-draw numpy dispatch.
            self._uniform = BatchedUniform(rng)
            self.keys = ZipfianKeys(num_keys, zipf_theta, self._uniform)
        else:
            self.keys = key_chooser

    def next_transaction(self, client_name: str):
        keys = tuple(self.keys.sample_distinct(self.ops_per_txn))

        def compute_writes(reads, _keys=keys):
            return {key: bump_value(reads[key], "y") for key in _keys}

        return self._spec(client_name, "rmw", keys, keys, compute_writes)
