"""SmallBank (OLTP-Bench variant, §5.2.3).

Banking transactions over per-user ``checking:<u>`` / ``savings:<u>``
accounts.  The paper's configuration: 1M users, 1K of them "hot", and
90% of transactions touch hot users.  The OLTP-Bench mix extends the
original SmallBank with sendPayment (account-to-account transfers),
which Figure 10 singles out as the high-priority type:

* balance (15%)          — read both accounts of one user
* depositChecking (15%)  — RMW checking
* transactSavings (15%)  — RMW savings
* amalgamate (15%)       — move one user's funds into another's checking
* writeCheck (15%)       — read both, debit checking
* sendPayment (25%)      — transfer between two users' checking accounts

Balances are stringified integers (initial 1000); the write functions
do real arithmetic so the test suite can check conservation of money.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.workloads.base import Workload

INITIAL_BALANCE = 1000


def parse_balance(value: str) -> int:
    """Balance from a stored value; unwritten keys carry the store's
    64-byte init pattern and read as the initial balance."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return INITIAL_BALANCE


class SmallBankWorkload(Workload):
    """OLTP-Bench SmallBank with a hot-user skew."""

    name = "smallbank"

    MIX = (
        ("balance", 0.15),
        ("deposit_checking", 0.30),
        ("transact_savings", 0.45),
        ("amalgamate", 0.60),
        ("write_check", 0.75),
        ("send_payment", 1.00),
    )

    def __init__(
        self,
        rng: np.random.Generator,
        num_users: int = 1_000_000,
        hot_users: int = 1_000,
        hot_fraction: float = 0.9,
        high_priority_fraction: float = 0.1,
        high_priority_types: Optional[Set[str]] = None,
    ) -> None:
        super().__init__(rng, high_priority_fraction, high_priority_types)
        self.num_users = num_users
        self.hot_users = hot_users
        self.hot_fraction = hot_fraction

    # ------------------------------------------------------------------
    # User selection

    def _pick_user(self) -> int:
        if float(self._rng.random()) < self.hot_fraction:
            return int(self._rng.integers(0, self.hot_users))
        return int(self._rng.integers(self.hot_users, self.num_users))

    def _pick_two_users(self) -> List[int]:
        first = self._pick_user()
        second = self._pick_user()
        while second == first:
            second = self._pick_user()
        return [first, second]

    @staticmethod
    def checking(user: int) -> str:
        return f"checking:{user}"

    @staticmethod
    def savings(user: int) -> str:
        return f"savings:{user}"

    # ------------------------------------------------------------------

    def next_transaction(self, client_name: str):
        draw = float(self._rng.random())
        for txn_type, cumulative in self.MIX:
            if draw <= cumulative:
                break
        return getattr(self, f"_{txn_type}")(client_name)

    def _balance(self, client_name: str):
        user = self._pick_user()
        reads = (self.checking(user), self.savings(user))
        return self._spec(client_name, "balance", reads, (), lambda r: {})

    def _deposit_checking(self, client_name: str):
        key = self.checking(self._pick_user())
        amount = int(self._rng.integers(1, 100))

        def compute(reads, _key=key, _amount=amount):
            return {_key: str(parse_balance(reads[_key]) + _amount)}

        return self._spec(
            client_name, "deposit_checking", (key,), (key,), compute
        )

    def _transact_savings(self, client_name: str):
        key = self.savings(self._pick_user())
        amount = int(self._rng.integers(1, 100))

        def compute(reads, _key=key, _amount=amount):
            return {_key: str(parse_balance(reads[_key]) + _amount)}

        return self._spec(
            client_name, "transact_savings", (key,), (key,), compute
        )

    def _amalgamate(self, client_name: str):
        src, dst = self._pick_two_users()
        src_savings = self.savings(src)
        src_checking = self.checking(src)
        dst_checking = self.checking(dst)
        reads = (src_savings, src_checking, dst_checking)
        writes = reads

        def compute(r, _ss=src_savings, _sc=src_checking, _dc=dst_checking):
            moved = parse_balance(r[_ss]) + parse_balance(r[_sc])
            return {
                _ss: "0",
                _sc: "0",
                _dc: str(parse_balance(r[_dc]) + moved),
            }

        return self._spec(client_name, "amalgamate", reads, writes, compute)

    def _write_check(self, client_name: str):
        user = self._pick_user()
        checking = self.checking(user)
        savings = self.savings(user)
        amount = int(self._rng.integers(1, 100))
        reads = (checking, savings)

        def compute(r, _c=checking, _s=savings, _amount=amount):
            total = parse_balance(r[_c]) + parse_balance(r[_s])
            penalty = 1 if total < _amount else 0
            return {_c: str(parse_balance(r[_c]) - _amount - penalty)}

        return self._spec(
            client_name, "write_check", reads, (checking,), compute
        )

    def _send_payment(self, client_name: str):
        src, dst = self._pick_two_users()
        src_checking = self.checking(src)
        dst_checking = self.checking(dst)
        amount = int(self._rng.integers(1, 100))
        keys = (src_checking, dst_checking)

        def compute(r, _s=src_checking, _d=dst_checking, _amount=amount):
            src_balance = parse_balance(r[_s])
            if src_balance < _amount:
                return {}  # insufficient funds: commit with no effect
            return {
                _s: str(src_balance - _amount),
                _d: str(parse_balance(r[_d]) + _amount),
            }

        return self._spec(client_name, "send_payment", keys, keys, compute)
