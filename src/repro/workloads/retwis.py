"""Retwis: the synthetic Twitter-like workload (§5.2.2).

Transaction profile, exactly as the paper states it:

* 5%  add user      — reads 1 key, writes 3 keys
* 15% follow user   — reads and writes 2 keys
* 30% post tweet    — reads 3 keys, writes 5 keys
* 50% load timeline — reads 1-10 keys (uniformly random count)

Keys are drawn from the same Zipfian chooser as YCSB+T (coefficient
0.65 by default; swept in Figure 8(b); uniform for Figure 14's
throughput runs).
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.workloads.base import KeyChooser, Workload, bump_value
from repro.workloads.zipf import ZipfianKeys


class RetwisWorkload(Workload):
    """The TAPIR paper's Retwis mix."""

    name = "retwis"

    #: (type, cumulative probability)
    MIX = (
        ("add_user", 0.05),
        ("follow", 0.20),
        ("post_tweet", 0.50),
        ("load_timeline", 1.00),
    )

    def __init__(
        self,
        rng: np.random.Generator,
        num_keys: int = 1_000_000,
        zipf_theta: float = 0.65,
        high_priority_fraction: float = 0.1,
        high_priority_types: Optional[Set[str]] = None,
        key_chooser: Optional[KeyChooser] = None,
    ) -> None:
        super().__init__(rng, high_priority_fraction, high_priority_types)
        self.keys = key_chooser or ZipfianKeys(num_keys, zipf_theta, rng)

    def next_transaction(self, client_name: str):
        draw = float(self._rng.random())
        for txn_type, cumulative in self.MIX:
            if draw <= cumulative:
                break
        builder = getattr(self, f"_{txn_type}")
        return builder(client_name)

    # ------------------------------------------------------------------
    # Transaction types

    def _add_user(self, client_name: str):
        keys = self.keys.sample_distinct(3)
        reads = (keys[0],)
        writes = tuple(keys)

        def compute(reads_in, _w=writes):
            return {key: bump_value(reads_in.get(key, ""), "u") for key in _w}

        return self._spec(client_name, "add_user", reads, writes, compute)

    def _follow(self, client_name: str):
        keys = tuple(self.keys.sample_distinct(2))

        def compute(reads_in, _k=keys):
            return {key: bump_value(reads_in[key], "f") for key in _k}

        return self._spec(client_name, "follow", keys, keys, compute)

    def _post_tweet(self, client_name: str):
        keys = self.keys.sample_distinct(5)
        reads = tuple(keys[:3])
        writes = tuple(keys)

        def compute(reads_in, _w=writes):
            return {key: bump_value(reads_in.get(key, ""), "t") for key in _w}

        return self._spec(client_name, "post_tweet", reads, writes, compute)

    def _load_timeline(self, client_name: str):
        count = int(self._rng.integers(1, 11))
        reads = tuple(self.keys.sample_distinct(count))
        return self._spec(
            client_name, "load_timeline", reads, (), lambda reads_in: {}
        )
