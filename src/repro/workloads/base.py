"""Workload plumbing shared by YCSB+T, Retwis and SmallBank.

A workload is a factory of :class:`~repro.txn.transaction.TransactionSpec`s:
the client driver calls :meth:`Workload.next_transaction` for every new
(open-loop) arrival.  The base class owns transaction ids, priority
assignment (10% high / 90% low by default, the paper's setting from
McWherter et al.) and the value-update convention used by all three
workloads' ``compute_writes`` functions.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.txn.priority import Priority
from repro.txn.transaction import TransactionSpec


class KeyChooser(abc.ABC):
    """Strategy for picking keys (Zipfian, uniform, hotspot...)."""

    @abc.abstractmethod
    def sample_distinct(self, count: int) -> List[str]: ...


class UniformKeys(KeyChooser):
    """Uniform choice over ``prefix-<i>`` (the Figure 14 distribution)."""

    def __init__(
        self,
        num_keys: int,
        rng: np.random.Generator,
        prefix: str = "key",
    ) -> None:
        self.num_keys = num_keys
        self.prefix = prefix
        self._rng = rng

    def sample_distinct(self, count: int) -> List[str]:
        ranks = self._rng.choice(self.num_keys, size=count, replace=False)
        return [f"{self.prefix}-{int(r)}" for r in ranks]


def bump_value(old: str, tag: str) -> str:
    """The standard RMW update: fold a tag into a 64-byte value."""
    return (old + "|" + tag)[-64:]


class Workload(abc.ABC):
    """Base class: ids, priorities, and the per-type generators."""

    name = "abstract"

    def __init__(
        self,
        rng: np.random.Generator,
        high_priority_fraction: float = 0.1,
        high_priority_types: Optional[Set[str]] = None,
    ) -> None:
        """``high_priority_types``, when given, replaces the random
        priority assignment: exactly those transaction types run at high
        priority (the Figure 10 setup, where only sendPayment is high)."""
        self._rng = rng
        # Where priority coin flips come from.  Workloads whose stream
        # carries nothing but uniform draws (YCSB+T's Zipfian path) may
        # replace this with a shared block-filled sampler; the default
        # draws straight from the generator because mixed-distribution
        # streams (Retwis, SmallBank) cannot be batched per shape
        # without reordering the stream.
        self._uniform = rng
        self.high_priority_fraction = high_priority_fraction
        self.high_priority_types = high_priority_types
        self._counters: Dict[str, int] = {}

    def _next_id(self, client_name: str) -> str:
        count = self._counters.get(client_name, 0)
        self._counters[client_name] = count + 1
        return f"{client_name}:{count}"

    def _priority_for(self, txn_type: str) -> Priority:
        if self.high_priority_types is not None:
            return (
                Priority.HIGH
                if txn_type in self.high_priority_types
                else Priority.LOW
            )
        if float(self._uniform.random()) < self.high_priority_fraction:
            return Priority.HIGH
        return Priority.LOW

    def _spec(
        self,
        client_name: str,
        txn_type: str,
        reads: Sequence[str],
        writes: Sequence[str],
        compute_writes,
    ) -> TransactionSpec:
        txn_id = self._next_id(client_name)
        return TransactionSpec(
            txn_id=txn_id,
            read_keys=tuple(reads),
            write_keys=tuple(writes),
            priority=self._priority_for(txn_type),
            compute_writes=compute_writes,
            txn_type=txn_type,
        )

    @abc.abstractmethod
    def next_transaction(self, client_name: str) -> TransactionSpec: ...
