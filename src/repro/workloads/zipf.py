"""Zipfian key selection, YCSB style.

The paper's experiments draw keys "following a Zipfian distribution
with a default coefficient of 0.65" over a 1M-key data set, sweeping the
coefficient to 0.95 for the contention experiments (Figure 8).  We use
YCSB's ZipfianGenerator algorithm (Gray et al.'s rejection-inversion
closed form), which samples in O(1) after an O(N) zeta precomputation,
plus YCSB's *scrambled* variant: ranks are hashed before being mapped to
keys, so the popular keys spread uniformly over the key space (and thus
over partitions) instead of clustering at low ids.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

# Cache of zeta sums: (n, theta) -> zeta(n, theta).  Computing the sum
# for 1M items takes ~10 ms; experiments re-create workloads per run.
_ZETA_CACHE: Dict[Tuple[int, float], float] = {}

#: FNV-1a constants for rank scrambling (stable across processes).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number sum_{i=1..n} 1/i^theta."""
    key = (n, theta)
    value = _ZETA_CACHE.get(key)
    if value is None:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        value = float(np.sum(ranks ** -theta))
        _ZETA_CACHE[key] = value
    return value


def fnv_hash(value: int) -> int:
    """64-bit FNV-1a over the integer's 8 bytes."""
    h = _FNV_OFFSET
    for _ in range(8):
        h = ((h ^ (value & 0xFF)) * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class ZipfianGenerator:
    """Samples ranks in [0, n) with P(rank=i) proportional to 1/(i+1)^theta.

    ``rng`` is anything with a scalar ``random()`` method: a
    ``numpy.random.Generator``, or a
    :class:`repro.sim.randomness.BatchedUniform` when the owning
    workload batches its (uniform-only) stream.
    """

    def __init__(self, n: int, theta: float, rng: np.random.Generator) -> None:
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1) for this sampler")
        if n < 2:
            raise ValueError("need at least two items")
        self.n = n
        self.theta = theta
        self._rng = rng
        self._zetan = zeta(n, theta)
        self._zeta2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    def sample(self) -> int:
        u = float(self._rng.random())
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


class ZipfianKeys:
    """Scrambled-Zipfian chooser over ``key-<i>`` names."""

    def __init__(
        self,
        num_keys: int,
        theta: float,
        rng: np.random.Generator,
        prefix: str = "key",
        scramble: bool = True,
    ) -> None:
        self.num_keys = num_keys
        self.prefix = prefix
        self.scramble = scramble
        self._generator = ZipfianGenerator(num_keys, theta, rng)

    def sample_key(self) -> str:
        rank = self._generator.sample()
        if self.scramble:
            rank = fnv_hash(rank) % self.num_keys
        return f"{self.prefix}-{rank}"

    def sample_distinct(self, count: int) -> List[str]:
        """``count`` distinct keys (re-sampling collisions away)."""
        chosen: List[str] = []
        seen = set()
        while len(chosen) < count:
            key = self.sample_key()
            if key not in seen:
                seen.add(key)
                chosen.append(key)
        return chosen
