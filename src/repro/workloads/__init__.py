"""The paper's three workloads, plus the key-distribution machinery.

* :mod:`repro.workloads.zipf` — YCSB's Zipfian generator (with key
  scrambling so hot keys spread across partitions) and a uniform
  alternative for the Figure 14 throughput experiment.
* :mod:`repro.workloads.ycsbt` — YCSB+T: 6 read-modify-write operations
  per transaction over Zipfian keys.
* :mod:`repro.workloads.retwis` — the TAPIR paper's synthetic
  Twitter-like mix (add user / follow / post / load timeline).
* :mod:`repro.workloads.smallbank` — OLTP-Bench SmallBank: six banking
  transaction types, 1M users, a 1K-user hotspot receiving 90% of
  accesses.
"""

from repro.workloads.base import KeyChooser, UniformKeys, Workload
from repro.workloads.retwis import RetwisWorkload
from repro.workloads.smallbank import SmallBankWorkload
from repro.workloads.ycsbt import YcsbTWorkload
from repro.workloads.zipf import ZipfianGenerator, ZipfianKeys

__all__ = [
    "KeyChooser",
    "RetwisWorkload",
    "SmallBankWorkload",
    "UniformKeys",
    "Workload",
    "YcsbTWorkload",
    "ZipfianGenerator",
    "ZipfianKeys",
]
