"""Messages exchanged over the simulated network.

Messages carry a method name (dispatched to ``handle_<method>`` on the
destination node for RPCs, or to ``handle_message`` for one-way sends), a
payload dict, and an estimated wire size used by the bandwidth pipes.

Sizing: keys and values in the evaluation are 64-byte strings; a
message's wire size is a fixed header plus the payload's estimated
serialized size.  The estimate is deliberately simple — it only needs to
rank systems by bytes pushed (Carousel Basic replicates write data twice,
Carousel Fast fans out to every replica, ...), which drives Figure 12.

``Message`` is a hand-written ``__slots__`` class rather than a
dataclass: one is allocated per network send, and the dataclass
machinery (generated ``__init__``/``__eq__``, dict-backed instances,
lazy size property) showed up as several percent of experiment runtime.
The wire size is computed eagerly in ``__init__`` because every message
needs it at dispatch time anyway (byte accounting + bandwidth pipes).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

#: Fixed per-message overhead (TCP/IP + gRPC framing, roughly).
HEADER_BYTES = 120

_message_ids = itertools.count(1)


def estimate_size(value: Any, _len=len, _str=str, _int=int, _float=float,
                  _dict=dict) -> int:
    """Rough serialized size of a payload value, in bytes.

    Iterative (explicit work stack) and ordered by frequency: message
    payloads are dominated by strings (keys/values) and numbers, so
    container items of those types are totalled inline instead of
    taking another trip through the stack.  The ``_len``/``_str``/...
    defaults pin builtins to fast locals — this runs once per network
    message and the global lookups were measurable.
    """
    total = 0
    stack = [value]
    pop = stack.pop
    append = stack.append
    while stack:
        item = pop()
        kind = item.__class__
        if kind is _str:
            total += _len(item)
        elif kind is _int or kind is _float:
            total += 8
        elif kind is _dict:
            for key, val in item.items():
                k = key.__class__
                if k is _str:
                    total += _len(key)
                elif k is _int or k is _float:
                    total += 8
                else:
                    append(key)
                k = val.__class__
                if k is _str:
                    total += _len(val)
                elif k is _int or k is _float:
                    total += 8
                else:
                    append(val)
        elif kind in (list, tuple, set, frozenset):
            for val in item:
                k = val.__class__
                if k is _str:
                    total += _len(val)
                elif k is _int or k is _float:
                    total += 8
                else:
                    append(val)
        elif item is None or kind is bool:
            total += 1
        elif kind is bytes:
            total += _len(item)
        else:
            # Opaque object: flat cost, or whatever it self-reports.
            reported = getattr(item, "wire_size", None)
            total += int(reported) if reported is not None else 64
    return total


class Message:
    """One network message."""

    __slots__ = ("method", "payload", "src", "dst", "msg_id", "reply_to",
                 "wire_size")

    def __init__(
        self,
        method: str,
        payload: Dict[str, Any],
        src: str,
        dst: str,
        msg_id: Optional[int] = None,
        reply_to: Optional[int] = None,
    ) -> None:
        self.method = method
        self.payload = payload
        self.src = src
        self.dst = dst
        self.msg_id = next(_message_ids) if msg_id is None else msg_id
        self.reply_to = reply_to
        #: Estimated bytes on the wire (header + payload); computed once
        #: — the payload is never mutated after construction.  Payload
        #: classes (:mod:`repro.net.payload`) precompute their size and
        #: are the common case, so their slot is read directly; plain
        #: dicts (and anything else without the attribute) take the
        #: estimate walk.
        try:
            self.wire_size = HEADER_BYTES + payload.wire_size
        except AttributeError:
            self.wire_size = HEADER_BYTES + estimate_size(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.msg_id} {self.method} "
            f"{self.src}->{self.dst}>"
        )
