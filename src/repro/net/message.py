"""Messages exchanged over the simulated network.

Messages carry a method name (dispatched to ``handle_<method>`` on the
destination node for RPCs, or to ``handle_message`` for one-way sends), a
payload dict, and an estimated wire size used by the bandwidth pipes.

Sizing: keys and values in the evaluation are 64-byte strings; a
message's wire size is a fixed header plus the payload's estimated
serialized size.  The estimate is deliberately simple — it only needs to
rank systems by bytes pushed (Carousel Basic replicates write data twice,
Carousel Fast fans out to every replica, ...), which drives Figure 12.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

#: Fixed per-message overhead (TCP/IP + gRPC framing, roughly).
HEADER_BYTES = 120

_message_ids = itertools.count(1)


def estimate_size(value: Any) -> int:
    """Rough serialized size of a payload value, in bytes.

    Iterative (explicit work stack) and ordered by frequency: message
    payloads are dominated by strings (keys/values) and numbers.
    """
    total = 0
    stack = [value]
    while stack:
        item = stack.pop()
        kind = type(item)
        if kind is str:
            total += len(item)
        elif kind is int or kind is float:
            total += 8
        elif kind is dict:
            stack.extend(item.keys())
            stack.extend(item.values())
        elif kind in (list, tuple, set, frozenset):
            stack.extend(item)
        elif item is None or kind is bool:
            total += 1
        elif kind is bytes:
            total += len(item)
        else:
            # Opaque object: flat cost, or whatever it self-reports.
            reported = getattr(item, "wire_size", None)
            total += int(reported) if reported is not None else 64
    return total


@dataclass
class Message:
    """One network message."""

    method: str
    payload: Dict[str, Any]
    src: str
    dst: str
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: int | None = None
    _cached_size: int = field(default=-1, repr=False, compare=False)

    @property
    def wire_size(self) -> int:
        """Estimated bytes on the wire (header + payload); cached, since
        the payload is never mutated after construction."""
        if self._cached_size < 0:
            object.__setattr__(
                self, "_cached_size", HEADER_BYTES + estimate_size(self.payload)
            )
        return self._cached_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.msg_id} {self.method} "
            f"{self.src}->{self.dst}>"
        )
