"""Datacenter topologies and round-trip delay matrices.

``AZURE_RTT_MS`` is Table 1 of the paper verbatim: average round-trip
delays (milliseconds) between the five Azure datacenters used in the
evaluation — Virginia (VA), Washington (WA), Paris (PR), New South Wales
(NSW) and Singapore (SG), from the Domino measurement data.

The hybrid AWS+Azure topology (Figure 13) replaces VA and WA with AWS
us-east / us-west.  The paper does not publish its AWS delay matrix, so
we synthesize one: the geographic legs keep Azure-like magnitudes (the
same cities are involved) and cross-provider links get a higher jitter
coefficient, which is the property Figure 13 actually probes.  This
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

#: The five Azure datacenters of the paper's default deployment.
AZURE_DATACENTERS: Tuple[str, ...] = ("VA", "WA", "PR", "NSW", "SG")

#: Table 1 — average network roundtrip delays in milliseconds.
AZURE_RTT_MS: Dict[Tuple[str, str], float] = {
    ("VA", "WA"): 67.0,
    ("VA", "PR"): 80.0,
    ("VA", "NSW"): 196.0,
    ("VA", "SG"): 214.0,
    ("WA", "PR"): 136.0,
    ("WA", "NSW"): 175.0,
    ("WA", "SG"): 163.0,
    ("PR", "NSW"): 234.0,
    ("PR", "SG"): 149.0,
    ("NSW", "SG"): 87.0,
}

#: Round-trip delay between colocated client/server processes, in ms.
#: "Natto clients are application servers that also run in the same
#: datacenters as Natto data servers" — intra-DC hops are sub-millisecond.
INTRA_DC_RTT_MS = 0.5


@dataclass(frozen=True)
class Topology:
    """A set of datacenters plus symmetric pairwise RTTs (milliseconds).

    ``jitter_scale`` optionally assigns per-pair multipliers on whatever
    jitter model the network applies; the hybrid-cloud topology uses it
    to make cross-provider links noisier.
    """

    name: str
    datacenters: Tuple[str, ...]
    rtt_ms: Mapping[Tuple[str, str], float]
    intra_dc_rtt_ms: float = INTRA_DC_RTT_MS
    jitter_scale: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    def rtt(self, a: str, b: str) -> float:
        """Round-trip delay in milliseconds between datacenters a and b."""
        if a == b:
            return self.intra_dc_rtt_ms
        value = self.rtt_ms.get((a, b))
        if value is None:
            value = self.rtt_ms.get((b, a))
        if value is None:
            raise KeyError(f"no delay configured between {a!r} and {b!r}")
        return value

    def one_way(self, a: str, b: str) -> float:
        """One-way delay in **seconds** (RTT/2, as in the paper's model)."""
        return self.rtt(a, b) / 2.0 / 1000.0

    def jitter_multiplier(self, a: str, b: str) -> float:
        pair = (a, b) if (a, b) in self.jitter_scale else (b, a)
        return float(self.jitter_scale.get(pair, 1.0))

    def max_one_way_from(self, origin: str, targets: Sequence[str]) -> float:
        """Largest one-way delay from ``origin`` to any of ``targets``."""
        return max(self.one_way(origin, t) for t in targets)


def azure_topology() -> Topology:
    """The paper's default 5-datacenter Azure deployment (Table 1)."""
    return Topology("azure-5dc", AZURE_DATACENTERS, dict(AZURE_RTT_MS))


def local_cluster_topology(
    rtts_ms: Sequence[float] = (4.0, 6.0, 8.0),
) -> Topology:
    """The Figure 14 local cluster: three simulated datacenters.

    The paper gives the three pairwise RTTs as 4, 6 and 8 ms.
    """
    if len(rtts_ms) != 3:
        raise ValueError("local cluster topology takes exactly 3 RTTs")
    dcs = ("DC1", "DC2", "DC3")
    rtt = {
        ("DC1", "DC2"): float(rtts_ms[0]),
        ("DC1", "DC3"): float(rtts_ms[1]),
        ("DC2", "DC3"): float(rtts_ms[2]),
    }
    return Topology("local-3dc", dcs, rtt, intra_dc_rtt_ms=0.2)


def hybrid_cloud_topology(cross_provider_jitter: float = 4.0) -> Topology:
    """Figure 13's hybrid deployment: AWS us-east/us-west + 3 Azure DCs.

    VA -> AWS-USE (same region family), WA -> AWS-USW.  Geographic legs
    reuse Azure-like magnitudes; links that cross the provider boundary
    get ``cross_provider_jitter`` times the baseline jitter.
    """
    dcs = ("AWS-USE", "AWS-USW", "PR", "NSW", "SG")
    rename = {"VA": "AWS-USE", "WA": "AWS-USW"}
    rtt: Dict[Tuple[str, str], float] = {}
    for (a, b), value in AZURE_RTT_MS.items():
        rtt[(rename.get(a, a), rename.get(b, b))] = value
    jitter: Dict[Tuple[str, str], float] = {}
    aws = {"AWS-USE", "AWS-USW"}
    for a, b in rtt:
        if (a in aws) != (b in aws):
            jitter[(a, b)] = cross_provider_jitter
    return Topology("hybrid-aws-azure", dcs, rtt, jitter_scale=jitter)
