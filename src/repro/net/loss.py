"""Packet-loss effects: retransmission latency and throughput collapse.

The Figure 12 experiment injects uniform packet loss with ``tc`` and the
prototypes talk TCP (gRPC), so loss shows up in two ways:

1. **Retransmission latency.**  A lost segment is retransmitted after a
   timeout/fast-retransmit.  We model the number of transmission attempts
   per message as geometric with the loss probability, each extra attempt
   adding one retransmission delay (``rto`` seconds, defaulting to the
   200 ms Linux minimum RTO — WAN RTTs here are below that).

2. **Throughput collapse.**  Sustained TCP throughput under random loss
   follows the Mathis bound ``B ≈ MSS / (RTT · sqrt(p)) · C``.  The
   network turns this into a per-datacenter-pair bandwidth cap; messages
   then queue FIFO behind the pipe, which is what saturates Carousel
   Basic first (it replicates transactional data twice, so it pushes the
   most bytes), exactly the mechanism the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.randomness import BatchedGeometric

#: Linux's minimum TCP retransmission timeout.
DEFAULT_RTO_SECONDS = 0.2

#: Typical maximum segment size on WAN paths (bytes).
DEFAULT_MSS_BYTES = 1460

#: Mathis constant for random loss with delayed ACKs.
MATHIS_CONSTANT = 1.22


def mathis_throughput(
    loss_rate: float,
    rtt_seconds: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
    cap_bytes_per_s: float = float("inf"),
) -> float:
    """Sustained TCP throughput (bytes/second) under random loss.

    With zero loss the link is only limited by ``cap_bytes_per_s`` (the
    physical capacity share).
    """
    if loss_rate <= 0.0:
        return cap_bytes_per_s
    bound = MATHIS_CONSTANT * mss_bytes / (rtt_seconds * math.sqrt(loss_rate))
    return min(cap_bytes_per_s, bound)


@dataclass(frozen=True)
class LossConfig:
    """Packet-loss parameters for the whole network.

    Attributes:
        loss_rate: per-segment loss probability (0.015 == 1.5%).
        rto: retransmission delay added per lost transmission attempt.
        mss_bytes: segment size used in the Mathis bound.
        link_capacity_bytes_per_s: loss-free per-pair capacity share.
            The paper's local cluster uses a 1 Gbps network shared by
            15 servers; the default approximates one flow's share.
    """

    loss_rate: float = 0.0
    rto: float = DEFAULT_RTO_SECONDS
    mss_bytes: int = DEFAULT_MSS_BYTES
    link_capacity_bytes_per_s: float = 8e6

    def effective_bandwidth(self, rtt_seconds: float) -> float:
        """Per-pair usable bandwidth after the Mathis cap."""
        return mathis_throughput(
            self.loss_rate,
            max(rtt_seconds, 1e-4),
            self.mss_bytes,
            self.link_capacity_bytes_per_s,
        )


class LossModel:
    """Samples per-message retransmission penalties."""

    def __init__(self, config: LossConfig, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng
        # The success probability is fixed for the run, so attempt
        # counts come from pre-filled geometric blocks (same sequence
        # as per-message scalar draws).  The loss stream is exclusive.
        self._attempts = (
            BatchedGeometric(rng, 1.0 - config.loss_rate)
            if config.loss_rate > 0.0
            else None
        )

    @property
    def config(self) -> LossConfig:
        return self._config

    def retransmission_delay(self) -> float:
        """Extra latency for one message due to lost transmissions.

        The number of transmissions is geometric(1 - p); each failed
        attempt costs one RTO.
        """
        if self._attempts is None:
            return 0.0
        return (self._attempts.next() - 1) * self._config.rto
