"""One-way delay models.

The paper's experiments use three delay regimes:

* **Stable** (Azure): variance below 0.1% of the mean — effectively
  constant.  :class:`ConstantDelay`.
* **Emulated jitter**: the Figure 11 sweep draws delays from a Pareto
  distribution with a configured coefficient of variation (the paper's
  "network delay variance" is std/mean).  :class:`ParetoDelay` solves the
  Pareto shape parameter from the requested CV in closed form.
* **Mild uniform jitter** for tests and examples.  :class:`UniformJitterDelay`.

All models return one-way delays in seconds given the topology's base
one-way delay for the datacenter pair.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.net.topology import Topology
from repro.sim.randomness import BatchedStandardExponential, BatchedUniform


class DelayModel(Protocol):
    """Samples a one-way delay (seconds) between two datacenters."""

    def sample(self, src_dc: str, dst_dc: str) -> float: ...

    def mean(self, src_dc: str, dst_dc: str) -> float: ...


class ConstantDelay:
    """Deterministic delays: exactly the topology's base one-way delay.

    Pair delays are memoized: the topology is immutable and ``sample``
    sits on the per-message hot path, so the dict-probe-plus-division
    in ``Topology.one_way`` is paid once per ordered pair.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._cache: dict = {}

    def sample(self, src_dc: str, dst_dc: str) -> float:
        key = (src_dc, dst_dc)
        delay = self._cache.get(key)
        if delay is None:
            delay = self._cache[key] = self._topology.one_way(src_dc, dst_dc)
        return delay

    def mean(self, src_dc: str, dst_dc: str) -> float:
        return self.sample(src_dc, dst_dc)


class UniformJitterDelay:
    """Base delay times a uniform factor in ``[1, 1 + jitter]``."""

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        jitter: float = 0.02,
    ) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._topology = topology
        self._rng = rng
        # The delay stream is exclusive to this model, so uniforms can
        # be pulled from blocks: uniform(0, h) is h * U[0, 1) exactly.
        self._uniform = BatchedUniform(rng)
        self._jitter = jitter

    def sample(self, src_dc: str, dst_dc: str) -> float:
        base = self._topology.one_way(src_dc, dst_dc)
        scale = self._topology.jitter_multiplier(src_dc, dst_dc)
        return base * (
            1.0 + self._jitter * scale * self._uniform.random()
        )

    def mean(self, src_dc: str, dst_dc: str) -> float:
        base = self._topology.one_way(src_dc, dst_dc)
        scale = self._topology.jitter_multiplier(src_dc, dst_dc)
        return base * (1.0 + self._jitter * scale / 2.0)


def pareto_shape_for_cv(cv: float) -> float:
    """Pareto shape α with coefficient of variation ``cv``.

    For a Pareto(α, x_m) distribution, CV² = 1 / (α (α − 2)) for α > 2,
    which inverts to α = 1 + sqrt(1 + 1/CV²).
    """
    if cv <= 0:
        raise ValueError("cv must be positive")
    return 1.0 + math.sqrt(1.0 + 1.0 / (cv * cv))


class ParetoDelay:
    """Pareto-distributed delays with a configured std/mean ratio.

    Matches the Figure 11 emulation: "network delays between datacenters
    follow a Pareto distribution with the same average network delays as
    in Table 1", with variance expressed as std/mean.  The scale x_m is
    chosen so the distribution's mean equals the topology's base delay:
    mean = α x_m / (α − 1).
    """

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        cv: float,
    ) -> None:
        self._topology = topology
        self._rng = rng
        # ``rng.pareto(a)`` is ``expm1(standard_exponential() / a)``, so
        # one pre-filled standard-exponential block serves every pair's
        # shape parameter with the unbatched draw sequence bit-for-bit.
        self._exp = BatchedStandardExponential(rng)
        self.cv = cv
        self._alpha = pareto_shape_for_cv(cv) if cv > 0 else math.inf

    def sample(self, src_dc: str, dst_dc: str) -> float:
        base = self._topology.one_way(src_dc, dst_dc)
        if not math.isfinite(self._alpha):
            return base
        scale_cv = self._topology.jitter_multiplier(src_dc, dst_dc)
        alpha = self._alpha
        if scale_cv != 1.0:
            alpha = pareto_shape_for_cv(self.cv * scale_cv)
        x_m = base * (alpha - 1.0) / alpha
        # numpy's pareto() samples (X/x_m - 1); rescale back.
        return x_m * (1.0 + math.expm1(self._exp.next() / alpha))

    def mean(self, src_dc: str, dst_dc: str) -> float:
        return self._topology.one_way(src_dc, dst_dc)


def make_delay_model(
    topology: Topology,
    rng: np.random.Generator,
    variance_cv: float = 0.0,
) -> DelayModel:
    """The experiment harness's delay factory.

    ``variance_cv`` is the paper's "network delay variance" knob
    (std/mean, e.g. 0.15 for 15%); zero gives constant delays.
    """
    if variance_cv <= 0.0:
        return ConstantDelay(topology)
    return ParetoDelay(topology, rng, variance_cv)
