"""Simulated wide-area network.

* :mod:`repro.net.topology` — datacenter sets and round-trip delay
  matrices: the paper's Table 1 Azure matrix, the hybrid AWS+Azure
  deployment of Figure 13, and the 3-DC local cluster of Figure 14.
* :mod:`repro.net.delay` — one-way delay models: constant, uniform
  jitter, and the Pareto model used for the Figure 11 variance sweep.
* :mod:`repro.net.loss` — packet loss: per-message geometric
  retransmission with a TCP-like RTO, plus a Mathis-formula bandwidth
  cap that makes throughput collapse under loss (Figure 12).
* :mod:`repro.net.network` — delivery: one-way messages and
  request/response RPC between :class:`repro.cluster.node.Node`s,
  serialized through per-datacenter-pair bandwidth pipes.
* :mod:`repro.net.probing` — Domino-style network measurement: per-DC
  proxies probing partition leaders every 10 ms, a sliding-window p95
  one-way-delay estimator, and the client-side cached view.
"""

from repro.net.delay import (
    ConstantDelay,
    DelayModel,
    ParetoDelay,
    UniformJitterDelay,
    make_delay_model,
)
from repro.net.loss import LossConfig, LossModel, mathis_throughput
from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.net.probing import DelayEstimate, ProbeProxy, ProxyDirectory
from repro.net.topology import (
    AZURE_DATACENTERS,
    AZURE_RTT_MS,
    Topology,
    azure_topology,
    hybrid_cloud_topology,
    local_cluster_topology,
)

__all__ = [
    "AZURE_DATACENTERS",
    "AZURE_RTT_MS",
    "ConstantDelay",
    "DelayEstimate",
    "DelayModel",
    "LossConfig",
    "LossModel",
    "Message",
    "Network",
    "NetworkConfig",
    "ParetoDelay",
    "ProbeProxy",
    "ProxyDirectory",
    "Topology",
    "UniformJitterDelay",
    "azure_topology",
    "hybrid_cloud_topology",
    "local_cluster_topology",
    "make_delay_model",
    "mathis_throughput",
]
