"""Message delivery between simulated nodes.

The network knows every node by name and, for each ordered datacenter
pair, keeps a FIFO bandwidth pipe.  Sending a message costs:

``transmission (pipe queueing + size/bandwidth)  +  propagation (delay
model sample)  +  retransmission penalty (loss model)``

and delivery additionally waits for the destination node's CPU (its
:class:`~repro.cluster.node.ServiceModel`).  Intra-datacenter messages
skip the bandwidth pipe (they do not cross the WAN link).

Two primitives:

* :meth:`Network.send` — one-way message; dispatched to
  ``handle_<method>`` if the destination defines it, else to
  ``handle_message``.
* :meth:`Network.call` — request/response RPC returning a
  :class:`~repro.sim.Future`.  The handler may return a plain value
  (respond now) or a Future (respond when it resolves).

Handlers receive ``(payload, src_name)`` and are looked up as
``handle_<method>`` on the destination node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.cluster.node import Node
from repro.net.delay import ConstantDelay, DelayModel
from repro.net.loss import LossConfig, LossModel
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim import Future, Simulator


@dataclass(frozen=True)
class NetworkConfig:
    """Network-wide knobs.

    Attributes:
        loss: packet-loss configuration (rate 0 disables both the
            retransmission penalty and the Mathis bandwidth cap).
        model_bandwidth: when False, messages never queue on pipes even
            if a loss config is present — used by unit tests that want
            pure propagation delays.
    """

    loss: LossConfig = LossConfig()
    model_bandwidth: bool = True


class _Pipe:
    """FIFO transmission queue for one ordered datacenter pair."""

    __slots__ = ("bandwidth", "_busy_until")

    def __init__(self, bandwidth: float) -> None:
        self.bandwidth = bandwidth
        self._busy_until = 0.0

    def transmit(self, now: float, size_bytes: int) -> float:
        """Queue ``size_bytes``; return the delay until fully on the wire."""
        if self.bandwidth == float("inf"):
            return 0.0
        start = max(now, self._busy_until)
        self._busy_until = start + size_bytes / self.bandwidth
        return self._busy_until - now


def _txn_tag(message: Message) -> Optional[str]:
    """The transaction-attempt id a message belongs to, if tagged.

    Protocol payloads carry ``"txn": "<txn_id>.<attempt>"``; replies and
    infrastructure traffic (probes, Raft internals) are untagged and get
    no per-message span — metrics still count them.
    """
    txn = message.payload.get("txn")
    return txn if isinstance(txn, str) else None


class Network:
    """The simulated WAN connecting all nodes."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        delay_model: Optional[DelayModel] = None,
        config: NetworkConfig = NetworkConfig(),
        loss_rng: Any = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.delay_model = delay_model or ConstantDelay(topology)
        self.config = config
        self._nodes: Dict[str, Node] = {}
        self._pipes: Dict[Tuple[str, str], _Pipe] = {}
        self._pending_calls: Dict[int, Future] = {}
        # TCP/gRPC semantics: per (src, dst) node pair, messages are
        # delivered in send order — a later message never overtakes an
        # earlier one, though it can be delayed behind it.
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        # Fault injection: a predicate (src_name, dst_name) -> bool;
        # True drops the message.  Used to partition nodes in tests.
        self._drop_filter = None
        self.messages_dropped = 0
        self._loss = None
        if config.loss.loss_rate > 0.0:
            if loss_rng is None:
                raise ValueError("a loss RNG is required when loss_rate > 0")
            self._loss = LossModel(config.loss, loss_rng)
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Registration

    def register(self, node: Node) -> Node:
        """Add a node; its ``name`` becomes its network address."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        return self._nodes[name]

    # ------------------------------------------------------------------
    # Primitives

    def send(self, src: Node, dst_name: str, method: str, payload: dict) -> None:
        """Fire-and-forget message."""
        message = Message(method, payload, src.name, dst_name)
        self._dispatch(message)

    def call(self, src: Node, dst_name: str, method: str, payload: dict) -> Future:
        """Request/response RPC; resolves with the handler's response."""
        message = Message(method, payload, src.name, dst_name)
        future = Future()
        self._pending_calls[message.msg_id] = future
        self._dispatch(message)
        return future

    # ------------------------------------------------------------------
    # Delivery machinery

    # ------------------------------------------------------------------
    # Fault injection

    def set_drop_filter(self, predicate) -> None:
        """Drop every message for which ``predicate(src, dst)`` is True.

        Pass ``None`` to heal.  Messages already in flight still arrive
        (the fault cuts the wire, it does not vaporize packets mid-air
        — close enough to a real partition for protocol testing).
        """
        self._drop_filter = predicate

    def partition(self, group_a, group_b) -> None:
        """Convenience: drop all traffic between two sets of node names."""
        group_a, group_b = set(group_a), set(group_b)

        def predicate(src: str, dst: str) -> bool:
            return (src in group_a and dst in group_b) or (
                src in group_b and dst in group_a
            )

        self.set_drop_filter(predicate)

    def heal(self) -> None:
        self.set_drop_filter(None)

    def _dispatch(self, message: Message) -> None:
        obs = self.sim.obs
        if self._drop_filter is not None and self._drop_filter(
            message.src, message.dst
        ):
            self.messages_dropped += 1
            if obs.enabled:
                obs.metrics.counter("net.messages_dropped").inc()
                obs.tracer.event(
                    "drop",
                    node=message.src,
                    txn=_txn_tag(message),
                    method=message.method,
                    dst=message.dst,
                )
            return
        src = self._nodes[message.src]
        dst = self._nodes[message.dst]
        self.messages_sent += 1
        self.bytes_sent += message.wire_size
        delay = self._delivery_delay(src, dst, message)
        pair = (message.src, message.dst)
        arrival = max(
            self.sim.now + delay, self._last_arrival.get(pair, 0.0)
        )
        self._last_arrival[pair] = arrival
        if obs.enabled:
            obs.metrics.counter("net.messages").inc(method=message.method)
            obs.metrics.counter("net.bytes").inc(message.wire_size)
            obs.metrics.histogram("net.delay").observe(
                arrival - self.sim.now,
                link=f"{src.datacenter}->{dst.datacenter}",
            )
            txn = _txn_tag(message)
            if txn is not None:
                obs.tracer.span(
                    f"net:{message.method}",
                    node=message.src,
                    txn=txn,
                    dst=message.dst,
                ).finish(at=arrival)
        self.sim.schedule_at(arrival, lambda: self._arrive(message, dst))

    def _delivery_delay(self, src: Node, dst: Node, message: Message) -> float:
        delay = self.delay_model.sample(src.datacenter, dst.datacenter)
        if self._loss is not None:
            delay += self._loss.retransmission_delay()
        if (
            self.config.model_bandwidth
            and src.datacenter != dst.datacenter
            and self.config.loss.link_capacity_bytes_per_s != float("inf")
        ):
            pipe = self._pipe(src.datacenter, dst.datacenter)
            delay += pipe.transmit(self.sim.now, message.wire_size)
        return delay

    def _pipe(self, src_dc: str, dst_dc: str) -> _Pipe:
        key = (src_dc, dst_dc)
        pipe = self._pipes.get(key)
        if pipe is None:
            rtt = self.topology.rtt(src_dc, dst_dc) / 1000.0
            bandwidth = self.config.loss.effective_bandwidth(rtt)
            pipe = _Pipe(bandwidth)
            self._pipes[key] = pipe
        return pipe

    def _arrive(self, message: Message, dst: Node) -> None:
        cpu_delay = dst.service.admission_delay(dst.service_time_for(message))
        if cpu_delay > 0:
            self.sim.schedule(cpu_delay, lambda: self._handle(message, dst))
        else:
            self._handle(message, dst)

    def _handle(self, message: Message, dst: Node) -> None:
        if message.reply_to is not None:
            future = self._pending_calls.pop(message.reply_to, None)
            if future is not None and not future.done:
                future.set_result(message.payload.get("result"))
            return
        handler = getattr(dst, f"handle_{message.method}", None)
        if handler is None:
            dst.handle_message(message)
            return
        result = handler(message.payload, message.src)
        # A message expects a reply iff it was created by call(); the
        # pending map is the source of truth (send() never registers).
        if message.msg_id in self._pending_calls:
            self._respond(message, dst, result)

    def _respond(self, message: Message, dst: Node, result: Any) -> None:
        if isinstance(result, Future):
            result.add_done_callback(
                lambda f: self._send_reply(message, dst, f.value)
            )
        else:
            self._send_reply(message, dst, result)

    def _send_reply(self, request: Message, dst: Node, result: Any) -> None:
        reply = Message(
            method=f"{request.method}.reply",
            payload={"result": result},
            src=dst.name,
            dst=request.src,
            reply_to=request.msg_id,
        )
        self._dispatch(reply)
