"""Message delivery between simulated nodes.

The network knows every node by name and, for each ordered datacenter
pair, keeps a FIFO bandwidth pipe.  Sending a message costs:

``transmission (pipe queueing + size/bandwidth)  +  propagation (delay
model sample)  +  retransmission penalty (loss model)``

and delivery additionally waits for the destination node's CPU (its
:class:`~repro.cluster.node.ServiceModel`).  Intra-datacenter messages
skip the bandwidth pipe (they do not cross the WAN link).

Two primitives:

* :meth:`Network.send` — one-way message; dispatched to
  ``handle_<method>`` if the destination defines it, else to
  ``handle_message``.
* :meth:`Network.call` — request/response RPC returning a
  :class:`~repro.sim.Future`.  The handler may return a plain value
  (respond now) or a Future (respond when it resolves).

Handlers receive ``(payload, src_name)`` and are looked up as
``handle_<method>`` on the destination node.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Optional, Tuple

from repro.cluster.node import Node
from repro.net.delay import ConstantDelay, DelayModel
from repro.net.loss import LossConfig, LossModel
from repro.net.message import Message
from repro.net.payload import Reply
from repro.net.topology import Topology
from repro.sim import Future, Simulator


@dataclass(frozen=True)
class NetworkConfig:
    """Network-wide knobs.

    Attributes:
        loss: packet-loss configuration (rate 0 disables both the
            retransmission penalty and the Mathis bandwidth cap).
        model_bandwidth: when False, messages never queue on pipes even
            if a loss config is present — used by unit tests that want
            pure propagation delays.
    """

    loss: LossConfig = LossConfig()
    model_bandwidth: bool = True


class _Pipe:
    """FIFO transmission queue for one ordered datacenter pair."""

    __slots__ = ("bandwidth", "_busy_until")

    def __init__(self, bandwidth: float) -> None:
        self.bandwidth = bandwidth
        self._busy_until = 0.0

    def transmit(self, now: float, size_bytes: int) -> float:
        """Queue ``size_bytes``; return the delay until fully on the wire."""
        bandwidth = self.bandwidth
        if bandwidth == float("inf"):
            return 0.0
        busy = self._busy_until
        start = now if now > busy else busy
        end = start + size_bytes / bandwidth
        self._busy_until = end
        return end - now


#: method -> "<method>.reply", interned once per method name instead of
#: an f-string allocation per reply.
_REPLY_METHOD: Dict[str, str] = {}


def _txn_tag(message: Message) -> Optional[str]:
    """The transaction-attempt id a message belongs to, if tagged.

    Protocol payloads carry ``"txn": "<txn_id>.<attempt>"``; replies and
    infrastructure traffic (probes, Raft internals) are untagged and get
    no per-message span — metrics still count them.
    """
    txn = message.payload.get("txn")
    return txn if isinstance(txn, str) else None


class Network:
    """The simulated WAN connecting all nodes."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        delay_model: Optional[DelayModel] = None,
        config: NetworkConfig = NetworkConfig(),
        loss_rng: Any = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.delay_model = delay_model or ConstantDelay(topology)
        # Bound once: the model never changes after construction and the
        # two-step attribute chain is paid per message otherwise.
        self._sample_delay = self.delay_model.sample
        self.config = config
        self._nodes: Dict[str, Node] = {}
        self._pipes: Dict[Tuple[str, str], _Pipe] = {}
        self._pending_calls: Dict[int, Future] = {}
        # (dst_name, method) -> bound handler, or None for the
        # handle_message fallback.  Nodes register once and handlers are
        # bound methods, so the cache never goes stale; it replaces an
        # f-string + getattr per delivered message.
        self._handler_cache: Dict[Tuple[str, str], Optional[Any]] = {}
        # TCP/gRPC semantics: per (src, dst) node pair, messages are
        # delivered in send order — a later message never overtakes an
        # earlier one, though it can be delayed behind it.
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        # Fault injection: a predicate (src_name, dst_name) -> bool;
        # True drops the message.  Used to partition nodes in tests.
        self._drop_filter = None
        # Declarative fault schedules (repro.faults): when attached, the
        # injector's network-fault state is consulted per message while
        # at least one fault window is open.  None outside fault runs,
        # so the hot path pays one attribute load and an is-None test.
        self._faults = None
        self.messages_dropped = 0
        self._loss = None
        if config.loss.loss_rate > 0.0:
            if loss_rng is None:
                raise ValueError("a loss RNG is required when loss_rate > 0")
            self._loss = LossModel(config.loss, loss_rng)
        # Config is immutable, so the "does bandwidth matter at all"
        # test is resolved once instead of per message.
        self._bandwidth_capped = (
            config.model_bandwidth
            and config.loss.link_capacity_bytes_per_s != float("inf")
        )
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Registration

    def register(self, node: Node) -> Node:
        """Add a node; its ``name`` becomes its network address."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        return self._nodes[name]

    # ------------------------------------------------------------------
    # Primitives

    def send(self, src: Node, dst_name: str, method: str, payload: dict) -> None:
        """Fire-and-forget message."""
        message = Message(method, payload, src.name, dst_name)
        self._dispatch(message)

    def call(self, src: Node, dst_name: str, method: str, payload: dict) -> Future:
        """Request/response RPC; resolves with the handler's response."""
        message = Message(method, payload, src.name, dst_name)
        future = Future()
        self._pending_calls[message.msg_id] = future
        self._dispatch(message)
        return future

    # ------------------------------------------------------------------
    # Delivery machinery

    # ------------------------------------------------------------------
    # Fault injection

    def set_drop_filter(self, predicate) -> None:
        """Drop every message for which ``predicate(src, dst)`` is True.

        Pass ``None`` to heal.  Messages already in flight still arrive
        (the fault cuts the wire, it does not vaporize packets mid-air
        — close enough to a real partition for protocol testing).
        """
        self._drop_filter = predicate

    def partition(self, group_a, group_b) -> None:
        """Convenience: drop all traffic between two sets of node names."""
        group_a, group_b = set(group_a), set(group_b)

        def predicate(src: str, dst: str) -> bool:
            return (src in group_a and dst in group_b) or (
                src in group_b and dst in group_a
            )

        self.set_drop_filter(predicate)

    def heal(self) -> None:
        self.set_drop_filter(None)

    def set_faults(self, faults) -> None:
        """Attach (or detach with ``None``) a declarative fault state.

        ``faults`` is the network-fault view of a
        :class:`repro.faults.FaultInjector`; while ``faults.active`` is
        True, ``faults.route(src, dst, src_dc, dst_dc, delay)`` is
        consulted per message and may drop it (return ``None``), inflate
        its delay, or floor its arrival time (partition/crash hold).
        """
        self._faults = faults

    def _dispatch(self, message: Message) -> None:
        sim = self.sim
        obs = sim.obs
        if self._drop_filter is not None and self._drop_filter(
            message.src, message.dst
        ):
            self.messages_dropped += 1
            if obs.enabled:
                obs.metrics.counter("net.messages_dropped").inc()
                obs.tracer.event(
                    "drop",
                    node=message.src,
                    txn=_txn_tag(message),
                    method=message.method,
                    dst=message.dst,
                )
            return
        nodes = self._nodes
        src = nodes[message.src]
        dst = nodes[message.dst]
        self.messages_sent += 1
        size = message.wire_size
        self.bytes_sent += size
        # Delivery delay, inlined: propagation + retransmission penalty
        # + (cross-DC only) bandwidth-pipe queueing.
        src_dc = src.datacenter
        dst_dc = dst.datacenter
        delay = self._sample_delay(src_dc, dst_dc)
        if self._loss is not None:
            delay += self._loss.retransmission_delay()
        if self._bandwidth_capped and src_dc != dst_dc:
            pipe = self._pipes.get((src_dc, dst_dc))
            if pipe is None:
                pipe = self._pipe(src_dc, dst_dc)
            delay += pipe.transmit(sim._now, size)
        faults = self._faults
        if faults is not None and faults.active:
            routed = faults.route(
                message.src, message.dst, src_dc, dst_dc, delay
            )
            if routed is None:
                # Blackhole: the only fault that vaporizes a packet.
                self.messages_dropped += 1
                if obs.enabled:
                    obs.metrics.counter("net.messages_dropped").inc()
                    obs.tracer.event(
                        "drop",
                        node=message.src,
                        txn=_txn_tag(message),
                        method=message.method,
                        dst=message.dst,
                    )
                return
            delay, fault_floor = routed
        else:
            fault_floor = 0.0
        pair = (message.src, message.dst)
        last = self._last_arrival
        arrival = sim._now + delay
        if fault_floor > arrival:
            arrival = fault_floor
        floor = last.get(pair)
        if floor is not None and floor > arrival:
            arrival = floor
        last[pair] = arrival
        if obs.enabled:
            obs.metrics.counter("net.messages").inc(method=message.method)
            obs.metrics.counter("net.bytes").inc(message.wire_size)
            obs.metrics.histogram("net.delay").observe(
                arrival - sim.now,
                link=f"{src.datacenter}->{dst.datacenter}",
            )
            txn = _txn_tag(message)
            if txn is not None:
                obs.tracer.span(
                    f"net:{message.method}",
                    node=message.src,
                    txn=txn,
                    dst=message.dst,
                ).finish(at=arrival)
        sim.post_at(arrival, partial(self._arrive, message, dst))

    def _pipe(self, src_dc: str, dst_dc: str) -> _Pipe:
        key = (src_dc, dst_dc)
        pipe = self._pipes.get(key)
        if pipe is None:
            rtt = self.topology.rtt(src_dc, dst_dc) / 1000.0
            bandwidth = self.config.loss.effective_bandwidth(rtt)
            pipe = _Pipe(bandwidth)
            self._pipes[key] = pipe
        return pipe

    def _arrive(self, message: Message, dst: Node) -> None:
        cost = dst.service_time_for(message)
        if cost > 0.0:
            cpu_delay = dst.service.admission_delay(cost)
            if cpu_delay > 0:
                self.sim.post(cpu_delay, partial(self._handle, message, dst))
                return
        self._handle(message, dst)

    def _handle(self, message: Message, dst: Node) -> None:
        if message.reply_to is not None:
            future = self._pending_calls.pop(message.reply_to, None)
            if future is not None and not future.done:
                future.set_result(message.payload.get("result"))
            return
        cache = self._handler_cache
        key = (message.dst, message.method)
        try:
            handler = cache[key]
        except KeyError:
            handler = cache[key] = getattr(
                dst, "handle_" + message.method, None
            )
        if handler is None:
            dst.handle_message(message)
            return
        result = handler(message.payload, message.src)
        # A message expects a reply iff it was created by call(); the
        # pending map is the source of truth (send() never registers).
        if message.msg_id in self._pending_calls:
            if isinstance(result, Future):
                result.add_done_callback(
                    lambda f: self._send_reply(message, dst, f.value)
                )
            else:
                self._send_reply(message, dst, result)

    def _send_reply(self, request: Message, dst: Node, result: Any) -> None:
        method = request.method
        reply_method = _REPLY_METHOD.get(method)
        if reply_method is None:
            reply_method = _REPLY_METHOD[method] = method + ".reply"
        reply = Message(
            method=reply_method,
            payload=Reply(result),
            src=dst.name,
            dst=request.src,
            reply_to=request.msg_id,
        )
        self._dispatch(reply)
