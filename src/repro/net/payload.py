"""Allocation-light ``__slots__`` payload classes for hot-path messages.

Protocol messages used to be dict literals sized by
:func:`repro.net.message.estimate_size` on every send.  Both halves are
hot: the dict allocation itself, and the size walk (the single largest
``tottime`` entry in the pre-change profile).  Each class here replaces
one dict shape with a ``__slots__`` object that computes its wire size
arithmetically at construction — ``Message.__init__`` picks it up via
the ``wire_size`` attribute instead of walking the payload.

**Bit-identity contract**: every class's ``wire_size`` must equal
``estimate_size(self.as_dict())`` exactly, where ``as_dict`` rebuilds
the dict the old code used to send — including its conditional-key
quirks (e.g. the Carousel vote dict always carries a ``"reason"`` key,
the 2PL yes-vote never does).  Wire size feeds the bandwidth pipes, so
a one-byte slip shifts every downstream timestamp and breaks the
recorded fingerprints.  ``tests/net/test_payload_classes.py`` asserts
the parity for representative instances of every class.

Handlers that unit tests drive with hand-built dicts keep subscript
access; :class:`Payload` provides dict-compatible ``[]`` / ``get`` /
``in`` reads so those handlers accept both.  Handlers never mutate
payloads, which also lets senders share one payload object across a
fan-out (the old code allocated one identical dict per destination).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.net.message import estimate_size


def _keys(*names: str) -> int:
    """Total serialized size of a dict's key strings."""
    return sum(map(len, names))


def _strs(items) -> int:
    """Total size of a sequence of strings (read/write key lists)."""
    return sum(map(len, items))


class Payload:
    """Base for payload classes: dict-compatible read access.

    Subclasses declare ``__slots__`` (always ending in ``wire_size``)
    and compute ``wire_size`` in ``__init__``.  Payloads are immutable
    by convention — nothing writes to one after construction.
    """

    __slots__ = ()

    def __getitem__(self, key: str) -> Any:
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        return getattr(self, key, default)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and hasattr(self, key)

    def __eq__(self, other: object) -> bool:
        """Equal to the dict the payload replaces (and to another
        payload with the same dict form) — tests compare captured
        payloads against literal dicts."""
        if isinstance(other, Payload):
            return self.as_dict() == other.as_dict()
        if isinstance(other, dict):
            return self.as_dict() == other
        return NotImplemented

    __hash__ = None  # mutable-dict semantics, like the dicts replaced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name, '?')!r}"
            for name in self.__slots__
            if name != "wire_size"
        )
        return f"<{type(self).__name__} {fields}>"


class Reply(Payload):
    """``{"result": result}`` — the RPC reply wrapper."""

    __slots__ = ("result", "wire_size")
    _CONST = _keys("result")

    def __init__(self, result: Any) -> None:
        self.result = result
        size = getattr(result, "wire_size", None)
        if size is None:
            size = estimate_size(result)
        self.wire_size = self._CONST + size

    def as_dict(self) -> dict:
        return {"result": self.result}


# ----------------------------------------------------------------------
# Raft (repro.raft.node)


class AppendEntries(Payload):
    __slots__ = ("term", "leader", "prev_index", "prev_term", "entries",
                 "leader_commit", "wire_size")
    #: key bytes + the four 8-byte numeric values (term, prev_index,
    #: prev_term, leader_commit).
    _CONST = _keys("term", "leader", "prev_index", "prev_term", "entries",
                   "leader_commit") + 32

    def __init__(self, term: int, leader: str, prev_index: int,
                 prev_term: int, entries: Sequence[Tuple[int, Any]],
                 leader_commit: int) -> None:
        self.term = term
        self.leader = leader
        self.prev_index = prev_index
        self.prev_term = prev_term
        self.entries = entries
        self.leader_commit = leader_commit
        self.wire_size = self._CONST + len(leader) + (
            estimate_size(entries) if entries else 0
        )

    def as_dict(self) -> dict:
        return {
            "term": self.term,
            "leader": self.leader,
            "prev_index": self.prev_index,
            "prev_term": self.prev_term,
            "entries": list(self.entries),
            "leader_commit": self.leader_commit,
        }


class AppendEntriesResponse(Payload):
    __slots__ = ("term", "success", "follower", "match_index", "wire_size")
    _CONST = _keys("term", "success", "follower", "match_index") + 8 + 1 + 8

    def __init__(self, term: int, success: bool, follower: str,
                 match_index: int) -> None:
        self.term = term
        self.success = success
        self.follower = follower
        self.match_index = match_index
        self.wire_size = self._CONST + len(follower)

    def as_dict(self) -> dict:
        return {
            "term": self.term,
            "success": self.success,
            "follower": self.follower,
            "match_index": self.match_index,
        }


class RequestVote(Payload):
    __slots__ = ("term", "candidate", "last_log_index", "last_log_term",
                 "wire_size")
    _CONST = _keys("term", "candidate", "last_log_index",
                   "last_log_term") + 24

    def __init__(self, term: int, candidate: str, last_log_index: int,
                 last_log_term: int) -> None:
        self.term = term
        self.candidate = candidate
        self.last_log_index = last_log_index
        self.last_log_term = last_log_term
        self.wire_size = self._CONST + len(candidate)

    def as_dict(self) -> dict:
        return {
            "term": self.term,
            "candidate": self.candidate,
            "last_log_index": self.last_log_index,
            "last_log_term": self.last_log_term,
        }


class RequestVoteResponse(Payload):
    __slots__ = ("term", "granted", "voter", "wire_size")
    _CONST = _keys("term", "granted", "voter") + 8 + 1

    def __init__(self, term: int, granted: bool, voter: str) -> None:
        self.term = term
        self.granted = granted
        self.voter = voter
        self.wire_size = self._CONST + len(voter)

    def as_dict(self) -> dict:
        return {
            "term": self.term,
            "granted": self.granted,
            "voter": self.voter,
        }


# ----------------------------------------------------------------------
# Delay probing (repro.net.probing)


class Probe(Payload):
    """``{"t": <proxy clock reading>}``."""

    __slots__ = ("t", "wire_size")
    _CONST = _keys("t") + 8

    def __init__(self, t: float) -> None:
        self.t = t
        self.wire_size = self._CONST

    def as_dict(self) -> dict:
        return {"t": self.t}


class ProbeReply(Payload):
    """``{"server_time": <server clock reading>}`` — probe RPC result."""

    __slots__ = ("server_time", "wire_size")
    _CONST = _keys("server_time") + 8

    def __init__(self, server_time: float) -> None:
        self.server_time = server_time
        self.wire_size = self._CONST

    def as_dict(self) -> dict:
        return {"server_time": self.server_time}


def _opt_str(value: Optional[str]) -> int:
    """Size of a string-or-None value (refusal/vote reasons)."""
    return len(value) if value.__class__ is str else 1


# ----------------------------------------------------------------------
# Read-and-prepare replies (Carousel, 2PL lock grants, Natto)


class ReadOk(Payload):
    """``{"ok": True, "values": {key: value}}``."""

    __slots__ = ("ok", "values", "wire_size")
    _CONST = _keys("ok", "values") + 1

    def __init__(self, values: Dict[str, Any]) -> None:
        self.ok = True
        self.values = values
        self.wire_size = self._CONST + estimate_size(values)

    def as_dict(self) -> dict:
        return {"ok": True, "values": self.values}


class ReadOkEpoch(Payload):
    """Natto's read delivery: ``{"ok": True, "values": ..., "epoch": n}``."""

    __slots__ = ("ok", "values", "epoch", "wire_size")
    _CONST = _keys("ok", "values", "epoch") + 1 + 8

    def __init__(self, values: Dict[str, Any], epoch: int) -> None:
        self.ok = True
        self.values = values
        self.epoch = epoch
        self.wire_size = self._CONST + estimate_size(values)

    def as_dict(self) -> dict:
        return {"ok": True, "values": self.values, "epoch": self.epoch}


class Refusal(Payload):
    """``{"ok": False, "reason": <classified reason or None>}``."""

    __slots__ = ("ok", "reason", "wire_size")
    _CONST = _keys("ok", "reason") + 1

    def __init__(self, reason: Optional[str]) -> None:
        self.ok = False
        self.reason = reason
        self.wire_size = self._CONST + _opt_str(reason)

    def as_dict(self) -> dict:
        return {"ok": False, "reason": self.reason}


# ----------------------------------------------------------------------
# 2PC votes


class Vote(Payload):
    """The 2PL yes-vote (no reason key)."""

    __slots__ = ("txn", "partition", "vote", "participants", "client",
                 "wire_size")
    _CONST = _keys("txn", "partition", "vote", "participants", "client") + 8

    def __init__(self, txn: str, partition: int, vote: str,
                 participants: List[int], client: str) -> None:
        self.txn = txn
        self.partition = partition
        self.vote = vote
        self.participants = participants
        self.client = client
        self.wire_size = (self._CONST + len(txn) + len(vote)
                          + 8 * len(participants) + len(client))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "partition": self.partition,
            "vote": self.vote,
            "participants": self.participants,
            "client": self.client,
        }


class VoteReason(Payload):
    """Vote with a ``reason`` key: Carousel's votes (always carry it,
    ``None`` on yes), 2PL no-votes, Natto no-votes."""

    __slots__ = ("txn", "partition", "vote", "participants", "client",
                 "reason", "wire_size")
    _CONST = _keys("txn", "partition", "vote", "participants", "client",
                   "reason") + 8

    def __init__(self, txn: str, partition: int, vote: str,
                 participants: List[int], client: str,
                 reason: Optional[str]) -> None:
        self.txn = txn
        self.partition = partition
        self.vote = vote
        self.participants = participants
        self.client = client
        self.reason = reason
        self.wire_size = (self._CONST + len(txn) + len(vote)
                          + 8 * len(participants) + len(client)
                          + _opt_str(reason))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "partition": self.partition,
            "vote": self.vote,
            "participants": self.participants,
            "client": self.client,
            "reason": self.reason,
        }


class NattoVoteYes(Payload):
    """Natto's yes-vote: epoch + optional condition, no reason key."""

    __slots__ = ("txn", "partition", "vote", "epoch", "conditional",
                 "participants", "client", "wire_size")
    _CONST = _keys("txn", "partition", "vote", "epoch", "conditional",
                   "participants", "client") + 8 + 8

    def __init__(self, txn: str, partition: int, vote: str, epoch: int,
                 conditional: Optional[List[str]], participants: List[int],
                 client: str) -> None:
        self.txn = txn
        self.partition = partition
        self.vote = vote
        self.epoch = epoch
        self.conditional = conditional
        self.participants = participants
        self.client = client
        self.wire_size = (self._CONST + len(txn) + len(vote)
                          + (1 if conditional is None else _strs(conditional))
                          + 8 * len(participants) + len(client))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "partition": self.partition,
            "vote": self.vote,
            "epoch": self.epoch,
            "conditional": self.conditional,
            "participants": self.participants,
            "client": self.client,
        }


# ----------------------------------------------------------------------
# Client requests (Carousel / Natto / 2PL)


class CarouselReadAndPrepare(Payload):
    __slots__ = ("txn", "reads", "writes", "coordinator", "client",
                 "participants", "wire_size")
    _CONST = _keys("txn", "reads", "writes", "coordinator", "client",
                   "participants")

    def __init__(self, txn: str, reads: List[str], writes: List[str],
                 coordinator: str, client: str,
                 participants: List[int]) -> None:
        self.txn = txn
        self.reads = reads
        self.writes = writes
        self.coordinator = coordinator
        self.client = client
        self.participants = participants
        self.wire_size = (self._CONST + len(txn) + _strs(reads)
                          + _strs(writes) + len(coordinator) + len(client)
                          + 8 * len(participants))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "reads": self.reads,
            "writes": self.writes,
            "coordinator": self.coordinator,
            "client": self.client,
            "participants": self.participants,
        }


class NattoReadAndPrepare(Payload):
    __slots__ = ("txn", "ts", "priority", "full_reads", "full_writes",
                 "coordinator", "client", "participants",
                 "arrival_estimates", "max_owd", "wire_size")
    #: key bytes + ts/priority/max_owd numerics.
    _CONST = _keys("txn", "ts", "priority", "full_reads", "full_writes",
                   "coordinator", "client", "participants",
                   "arrival_estimates", "max_owd") + 24

    def __init__(self, txn: str, ts: float, priority: int,
                 full_reads: List[str], full_writes: List[str],
                 coordinator: str, client: str, participants: List[int],
                 arrival_estimates: Dict[int, float],
                 max_owd: float) -> None:
        self.txn = txn
        self.ts = ts
        self.priority = priority
        self.full_reads = full_reads
        self.full_writes = full_writes
        self.coordinator = coordinator
        self.client = client
        self.participants = participants
        self.arrival_estimates = arrival_estimates
        self.max_owd = max_owd
        self.wire_size = (self._CONST + len(txn) + _strs(full_reads)
                          + _strs(full_writes) + len(coordinator)
                          + len(client) + 8 * len(participants)
                          + 16 * len(arrival_estimates))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "ts": self.ts,
            "priority": self.priority,
            "full_reads": self.full_reads,
            "full_writes": self.full_writes,
            "coordinator": self.coordinator,
            "client": self.client,
            "participants": self.participants,
            "arrival_estimates": self.arrival_estimates,
            "max_owd": self.max_owd,
        }


class LockRead(Payload):
    """2PL phase 1: lock acquisition + reads."""

    __slots__ = ("txn", "reads", "writes", "ts", "priority", "client",
                 "coordinator", "participants", "wire_size")
    _CONST = _keys("txn", "reads", "writes", "ts", "priority", "client",
                   "coordinator", "participants") + 16

    def __init__(self, txn: str, reads: List[str], writes: List[str],
                 ts: float, priority: int, client: str, coordinator: str,
                 participants: List[int]) -> None:
        self.txn = txn
        self.reads = reads
        self.writes = writes
        self.ts = ts
        self.priority = priority
        self.client = client
        self.coordinator = coordinator
        self.participants = participants
        self.wire_size = (self._CONST + len(txn) + _strs(reads)
                          + _strs(writes) + len(client) + len(coordinator)
                          + 8 * len(participants))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "reads": self.reads,
            "writes": self.writes,
            "ts": self.ts,
            "priority": self.priority,
            "client": self.client,
            "coordinator": self.coordinator,
            "participants": self.participants,
        }


class TwoPLPrepare(Payload):
    """2PL phase 2: write data to a participant."""

    __slots__ = ("txn", "writes", "coordinator", "client", "participants",
                 "wire_size")
    _CONST = _keys("txn", "writes", "coordinator", "client", "participants")

    def __init__(self, txn: str, writes: Dict[str, str], coordinator: str,
                 client: str, participants: List[int]) -> None:
        self.txn = txn
        self.writes = writes
        self.coordinator = coordinator
        self.client = client
        self.participants = participants
        self.wire_size = (self._CONST + len(txn) + estimate_size(writes)
                          + len(coordinator) + len(client)
                          + 8 * len(participants))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "writes": self.writes,
            "coordinator": self.coordinator,
            "client": self.client,
            "participants": self.participants,
        }


class ReleaseLocks(Payload):
    __slots__ = ("txn", "wire_size")
    _CONST = _keys("txn")

    def __init__(self, txn: str) -> None:
        self.txn = txn
        self.wire_size = self._CONST + len(txn)

    def as_dict(self) -> dict:
        return {"txn": self.txn}


class CommitRequest(Payload):
    """Client -> coordinator: write data + commit."""

    __slots__ = ("txn", "client", "participants", "writes", "wire_size")
    _CONST = _keys("txn", "client", "participants", "writes")

    def __init__(self, txn: str, client: str, participants: List[int],
                 writes: Dict[str, str]) -> None:
        self.txn = txn
        self.client = client
        self.participants = participants
        self.writes = writes
        self.wire_size = (self._CONST + len(txn) + len(client)
                          + 8 * len(participants) + estimate_size(writes))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "client": self.client,
            "participants": self.participants,
            "writes": self.writes,
        }


class NattoCommitRequest(Payload):
    """Commit request + per-partition read epochs."""

    __slots__ = ("txn", "client", "participants", "writes", "epochs",
                 "wire_size")
    _CONST = _keys("txn", "client", "participants", "writes", "epochs")

    def __init__(self, txn: str, client: str, participants: List[int],
                 writes: Dict[str, str], epochs: Dict[int, int]) -> None:
        self.txn = txn
        self.client = client
        self.participants = participants
        self.writes = writes
        self.epochs = epochs
        self.wire_size = (self._CONST + len(txn) + len(client)
                          + 8 * len(participants) + estimate_size(writes)
                          + 16 * len(epochs))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "client": self.client,
            "participants": self.participants,
            "writes": self.writes,
            "epochs": self.epochs,
        }


class FastCommitRequest(Payload):
    """Carousel Fast: commit request + unanimous-fast-path flag."""

    __slots__ = ("txn", "client", "participants", "writes", "fast_path",
                 "wire_size")
    _CONST = _keys("txn", "client", "participants", "writes",
                   "fast_path") + 1

    def __init__(self, txn: str, client: str, participants: List[int],
                 writes: Dict[str, str], fast_path: bool) -> None:
        self.txn = txn
        self.client = client
        self.participants = participants
        self.writes = writes
        self.fast_path = fast_path
        self.wire_size = (self._CONST + len(txn) + len(client)
                          + 8 * len(participants) + estimate_size(writes))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "client": self.client,
            "participants": self.participants,
            "writes": self.writes,
            "fast_path": self.fast_path,
        }


class AbortRequest(Payload):
    __slots__ = ("txn", "client", "participants", "wire_size")
    _CONST = _keys("txn", "client", "participants")

    def __init__(self, txn: str, client: str,
                 participants: List[int]) -> None:
        self.txn = txn
        self.client = client
        self.participants = participants
        self.wire_size = (self._CONST + len(txn) + len(client)
                          + 8 * len(participants))

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "client": self.client,
            "participants": self.participants,
        }


# ----------------------------------------------------------------------
# Coordinator fan-out + client events


class CommitTxn(Payload):
    """Coordinator -> participant outcome (no reason key)."""

    __slots__ = ("txn", "decision", "writes", "wire_size")
    _CONST = _keys("txn", "decision", "writes") + 1

    def __init__(self, txn: str, decision: bool,
                 writes: Optional[Dict[str, str]]) -> None:
        self.txn = txn
        self.decision = decision
        self.writes = writes
        self.wire_size = self._CONST + len(txn) + (
            estimate_size(writes) if writes is not None else 1
        )

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "decision": self.decision,
            "writes": self.writes,
        }


class CommitTxnReason(Payload):
    """Abort outcome carrying the classified reason."""

    __slots__ = ("txn", "decision", "writes", "reason", "wire_size")
    _CONST = _keys("txn", "decision", "writes", "reason") + 1

    def __init__(self, txn: str, decision: bool,
                 writes: Optional[Dict[str, str]], reason: str) -> None:
        self.txn = txn
        self.decision = decision
        self.writes = writes
        self.reason = reason
        self.wire_size = self._CONST + len(txn) + (
            estimate_size(writes) if writes is not None else 1
        ) + len(reason)

    def as_dict(self) -> dict:
        return {
            "txn": self.txn,
            "decision": self.decision,
            "writes": self.writes,
            "reason": self.reason,
        }


class FastOutcome(Payload):
    """Carousel Fast abort notification to follower replicas."""

    __slots__ = ("txn", "decision", "wire_size")
    _CONST = _keys("txn", "decision") + 1

    def __init__(self, txn: str, decision: bool) -> None:
        self.txn = txn
        self.decision = decision
        self.wire_size = self._CONST + len(txn)

    def as_dict(self) -> dict:
        return {"txn": self.txn, "decision": self.decision}


class DecisionEvent(Payload):
    """``txn_event`` decision without a reason key (commits)."""

    __slots__ = ("txn", "kind", "committed", "wire_size")
    _CONST = _keys("txn", "kind", "committed") + 1

    def __init__(self, txn: str, committed: bool) -> None:
        self.txn = txn
        self.kind = "decision"
        self.committed = committed
        self.wire_size = self._CONST + len(txn) + 8

    def as_dict(self) -> dict:
        return {"txn": self.txn, "kind": self.kind,
                "committed": self.committed}


class DecisionEventReason(Payload):
    """``txn_event`` abort decision carrying the reason."""

    __slots__ = ("txn", "kind", "committed", "reason", "wire_size")
    _CONST = _keys("txn", "kind", "committed", "reason") + 1

    def __init__(self, txn: str, committed: bool, reason: str) -> None:
        self.txn = txn
        self.kind = "decision"
        self.committed = committed
        self.reason = reason
        self.wire_size = self._CONST + len(txn) + 8 + len(reason)

    def as_dict(self) -> dict:
        return {"txn": self.txn, "kind": self.kind,
                "committed": self.committed, "reason": self.reason}


class ReadsEvent(Payload):
    """Natto's replacement read delivery after a failed condition."""

    __slots__ = ("txn", "kind", "partition", "values", "epoch", "wire_size")
    _CONST = _keys("txn", "kind", "partition", "values", "epoch") + 8 + 8

    def __init__(self, txn: str, partition: int, values: Dict[str, Any],
                 epoch: int) -> None:
        self.txn = txn
        self.kind = "reads"
        self.partition = partition
        self.values = values
        self.epoch = epoch
        self.wire_size = (self._CONST + len(txn) + len(self.kind)
                          + estimate_size(values))

    def as_dict(self) -> dict:
        return {"txn": self.txn, "kind": self.kind,
                "partition": self.partition, "values": self.values,
                "epoch": self.epoch}


class PartitionValuesEvent(Payload):
    """RECSF value delivery (kinds ``recsf_base`` / ``recsf_reads``)."""

    __slots__ = ("txn", "kind", "partition", "values", "wire_size")
    _CONST = _keys("txn", "kind", "partition", "values") + 8

    def __init__(self, txn: str, kind: str, partition: int,
                 values: Dict[str, Any]) -> None:
        self.txn = txn
        self.kind = kind
        self.partition = partition
        self.values = values
        self.wire_size = (self._CONST + len(txn) + len(kind)
                          + estimate_size(values))

    def as_dict(self) -> dict:
        return {"txn": self.txn, "kind": self.kind,
                "partition": self.partition, "values": self.values}


class WoundEvent(Payload):
    """2PL wound notification to the victim's client."""

    __slots__ = ("txn", "kind", "by", "wire_size")
    _CONST = _keys("txn", "kind", "by")

    def __init__(self, txn: str, by: str) -> None:
        self.txn = txn
        self.kind = "wound"
        self.by = by
        self.wire_size = self._CONST + len(txn) + len(self.kind) + len(by)

    def as_dict(self) -> dict:
        return {"txn": self.txn, "kind": self.kind, "by": self.by}


# ----------------------------------------------------------------------
# Natto CP / RECSF coordination


class RecsfForward(Payload):
    """Participant -> blocker's coordinator read forward."""

    __slots__ = ("txn", "reader", "reader_client", "partition", "keys",
                 "wire_size")
    _CONST = _keys("txn", "reader", "reader_client", "partition", "keys") + 8

    def __init__(self, txn: str, reader: str, reader_client: str,
                 partition: int, keys: List[str]) -> None:
        self.txn = txn
        self.reader = reader
        self.reader_client = reader_client
        self.partition = partition
        self.keys = keys
        self.wire_size = (self._CONST + len(txn) + len(reader)
                          + len(reader_client) + _strs(keys))

    def as_dict(self) -> dict:
        return {"txn": self.txn, "reader": self.reader,
                "reader_client": self.reader_client,
                "partition": self.partition, "keys": self.keys}


class ConditionResolved(Payload):
    """Participant -> coordinator condition outcome."""

    __slots__ = ("txn", "partition", "ok", "epoch", "wire_size")
    _CONST = _keys("txn", "partition", "ok", "epoch") + 8 + 1 + 8

    def __init__(self, txn: str, partition: int, ok: bool,
                 epoch: int) -> None:
        self.txn = txn
        self.partition = partition
        self.ok = ok
        self.epoch = epoch
        self.wire_size = self._CONST + len(txn)

    def as_dict(self) -> dict:
        return {"txn": self.txn, "partition": self.partition,
                "ok": self.ok, "epoch": self.epoch}


# ----------------------------------------------------------------------
# TAPIR


class TapirRead(Payload):
    __slots__ = ("keys", "wire_size")
    _CONST = _keys("keys")

    def __init__(self, keys: List[str]) -> None:
        self.keys = keys
        self.wire_size = self._CONST + _strs(keys)

    def as_dict(self) -> dict:
        return {"keys": self.keys}


class TapirReadResult(Payload):
    """``{"values": {key: (value, version)}}``."""

    __slots__ = ("values", "wire_size")
    _CONST = _keys("values")

    def __init__(self, values: Dict[str, Tuple[Any, int]]) -> None:
        self.values = values
        self.wire_size = self._CONST + estimate_size(values)

    def as_dict(self) -> dict:
        return {"values": self.values}


class TapirPrepare(Payload):
    __slots__ = ("txn", "read_versions", "write_keys", "wire_size")
    _CONST = _keys("txn", "read_versions", "write_keys")

    def __init__(self, txn: str, read_versions: Dict[str, int],
                 write_keys: List[str]) -> None:
        self.txn = txn
        self.read_versions = read_versions
        self.write_keys = write_keys
        self.wire_size = (self._CONST + len(txn) + _strs(read_versions)
                          + 8 * len(read_versions) + _strs(write_keys))

    def as_dict(self) -> dict:
        return {"txn": self.txn, "read_versions": self.read_versions,
                "write_keys": self.write_keys}


class TapirFinalize(Payload):
    __slots__ = ("txn", "decision", "read_versions", "write_keys",
                 "wire_size")
    _CONST = _keys("txn", "decision", "read_versions", "write_keys")

    def __init__(self, txn: str, decision: str,
                 read_versions: Dict[str, int],
                 write_keys: List[str]) -> None:
        self.txn = txn
        self.decision = decision
        self.read_versions = read_versions
        self.write_keys = write_keys
        self.wire_size = (self._CONST + len(txn) + len(decision)
                          + _strs(read_versions) + 8 * len(read_versions)
                          + _strs(write_keys))

    def as_dict(self) -> dict:
        return {"txn": self.txn, "decision": self.decision,
                "read_versions": self.read_versions,
                "write_keys": self.write_keys}


class TapirVoteOk(Payload):
    """``{"vote": "ok"}`` — stateless; use the shared ``TAPIR_VOTE_OK``."""

    __slots__ = ("vote", "wire_size")
    _CONST = _keys("vote") + len("ok")

    def __init__(self) -> None:
        self.vote = "ok"
        self.wire_size = self._CONST

    def as_dict(self) -> dict:
        return {"vote": self.vote}


#: Shared instance: every ok-vote is byte-identical, so one object
#: serves all replicas (payloads are read-only).
TAPIR_VOTE_OK = TapirVoteOk()


class TapirVoteAbort(Payload):
    __slots__ = ("vote", "reason", "wire_size")
    _CONST = _keys("vote", "reason") + len("abort")

    def __init__(self, reason: str) -> None:
        self.vote = "abort"
        self.reason = reason
        self.wire_size = self._CONST + len(reason)

    def as_dict(self) -> dict:
        return {"vote": self.vote, "reason": self.reason}


class TapirAck(Payload):
    """``{"ack": True}`` — stateless; use the shared ``TAPIR_ACK``."""

    __slots__ = ("ack", "wire_size")
    _CONST = _keys("ack") + 1

    def __init__(self) -> None:
        self.ack = True
        self.wire_size = self._CONST

    def as_dict(self) -> dict:
        return {"ack": self.ack}


TAPIR_ACK = TapirAck()


class TapirCommit(Payload):
    __slots__ = ("txn", "writes", "wire_size")
    _CONST = _keys("txn", "writes")

    def __init__(self, txn: str, writes: Dict[str, str]) -> None:
        self.txn = txn
        self.writes = writes
        self.wire_size = self._CONST + len(txn) + estimate_size(writes)

    def as_dict(self) -> dict:
        return {"txn": self.txn, "writes": self.writes}


class TapirAbort(Payload):
    __slots__ = ("txn", "wire_size")
    _CONST = _keys("txn")

    def __init__(self, txn: str) -> None:
        self.txn = txn
        self.wire_size = self._CONST + len(txn)

    def as_dict(self) -> dict:
        return {"txn": self.txn}
