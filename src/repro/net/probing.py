"""Domino-style network measurement (Section 2.2 / Section 4).

One :class:`ProbeProxy` runs per datacenter.  It probes every partition
leader every ``interval`` seconds (the paper uses 10 ms), keeps the
samples from a sliding window (the paper uses 1 s), and estimates the
one-way delay to each leader as the window's 95th percentile.

A delay sample is ``server_receive_clock_time - proxy_send_clock_time``:
it deliberately *includes* the relative clock skew between proxy and
server, so a timestamp computed as ``client_now + estimate`` lands
correctly on the *server's* clock even when clocks disagree — this is the
trick Natto inherits from Domino for tolerating loose synchronization.

Clients do not probe; they read a :class:`ClientDelayView` that refreshes
from the local proxy every ``refresh_interval`` seconds (the paper uses
100 ms), so client estimates are slightly stale, as in the real system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Deque, Dict, Iterable, Optional, Tuple

from repro.cluster.node import Node
from repro.net.network import Network
from repro.net.payload import Probe, ProbeReply
from repro.sim import Simulator


@dataclass(frozen=True)
class DelayEstimate:
    """Summary of one proxy->target delay distribution window."""

    target: str
    p95: float
    mean: float
    samples: int


class ProbeTargetMixin:
    """Adds probe responding to a server node.

    The reply carries the server's clock reading at handling time; the
    proxy subtracts its own send-time clock reading to get a
    skew-inclusive one-way delay sample.
    """

    def handle_probe(self, payload, src: str) -> ProbeReply:
        return ProbeReply(self.clock.now())


class ProbeProxy(Node):
    """Per-datacenter prober and delay estimator."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        datacenter: str,
        targets: Iterable[str],
        interval: float = 0.010,
        window: float = 1.0,
        percentile: float = 95.0,
    ) -> None:
        super().__init__(sim, f"proxy-{datacenter}", datacenter)
        self._network = network
        self._targets = list(targets)
        self._interval = interval
        self._window = window
        self._percentile = percentile
        # target -> deque of (sim_time, delay_sample)
        self._samples: Dict[str, Deque[Tuple[float, float]]] = {
            t: deque() for t in self._targets
        }
        network.register(self)

    def start(self) -> None:
        """Begin the periodic probe loop."""
        self._probe_all()

    def add_target(self, target: str) -> None:
        if target not in self._samples:
            self._targets.append(target)
            self._samples[target] = deque()

    def _probe_all(self) -> None:
        for target in self._targets:
            self._probe(target)
        # The probe loop runs for the whole simulation and is never
        # cancelled, so it takes the kernel's timerless fast path.
        self.sim.post(self._interval, self._probe_all)

    def _probe(self, target: str) -> None:
        sent_clock = self.clock.now()
        future = self._network.call(self, target, "probe", Probe(sent_clock))
        future.add_done_callback(partial(self._record, target, sent_clock))

    def _record(self, target: str, sent_clock: float, reply_future) -> None:
        sample = reply_future.value.server_time - sent_clock
        window = self._samples[target]
        now = self.sim._now
        window.append((now, sample))
        cutoff = now - self._window
        while window and window[0][0] < cutoff:
            window.popleft()

    # ------------------------------------------------------------------
    # Queries

    def estimate(self, target: str) -> Optional[float]:
        """p95 one-way delay (seconds, skew-inclusive) or None if no data."""
        window = self._samples.get(target)
        if not window:
            return None
        values = sorted([sample for _, sample in window])
        index = min(
            len(values) - 1,
            int(len(values) * self._percentile / 100.0),
        )
        return values[index]

    def summary(self, target: str) -> Optional[DelayEstimate]:
        window = self._samples.get(target)
        if not window:
            return None
        values = [sample for _, sample in window]
        return DelayEstimate(
            target=target,
            p95=self.estimate(target) or 0.0,
            mean=sum(values) / len(values),
            samples=len(values),
        )

    def estimates(self) -> Dict[str, float]:
        """Current p95 estimate for every target with data."""
        out = {}
        for target in self._targets:
            value = self.estimate(target)
            if value is not None:
                out[target] = value
        return out


class ClientDelayView:
    """Client-side cache of the local proxy's estimates.

    Refreshes every ``refresh_interval`` seconds; between refreshes the
    estimates are stale, matching the paper's client behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        proxy: ProbeProxy,
        refresh_interval: float = 0.1,
    ) -> None:
        self._sim = sim
        self._proxy = proxy
        self._refresh_interval = refresh_interval
        self._cache: Dict[str, float] = {}
        self._refresh()

    def _refresh(self) -> None:
        self._cache = self._proxy.estimates()
        self._sim.post(self._refresh_interval, self._refresh)

    def estimate(self, target: str) -> Optional[float]:
        """Cached p95 one-way delay to ``target`` (seconds), or None."""
        return self._cache.get(target)

    def max_estimate(self, targets: Iterable[str]) -> Optional[float]:
        """Largest cached estimate across ``targets``; None if any missing."""
        values = []
        for target in targets:
            value = self._cache.get(target)
            if value is None:
                return None
            values.append(value)
        return max(values) if values else None


class ProxyDirectory:
    """All proxies and client views in a deployment, keyed by datacenter."""

    def __init__(self) -> None:
        self._proxies: Dict[str, ProbeProxy] = {}
        self._views: Dict[str, ClientDelayView] = {}

    def add(self, proxy: ProbeProxy, view: ClientDelayView) -> None:
        self._proxies[proxy.datacenter] = proxy
        self._views[proxy.datacenter] = view

    def proxy(self, datacenter: str) -> ProbeProxy:
        return self._proxies[datacenter]

    def view(self, datacenter: str) -> ClientDelayView:
        return self._views[datacenter]

    def start_all(self) -> None:
        for proxy in self._proxies.values():
            proxy.start()
