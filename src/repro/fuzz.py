"""``python -m repro.fuzz`` — protocol-invariant fuzzing harness.

Runs seeded (workload × fault-schedule) scenarios across the four
protocol families under every invariant checker plus the
serializability checker.  Deterministic end to end: the same
``--scenarios``/``--seed``/``--systems`` arguments produce a
byte-identical scenario log, and every failure is shrunk to a minimal
fault schedule and written out as a replayable JSON artifact.

Examples::

    python -m repro.fuzz --scenarios 200 --seed 0
    python -m repro.fuzz --scenarios 50 --time-budget 600 --out fuzz-failures
    python -m repro.fuzz --systems "Natto-RECSF" --scenarios 25
    python -m repro.fuzz --replay fuzz-failures/natto-recsf-seed7.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.verify.fuzz import (
    FUZZ_SYSTEMS,
    ScenarioSpec,
    replay_artifact,
    run_scenario,
    shrink,
    write_failure_artifact,
)


def _artifact_name(spec: ScenarioSpec) -> str:
    slug = spec.system.lower().replace(" ", "-").replace("+", "")
    return f"{slug}-seed{spec.seed}.json"


def _emit(line: str, log_handle) -> None:
    print(line)
    if log_handle is not None:
        log_handle.write(line + "\n")
        log_handle.flush()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Fault-injection fuzzing over the four protocol families.",
    )
    parser.add_argument(
        "--scenarios",
        type=int,
        default=40,
        help="total scenarios, round-robined over the selected systems",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (scenario i uses seed+i)"
    )
    parser.add_argument(
        "--systems",
        nargs="+",
        default=list(FUZZ_SYSTEMS),
        help=f"system families to fuzz (default: {', '.join(FUZZ_SYSTEMS)})",
    )
    parser.add_argument(
        "--out",
        default="fuzz-failures",
        help="directory for failure artifacts (created on first failure)",
    )
    parser.add_argument(
        "--log", default=None, help="also append the scenario log to this file"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds; stops cleanly when exceeded",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking failing scenarios (faster triage)",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="re-run one failure artifact instead of fuzzing",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        outcome = replay_artifact(args.replay)
        print(outcome.log_line())
        print(outcome.report.summary())
        return 0 if outcome.ok else 1

    log_handle = open(args.log, "w", encoding="utf-8") if args.log else None
    started = time.monotonic()
    failures = 0
    ran = 0
    try:
        for index in range(args.scenarios):
            if (
                args.time_budget is not None
                and time.monotonic() - started > args.time_budget
            ):
                _emit(
                    f"# time budget exhausted after {ran} scenarios",
                    log_handle,
                )
                break
            system = args.systems[index % len(args.systems)]
            spec = ScenarioSpec(system=system, seed=args.seed + index)
            outcome = run_scenario(spec)
            ran += 1
            _emit(outcome.log_line(), log_handle)
            if outcome.ok:
                continue
            failures += 1
            for violation in outcome.violations:
                _emit(f"#   {violation}", log_handle)
            if not args.no_shrink:
                minimal, outcome, runs = shrink(outcome.spec)
                _emit(
                    f"# shrunk to {len(minimal.schedule)} fault event(s) "
                    f"in {runs} run(s): {minimal.schedule.describe()}",
                    log_handle,
                )
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, _artifact_name(outcome.spec))
            write_failure_artifact(outcome, path)
            _emit(f"# artifact: {path}", log_handle)
        _emit(
            f"# {ran} scenario(s), {failures} failure(s)",
            log_handle,
        )
    finally:
        if log_handle is not None:
            log_handle.close()
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
