"""Transaction priorities.

The paper builds and measures two levels (following McWherter et al.:
"two priority levels are sufficient for many applications") but notes
that none of Natto's techniques is specific to two and names more
levels as future work.  This reproduction implements that extension:
priorities are ordered integers, every mechanism compares them
relationally (a transaction may preempt any *strictly lower* priority),
and a third built-in level (MEDIUM) is provided.  The evaluation uses
only LOW/HIGH, matching the paper.
"""

from __future__ import annotations

import enum


class Priority(enum.IntEnum):
    """Ordered priority levels: HIGH > MEDIUM > LOW."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    @property
    def is_high(self) -> bool:
        return self is Priority.HIGH

    @property
    def uses_locking(self) -> bool:
        """Natto prepares the lowest level with OCC and everything above
        it with the lock-based mechanism (§3.2, generalized)."""
        return self is not Priority.LOW
