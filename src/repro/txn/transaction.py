"""The 2FI transaction descriptor.

A :class:`TransactionSpec` is what a workload generator produces and a
client executes: fixed read/write key sets, a priority, and a
``compute_writes`` function that turns read results into write values
(the interactive half of 2FI).  ``compute_writes`` may also return
``None`` to abort voluntarily after the read round — permitted by the
model, unused by the paper's workloads.

The spec is immutable across retries; per-attempt state (timestamps,
arrival estimates) lives in the protocol messages, so retrying is just
re-running the client protocol with a fresh attempt id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.txn.priority import Priority

WriteFunction = Callable[[Mapping[str, str]], Optional[Dict[str, str]]]


def _overwrite_with_marker(reads: Mapping[str, str]) -> Dict[str, str]:
    """Default write function: tag every write key (ignores read values)."""
    return {}


@dataclass(frozen=True)
class TransactionSpec:
    """One 2FI transaction, as issued by a client.

    Attributes:
        txn_id: globally unique (client id + per-client counter).
        read_keys / write_keys: fixed sets, known at start.
        priority: LOW or HIGH.
        compute_writes: read results -> write values (or None to abort
            after the read round).  Keys in the result must be a subset
            of ``write_keys`` — a 2FI client "does not need to modify all
            of the keys in the write set".
        txn_type: workload label (e.g. "send_payment"), for reporting.
    """

    txn_id: str
    read_keys: Tuple[str, ...]
    write_keys: Tuple[str, ...]
    priority: Priority = Priority.LOW
    compute_writes: WriteFunction = field(default=_overwrite_with_marker)
    txn_type: str = "generic"

    def __post_init__(self) -> None:
        if not self.read_keys and not self.write_keys:
            raise ValueError(f"{self.txn_id}: empty transaction")

    @property
    def all_keys(self) -> Tuple[str, ...]:
        seen = dict.fromkeys(self.read_keys)
        seen.update(dict.fromkeys(self.write_keys))
        return tuple(seen)

    @property
    def is_high_priority(self) -> bool:
        return self.priority is Priority.HIGH

    def make_writes(self, reads: Mapping[str, str]) -> Optional[Dict[str, str]]:
        """Run the interactive write step, validating the key discipline."""
        writes = self.compute_writes(reads)
        if writes is None:
            return None
        illegal = set(writes) - set(self.write_keys)
        if illegal:
            raise ValueError(
                f"{self.txn_id} wrote outside its declared write set: "
                f"{sorted(illegal)}"
            )
        return writes


def txn_order_key(timestamp: float, txn_id: str) -> Tuple[float, str]:
    """Natto's global order: timestamp, then txn id for ties."""
    return (timestamp, txn_id)
