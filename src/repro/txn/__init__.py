"""Transaction model: 2FI descriptors, priorities, outcome records.

Natto (following Carousel) targets **2-round Fixed-set Interactive**
transactions: one round of reads, then one round of writes; read and
write key sets are declared up front; write *values* may depend on the
read results (the interactive part); the client may abort after reads.
"""

from repro.txn.priority import Priority
from repro.txn.stats import StatsCollector, TxnOutcome, TxnRecord
from repro.txn.transaction import TransactionSpec, txn_order_key

__all__ = [
    "Priority",
    "StatsCollector",
    "TransactionSpec",
    "TxnOutcome",
    "TxnRecord",
    "txn_order_key",
]
