"""Per-transaction outcome records and the experiment-level collector.

The paper's measurement rules, implemented here:

* a committed transaction's latency **includes all its retries**;
* a transaction that cannot commit within 100 retries is *failed* and
  its latency is excluded;
* the harness trims a warm-up and cool-down window (the paper excludes
  the first and last 10 s of each 60 s run) — trimming is by *start*
  time of the transaction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.txn.priority import Priority


class TxnOutcome(enum.Enum):
    COMMITTED = "committed"
    FAILED = "failed"  # exhausted the retry budget


@dataclass(frozen=True)
class TxnRecord:
    """Final account of one logical transaction (across all retries)."""

    txn_id: str
    priority: Priority
    txn_type: str
    start: float
    end: float
    retries: int
    outcome: TxnOutcome

    @property
    def latency(self) -> float:
        return self.end - self.start

    @property
    def committed(self) -> bool:
        return self.outcome is TxnOutcome.COMMITTED


class StatsCollector:
    """Accumulates records during a run; answers the paper's questions."""

    def __init__(self) -> None:
        self.records: List[TxnRecord] = []

    def add(self, record: TxnRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    # Selection

    def committed(
        self,
        priority: Optional[Priority] = None,
        window: Optional[tuple] = None,
        txn_type: Optional[str] = None,
    ) -> List[TxnRecord]:
        out = []
        for record in self.records:
            if not record.committed:
                continue
            if priority is not None and record.priority is not priority:
                continue
            if txn_type is not None and record.txn_type != txn_type:
                continue
            if window is not None and not (
                window[0] <= record.start < window[1]
            ):
                continue
            out.append(record)
        return out

    # ------------------------------------------------------------------
    # Aggregates

    @staticmethod
    def percentile_latency(records: Iterable[TxnRecord], q: float) -> float:
        latencies = [r.latency for r in records]
        if not latencies:
            return float("nan")
        return float(np.percentile(latencies, q))

    def p95_latency(
        self,
        priority: Optional[Priority] = None,
        window: Optional[tuple] = None,
        txn_type: Optional[str] = None,
    ) -> float:
        """The paper's headline metric, in seconds."""
        return self.percentile_latency(
            self.committed(priority, window, txn_type), 95.0
        )

    def goodput(
        self,
        window: tuple,
        priority: Optional[Priority] = None,
    ) -> float:
        """Committed transactions per second inside ``window``."""
        count = len(self.committed(priority, window))
        span = window[1] - window[0]
        return count / span if span > 0 else float("nan")

    def abort_summary(self) -> Dict[str, float]:
        total = len(self.records)
        if total == 0:
            return {"transactions": 0, "failed": 0, "mean_retries": 0.0}
        failed = sum(1 for r in self.records if not r.committed)
        mean_retries = float(np.mean([r.retries for r in self.records]))
        return {
            "transactions": total,
            "failed": failed,
            "mean_retries": mean_retries,
        }
