"""Per-transaction outcome records and the experiment-level collector.

The paper's measurement rules, implemented here:

* a committed transaction's latency **includes all its retries**;
* a transaction that cannot commit within 100 retries is *failed* and
  its latency is excluded;
* the harness trims a warm-up and cool-down window (the paper excludes
  the first and last 10 s of each 60 s run) — trimming is by *start*
  time of the transaction.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.txn.priority import Priority


class TxnOutcome(enum.Enum):
    COMMITTED = "committed"
    FAILED = "failed"  # exhausted the retry budget


@dataclass(frozen=True)
class TxnRecord:
    """Final account of one logical transaction (across all retries)."""

    txn_id: str
    priority: Priority
    txn_type: str
    start: float
    end: float
    retries: int
    outcome: TxnOutcome
    #: Abort reason of each failed attempt, in attempt order (strings
    #: from :class:`repro.obs.abort.AbortReason`); empty when the first
    #: attempt committed.
    abort_reasons: tuple = ()

    @property
    def latency(self) -> float:
        return self.end - self.start

    @property
    def committed(self) -> bool:
        return self.outcome is TxnOutcome.COMMITTED


class StatsCollector:
    """Accumulates records during a run; answers the paper's questions.

    Committed records are bucketed by ``(priority, txn_type)`` as they
    arrive, each bucket kept sorted by start time (lazily — records
    finish out of start order), so the selection queries the figures
    hammer are a dict lookup plus a binary search on the window instead
    of a scan over every record.
    """

    _Key = Tuple[Priority, str]

    def __init__(self) -> None:
        self.records: List[TxnRecord] = []
        self._committed: Dict[StatsCollector._Key, List[TxnRecord]] = {}
        self._starts: Dict[StatsCollector._Key, List[float]] = {}
        self._dirty: Set[StatsCollector._Key] = set()

    # ------------------------------------------------------------------
    # Pickling (parallel sweep workers ship collectors to the parent)

    def __getstate__(self) -> dict:
        """Serialize the records only; indexes are derived state.

        Keeps worker->parent transfers compact and guarantees the
        rebuilt indexes are exactly what :meth:`add` would have built,
        so post-transport queries match in-process ones bit for bit.
        """
        return {"records": self.records}

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        add = self.add
        for record in state["records"]:
            add(record)

    def add(self, record: TxnRecord) -> None:
        self.records.append(record)
        if not record.committed:
            return
        key = (record.priority, record.txn_type)
        bucket = self._committed.setdefault(key, [])
        starts = self._starts.setdefault(key, [])
        if bucket and record.start < bucket[-1].start:
            self._dirty.add(key)
        bucket.append(record)
        starts.append(record.start)

    # ------------------------------------------------------------------
    # Selection

    def _bucket(self, key: "StatsCollector._Key") -> List[TxnRecord]:
        if key in self._dirty:
            bucket = sorted(self._committed[key], key=lambda r: r.start)
            self._committed[key] = bucket
            self._starts[key] = [r.start for r in bucket]
            self._dirty.discard(key)
        return self._committed[key]

    def committed(
        self,
        priority: Optional[Priority] = None,
        window: Optional[tuple] = None,
        txn_type: Optional[str] = None,
    ) -> List[TxnRecord]:
        keys = [
            key
            for key in self._committed
            if (priority is None or key[0] is priority)
            and (txn_type is None or key[1] == txn_type)
        ]
        out: List[TxnRecord] = []
        for key in sorted(keys, key=lambda k: (int(k[0]), k[1])):
            bucket = self._bucket(key)
            if window is None:
                out.extend(bucket)
            else:
                starts = self._starts[key]
                lo = bisect_left(starts, window[0])
                hi = bisect_left(starts, window[1])
                out.extend(bucket[lo:hi])
        return out

    # ------------------------------------------------------------------
    # Aggregates

    @staticmethod
    def percentile_latency(records: Iterable[TxnRecord], q: float) -> float:
        latencies = [r.latency for r in records]
        if not latencies:
            return float("nan")
        return float(np.percentile(latencies, q))

    def p95_latency(
        self,
        priority: Optional[Priority] = None,
        window: Optional[tuple] = None,
        txn_type: Optional[str] = None,
    ) -> float:
        """The paper's headline metric, in seconds."""
        return self.percentile_latency(
            self.committed(priority, window, txn_type), 95.0
        )

    def goodput(
        self,
        window: tuple,
        priority: Optional[Priority] = None,
    ) -> float:
        """Committed transactions per second inside ``window``."""
        count = len(self.committed(priority, window))
        span = window[1] - window[0]
        return count / span if span > 0 else float("nan")

    def abort_summary(self) -> Dict[str, object]:
        """Overall and per-priority/per-reason abort accounting.

        Top-level keys keep their historical meaning; ``by_priority``
        breaks the same numbers (plus a per-reason attempt counter)
        down by transaction priority, and ``by_reason`` counts aborted
        *attempts* per :class:`~repro.obs.abort.AbortReason` value.
        """
        total = len(self.records)
        if total == 0:
            return {
                "transactions": 0,
                "failed": 0,
                "mean_retries": 0.0,
                "by_priority": {},
                "by_reason": {},
            }
        failed = sum(1 for r in self.records if not r.committed)
        mean_retries = float(np.mean([r.retries for r in self.records]))
        by_reason: Counter = Counter()
        per_priority: Dict[Priority, List[TxnRecord]] = {}
        for record in self.records:
            per_priority.setdefault(record.priority, []).append(record)
            by_reason.update(record.abort_reasons)
        by_priority: Dict[str, dict] = {}
        for priority in sorted(per_priority, key=int):
            records = per_priority[priority]
            reasons: Counter = Counter()
            for record in records:
                reasons.update(record.abort_reasons)
            by_priority[priority.name] = {
                "transactions": len(records),
                "failed": sum(1 for r in records if not r.committed),
                "mean_retries": float(
                    np.mean([r.retries for r in records])
                ),
                "by_reason": dict(reasons),
            }
        return {
            "transactions": total,
            "failed": failed,
            "mean_retries": mean_retries,
            "by_priority": by_priority,
            "by_reason": dict(by_reason),
        }
