"""Figure 10: SmallBank with only sendPayment at high priority.

Paper shape: as the input rate grows to 6000 txn/s the 2PL systems'
high-priority (sendPayment) 95P latency increases by >200% over its
value at 100 txn/s, while Natto-RECSF stays under a 50% increase.
"""

from repro.experiments import figure10

from benchmarks.conftest import run_once

RATES = (100, 2500)


def test_fig10_sendpayment_priority(benchmark, bench_scale):
    tables = run_once(
        benchmark, lambda: figure10.run(scale=bench_scale, rates=RATES)
    )
    for table in tables.values():
        table.print()
    increase = tables["increase"]

    natto_increase = increase.value("Natto-RECSF", 2500)
    for twopl in ("2PL+2PC", "2PL+2PC(P)", "2PL+2PC(POW)"):
        assert natto_increase < increase.value(twopl, 2500)
    # Natto's growth stays moderate (paper: <50%; allow slack for the
    # scaled-down run).
    assert natto_increase < 120.0
