"""Figure 14: peak throughput scaling with partitions (local cluster).

Paper shape: throughput grows roughly linearly with partitions for
every system, and Carousel Basic and Natto sit close together (the
timestamp machinery costs little CPU).
"""

from repro.experiments import figure14

from benchmarks.conftest import run_once

PARTITIONS = (2, 4)
SYSTEMS = ("Carousel Basic", "Natto-RECSF")


def test_fig14_throughput_scaling(benchmark, bench_scale):
    tables = run_once(
        benchmark,
        lambda: figure14.run(
            scale=bench_scale,
            systems=SYSTEMS,
            partitions=PARTITIONS,
            # Saturate with fewer events: pricier messages, less load.
            offered_per_partition=1500,
            service_time=150e-6,
        ),
    )
    for table in tables.values():
        table.print()
    throughput = tables["throughput"]

    for name in SYSTEMS:
        small = throughput.value(name, 2)
        large = throughput.value(name, 4)
        # 2x the partitions buys at least 1.5x the throughput.
        assert large > 1.5 * small, (name, small, large)
    # Natto's peak throughput is within ~20% of Carousel Basic's.
    for n in PARTITIONS:
        natto = throughput.value("Natto-RECSF", n)
        carousel = throughput.value("Carousel Basic", n)
        assert natto > 0.8 * carousel, (n, natto, carousel)
