"""Figure 11: Pareto delay variance sweep.

Paper shape: Natto's latency rises with variance (late arrivals abort
under contention), but even at 40% variance Natto undercuts what the
baselines post at zero variance.
"""

from repro.experiments import figure11

from benchmarks.conftest import run_once

VARIANCES = (0.0, 40.0)


def test_fig11_delay_variance(benchmark, bench_scale):
    tables = run_once(
        benchmark, lambda: figure11.run(scale=bench_scale, systems=("2PL+2PC", "TAPIR", "Carousel Basic", "Natto-RECSF"), variances=VARIANCES)
    )
    for table in tables.values():
        table.print()
    high = tables["high"]

    # Natto beats the contemporaries at zero variance...
    for baseline in ("Carousel Basic", "TAPIR", "2PL+2PC"):
        assert high.value("Natto-RECSF", 0.0) < high.value(baseline, 0.0)
    # ... and even Natto at 40% variance beats the baselines at 0%.
    floor = min(
        high.value(b, 0.0)
        for b in ("Carousel Basic", "TAPIR", "2PL+2PC")
    )
    assert high.value("Natto-RECSF", 40.0) < floor
