"""Figure 7(c)/(d): Retwis on the Azure topology.

Paper shape: at 1500 txn/s Natto-RECSF sits around ~430 ms while the
2PL variants are in the seconds and TAPIR/Carousel worse still.
"""

from repro.experiments import figure7

from benchmarks.conftest import run_once

SYSTEMS = ("2PL+2PC(P)", "TAPIR", "Carousel Basic",
           "Natto-TS", "Natto-RECSF")
RATES = (100, 1500)


def test_fig7cd_retwis(benchmark, bench_scale):
    tables = run_once(
        benchmark,
        lambda: figure7.run_retwis(scale=bench_scale, systems=SYSTEMS, rates=RATES),
    )
    for table in tables.values():
        table.print()
    high = tables["high"]

    # High load: Natto < prioritized 2PL < TAPIR (paper: 432 / 1922 /
    # 4393 ms at 1500 txn/s).
    assert high.value("Natto-RECSF", 1500) < high.value("2PL+2PC(P)", 1500)
    assert high.value("Natto-RECSF", 1500) < 0.5 * high.value("TAPIR", 1500)
    assert high.value("Natto-TS", 1500) < high.value("Carousel Basic", 1500)

    # Low-priority goodput: Natto commits about as many low-priority
    # transactions as the input mix offers (no starvation collapse).
    goodput = tables["low_goodput"]
    assert goodput.value("Natto-RECSF", 1500) > 0.75 * 0.9 * 1500
