"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's exhibits at a reduced
grid/duration (endpoints of each sweep, a few simulated seconds per
point) so the whole suite runs in tens of minutes; the printed tables
are the deliverable and the assertions pin the paper's qualitative
shape.  Paper-scale runs: ``python -m repro.experiments <exhibit>
--scale full``.
"""

import pytest

from repro.experiments.common import Scale

#: The benchmark scale: short but long enough for stable p95s.
BENCH_SCALE = Scale("bench-suite", duration=2.5, trim=0.6, repeats=1, drain=6.0)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
