"""Table 1: the measured RTT matrix must match the paper's values."""

from repro.experiments import table1
from repro.net.topology import azure_topology

from benchmarks.conftest import run_once


def test_table1_rtt_matrix(benchmark):
    measured = run_once(benchmark, table1.run)
    topology = azure_topology()
    for (src, dst), rtt_ms in measured.items():
        assert abs(rtt_ms - topology.rtt(src, dst)) < 2.0, (src, dst, rtt_ms)
