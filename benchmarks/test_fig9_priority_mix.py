"""Figure 9: sweep of the high-priority share of the mix.

Paper shape: 2PL+2PC is flat (it never prioritizes); (P)/(POW) degrade
toward it as the pool of preemptible low-priority victims shrinks;
Natto-RECSF stays low until high-priority transactions dominate, and
is not designed for a 100%-high-priority workload.
"""

from repro.experiments import figure9

from benchmarks.conftest import run_once

PERCENTAGES = (10, 60, 100)


def test_fig9_priority_mix(benchmark, bench_scale):
    tables = run_once(
        benchmark,
        lambda: figure9.run(scale=bench_scale, percentages=PERCENTAGES),
    )
    for table in tables.values():
        table.print()
    high = tables["high"]

    # At a 10% high-priority mix, Natto crushes the 2PL family.
    assert high.value("Natto-RECSF", 10) < 0.6 * high.value("2PL+2PC(P)", 10)
    assert high.value("2PL+2PC(P)", 10) < high.value("2PL+2PC", 10)
    # Preemption's advantage evaporates as the mix saturates.
    p_gain_10 = high.value("2PL+2PC", 10) / high.value("2PL+2PC(P)", 10)
    p_gain_100 = high.value("2PL+2PC", 100) / high.value("2PL+2PC(P)", 100)
    assert p_gain_100 < p_gain_10
    # Natto's own latency rises with the high-priority share.
    assert high.value("Natto-RECSF", 100) > high.value("Natto-RECSF", 10)
