"""Figure 12: packet-loss sweep.

Paper shape: everyone's latency grows with loss; Carousel Basic (and
Natto-TS on top of it) saturate around 1.5% because they push the most
replicated bytes; Natto-RECSF lasts to ~2.5%; at typical loss rates
(<1%) Natto still leads.
"""

from repro.experiments import figure12

from benchmarks.conftest import run_once

LOSSES = (0.0, 1.5)


def test_fig12_packet_loss(benchmark, bench_scale):
    tables = run_once(
        benchmark, lambda: figure12.run(scale=bench_scale, systems=("2PL+2PC", "TAPIR", "Carousel Basic", "Natto-RECSF"), loss_rates=LOSSES)
    )
    for table in tables.values():
        table.print()
    high = tables["high"]

    # At moderate loss Natto keeps its advantage over the slow
    # baselines (Carousel Basic itself saturates around 1.5%).
    for baseline in ("TAPIR", "2PL+2PC"):
        assert high.value("Natto-RECSF", 1.5) < high.value(baseline, 1.5)
    # Loss hurts: every system is worse at 3% than at 0%.
    for name, series in high.series.items():
        assert series[-1] > series[0], name
