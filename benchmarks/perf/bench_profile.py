"""Profiling + behavior-identity harness for the protocol-layer fast path.

Two jobs, one script:

* **Fingerprints** — run one figure-7-style smoke point per system
  family (2PL+2PC, TAPIR, Carousel Basic, Natto-RECSF) under forced
  contention and hash the full transaction-record list
  (:func:`repro.verify.fingerprint.fingerprint_result`).  The digests
  are compared against ``FINGERPRINTS.json`` next to this script —
  recorded on the pre-change tree — so any behavioral drift (one
  reordered message, one extra RNG draw, one shifted timestamp) fails
  loudly.  ``--record-fingerprints`` rewrites the expected file.
* **Profile + timing** — run the ``bench_sweep`` smoke sweep under
  cProfile and attribute exclusive time to subsystems (kernel / net /
  raft / system / workload / stats / harness / other), then time the
  same sweep unprofiled (best-of-``--repeat``).  Results land in
  ``BENCH_profile.json`` together with the recorded pre-change
  baseline, which is where the PR's before/after claims come from.

``--smoke`` (the CI mode) runs the fingerprint check plus a single
unprofiled sweep timing and **fails only on fingerprint mismatch** —
never on timing, which is noise on shared runners.

Run: ``PYTHONPATH=src python benchmarks/perf/bench_profile.py [--smoke]``
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

import bench_sweep  # noqa: E402  (sibling script, imported for smoke_specs)

from repro.experiments.common import Scale  # noqa: E402
from repro.harness.experiment import ExperimentSettings  # noqa: E402
from repro.harness.parallel import (  # noqa: E402
    PointSpec,
    WorkloadSpec,
    run_point,
    run_points,
)
from repro.verify.fingerprint import fingerprint_result  # noqa: E402
from repro.workloads import YcsbTWorkload  # noqa: E402

FINGERPRINTS_PATH = os.path.join(_HERE, "FINGERPRINTS.json")

#: One representative per system family (ISSUE 3 acceptance: "all four
#: system families").  Small key space forces contention so the digest
#: covers abort/retry/priority paths, not just clean commits.
FINGERPRINT_SYSTEMS = ("2PL+2PC", "TAPIR", "Carousel Basic", "Natto-RECSF")
FINGERPRINT_RATE = 80
FINGERPRINT_KEYS = 600
FINGERPRINT_SCALE = Scale("fp", duration=2.0, trim=0.5, repeats=1, drain=4.0)

#: filename-prefix → subsystem buckets for the cProfile attribution.
SUBSYSTEMS = (
    ("kernel", ("repro/sim/",)),
    ("net", ("repro/net/",)),
    ("raft", ("repro/raft/",)),
    ("system", ("repro/systems/", "repro/core/", "repro/store/")),
    ("workload", ("repro/workloads/",)),
    ("stats", ("repro/txn/", "repro/obs/", "repro/verify/")),
    ("harness", ("repro/harness/", "repro/experiments/")),
)

#: Pre-change numbers, measured on this host at commit 691bb7e (before
#: the protocol-layer fast path) with this same script: subsystem
#: attribution of the profiled smoke sweep and the best-of-3 unprofiled
#: smoke-sweep wall-clock.
#:
#: This box's wall-clock drifts by >40% between sessions (the identical
#: tree has timed anywhere from 3.1 s to 5.5 s), so the load-bearing
#: before/after is the ``same_box`` pair: the pre-PR tree (``git stash``
#: of every change) and the post-PR tree timed back-to-back in one
#: session, best-of-3 each.  That pairing is the PR's speedup claim
#: (4.576 / 2.936 = 1.56x); the earlier ``smoke_sweep_serial_wall_s``
#: numbers were recorded in a faster box state and are kept only for
#: continuity with ``BENCH_sweep.json``.
PRE_PR_BASELINE = {
    "smoke_sweep_serial_wall_s": 3.971,
    "smoke_sweep_serial_wall_s_single_shot": 3.678,
    "same_box_best_of_3": {
        "pre_pr_s": 4.576,
        "post_pr_s": 2.936,
        "speedup": 1.56,
        "method": (
            "pre-PR tree (git stash -u) and post-PR tree timed "
            "back-to-back in one session, 3 runs each, best-of"
        ),
    },
    "profile_by_subsystem_s": {
        "net": 4.592,
        "other": 1.805,
        "kernel": 1.583,
        "raft": 1.406,
        "system": 0.966,
        "workload": 0.137,
        "stats": 0.019,
        "harness": 0.001,
    },
    "profile_total_s": 10.509,
}


def fingerprint_specs() -> list:
    specs = []
    for system in FINGERPRINT_SYSTEMS:
        settings = FINGERPRINT_SCALE.apply(ExperimentSettings()).scaled(
            seed=0
        )
        specs.append(
            PointSpec(
                system=system,
                x=FINGERPRINT_RATE,
                input_rate=float(FINGERPRINT_RATE),
                workload=WorkloadSpec.of(
                    YcsbTWorkload, num_keys=FINGERPRINT_KEYS
                ),
                settings=settings,
                repeats=FINGERPRINT_SCALE.repeats,
            )
        )
    return specs


def compute_fingerprints() -> dict:
    digests = {}
    for spec in fingerprint_specs():
        print(f"fingerprint: {spec.label()} ...", flush=True)
        repeated = run_point(spec)
        digests[str(spec.system)] = fingerprint_result(repeated.results[0])
        print(f"  {digests[str(spec.system)]}")
    return digests


def load_expected() -> dict:
    if not os.path.exists(FINGERPRINTS_PATH):
        return {}
    with open(FINGERPRINTS_PATH) as fh:
        return json.load(fh)


def check_fingerprints(digests: dict) -> list:
    """Names whose digest differs from the recorded expectation."""
    expected = load_expected()
    return [
        name
        for name, digest in digests.items()
        if expected.get(name) not in (None, digest)
    ]


def bucket_for(filename: str) -> str:
    path = filename.replace(os.sep, "/")
    for name, prefixes in SUBSYSTEMS:
        if any(prefix in path for prefix in prefixes):
            return name
    return "other"


def profile_sweep() -> dict:
    """cProfile the serial smoke sweep; attribute tottime by subsystem."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_points(bench_sweep.smoke_specs(), jobs=1)
    profiler.disable()
    stats = pstats.Stats(profiler)
    by_subsystem: dict = {}
    rows = []
    for (filename, lineno, funcname), row in stats.stats.items():
        tottime, cumtime = row[2], row[3]
        bucket = bucket_for(filename)
        by_subsystem[bucket] = by_subsystem.get(bucket, 0.0) + tottime
        rows.append((tottime, cumtime, filename, lineno, funcname))
    rows.sort(reverse=True)
    top = [
        {
            "function": f"{os.path.basename(f)}:{line}({func})",
            "tottime_s": round(tot, 3),
            "cumtime_s": round(cum, 3),
        }
        for tot, cum, f, line, func in rows[:15]
    ]
    total = sum(by_subsystem.values())
    return {
        "total_s": round(total, 3),
        "by_subsystem_s": {
            name: round(seconds, 3)
            for name, seconds in sorted(
                by_subsystem.items(), key=lambda kv: -kv[1]
            )
        },
        "top_functions": top,
    }


def time_sweep(repeat: int) -> dict:
    """Unprofiled serial smoke-sweep wall-clock, best-of-``repeat``."""
    runs = []
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        run_points(bench_sweep.smoke_specs(), jobs=1)
        runs.append(round(time.perf_counter() - started, 3))
        print(f"  smoke sweep serial: {runs[-1]:.2f} s", flush=True)
    return {"serial_wall_s": min(runs), "runs": runs}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: fingerprints + one sweep timing, no profiling; "
             "exit nonzero only on fingerprint mismatch",
    )
    parser.add_argument(
        "--record-fingerprints", action="store_true",
        help="rewrite FINGERPRINTS.json from the current tree",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timing repetitions for best-of (default 3; --smoke uses 1)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_profile.json next to this "
             "script)",
    )
    args = parser.parse_args(argv)

    digests = compute_fingerprints()
    if args.record_fingerprints:
        with open(FINGERPRINTS_PATH, "w") as fh:
            json.dump(digests, fh, indent=2)
            fh.write("\n")
        print(f"recorded {FINGERPRINTS_PATH}")
    mismatched = check_fingerprints(digests)
    expected = load_expected()
    for name in digests:
        status = (
            "MISMATCH" if name in mismatched
            else "ok" if name in expected
            else "unrecorded"
        )
        print(f"fingerprint {name}: {status}")

    report = {
        "fingerprints": digests,
        "fingerprints_match_expected": not mismatched,
        "mismatched": mismatched,
    }

    profile = None
    if not args.smoke:
        print("profiling smoke sweep (serial, cProfile) ...", flush=True)
        profile = profile_sweep()
        report["profile"] = profile
        for name, seconds in profile["by_subsystem_s"].items():
            print(f"  {name:9s} {seconds:8.3f} s")

    print("timing smoke sweep (serial, unprofiled) ...", flush=True)
    timing = time_sweep(1 if args.smoke else args.repeat)
    report["smoke_sweep"] = timing

    report["pre_pr_baseline"] = PRE_PR_BASELINE
    baseline_best = PRE_PR_BASELINE["smoke_sweep_serial_wall_s"]
    baseline_single = PRE_PR_BASELINE["smoke_sweep_serial_wall_s_single_shot"]
    same_box = PRE_PR_BASELINE["same_box_best_of_3"]
    # The controlled comparison (same session, same box state) is the
    # PR's claim; the cross-session ratios below are informational only.
    speedup = {"same_box_best_of_3": same_box["speedup"]}
    if baseline_single:
        speedup["vs_bench_sweep_single_shot"] = round(
            baseline_single / timing["serial_wall_s"], 3
        )
    if baseline_best:
        speedup["vs_pre_pr_best_of"] = round(
            baseline_best / timing["serial_wall_s"], 3
        )
    report["speedup"] = speedup

    out = args.out or os.path.join(_HERE, "BENCH_profile.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if mismatched:
        print(
            f"FAIL: fingerprint mismatch for {', '.join(mismatched)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
