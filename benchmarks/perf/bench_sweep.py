"""Microbenchmark for the sim hot path and the parallel sweep executor.

Times three things and writes ``BENCH_sweep.json`` next to this file
(or to ``--out``):

* **kernel** — raw event throughput of the simulator loop: a
  self-rescheduling timer chain (the ``schedule`` path every protocol
  handler uses), the allocation-free ``post`` path, and a fan-out
  pattern (one event scheduling eight), in events/second.
* **smoke sweep, serial** — a fixed figure-7-style sweep (two systems
  x two input rates, tiny scale) run in-process (``jobs=1``), the
  single-core number the acceptance criterion targets.
* **parallel smoke** — a wider sweep (two systems x four rates, eight
  points) timed serially and at ``--jobs N`` (default all cores).
  ``run_points`` caps the pool at half the point count and at the
  usable-CPU allowance, so on a one-core container the "parallel" leg
  honestly collapses to the serial path instead of paying worker
  startup for nothing; the tables are asserted identical to the serial
  run before timings are reported.

Run: ``PYTHONPATH=src python benchmarks/perf/bench_sweep.py [--jobs N]``

Reference numbers (this host, single core, best-of-6 with one
measurement per process — the box is noisy, so best-of is the only
honest aggregate): the pre-PR kernel's only way to arm an event was
``schedule`` (a Timer allocation per event) and sustained ~1.03M
events/s on the delivery chain; the ``post`` fast path added by this PR
carries the same chain at ~1.8-2.0M events/s, a ~1.8x single-core
improvement on the delivery path against the >=1.5x target.  The
fan-out/cancel shape still allocates Timers (cancellation needs the
handle) and is unchanged (~0.9M events/s both sides); smoke-sweep
wall-clock improves more modestly (~4.6s -> ~4.2s serial) because the
sweep also pays workload, stats, and protocol costs outside the kernel.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments.common import Scale, trace_label
from repro.harness.experiment import ExperimentSettings
from repro.harness.parallel import (
    PointSpec,
    WorkloadSpec,
    default_jobs,
    run_points,
    usable_cpus,
)
from repro.sim.kernel import Simulator
from repro.workloads import YcsbTWorkload

SMOKE_SYSTEMS = ("Carousel Basic", "Natto-RECSF")
SMOKE_RATES = (50, 150)
SMOKE_SCALE = Scale("smoke", duration=4.0, trim=1.0, repeats=1, drain=6.0)

#: The parallel-executor leg needs enough points for workers to
#: amortize startup (>=2 points per worker at --jobs 2 means >=8
#: points before the executor engages at all on a multi-core host).
PARALLEL_RATES = (40, 80, 120, 160)


def bench_kernel_chain(events: int = 400_000) -> float:
    """Events/s for a self-rescheduling timer chain (the schedule path)."""
    sim = Simulator()
    remaining = [events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    started = time.perf_counter()
    sim.run()
    return events / (time.perf_counter() - started)


def bench_kernel_post(events: int = 400_000) -> float:
    """Events/s for the allocation-free ``post`` fast path."""
    sim = Simulator()
    remaining = [events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.post(0.001, tick)

    sim.post(0.001, tick)
    started = time.perf_counter()
    sim.run()
    return events / (time.perf_counter() - started)


def bench_kernel_fanout(rounds: int = 40_000, width: int = 8) -> float:
    """Events/s when each event schedules ``width`` children (cancel-heavy
    protocol shape: one child survives, the rest are cancelled)."""
    sim = Simulator()
    remaining = [rounds]

    def parent():
        timers = [sim.schedule(0.002, noop) for _ in range(width - 1)]
        for timer in timers:
            timer.cancel()
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, parent)

    def noop():
        pass

    sim.schedule(0.001, parent)
    started = time.perf_counter()
    sim.run()
    return rounds * width / (time.perf_counter() - started)


def smoke_specs(rates=SMOKE_RATES) -> list:
    specs = []
    for system in SMOKE_SYSTEMS:
        for rate in rates:
            settings = SMOKE_SCALE.apply(ExperimentSettings()).scaled(
                seed=0, trace_label=trace_label("bench", system, rate)
            )
            specs.append(
                PointSpec(
                    system=system,
                    x=rate,
                    input_rate=float(rate),
                    workload=WorkloadSpec.of(YcsbTWorkload),
                    settings=settings,
                    repeats=SMOKE_SCALE.repeats,
                )
            )
    return specs


def fingerprint(results) -> list:
    return [
        [r.system_name, r.p95_high_ms(), r.p95_low_ms(), r.goodput()]
        for r in results
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="workers for the parallel leg (default: all cores)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_sweep.json next to this script)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs or default_jobs()
    best = lambda bench: max(bench() for _ in range(3))

    print("kernel: timer chain ...", flush=True)
    chain = best(bench_kernel_chain)
    print(f"  {chain:,.0f} events/s")
    print("kernel: post fast path ...", flush=True)
    post = best(bench_kernel_post)
    print(f"  {post:,.0f} events/s")
    print("kernel: fan-out + cancel ...", flush=True)
    fanout = best(bench_kernel_fanout)
    print(f"  {fanout:,.0f} events/s")

    print("smoke sweep: serial (jobs=1) ...", flush=True)
    started = time.perf_counter()
    serial = run_points(smoke_specs(), jobs=1)
    serial_s = time.perf_counter() - started
    print(f"  {serial_s:.2f} s")

    # The parallel leg runs an 8-point sweep: run_points now refuses to
    # hire a worker for fewer than two points (or more workers than the
    # CPU allowance), so a 4-point sweep at --jobs 2 would just measure
    # the serial path twice.
    wide = smoke_specs(PARALLEL_RATES)
    effective = min(jobs, len(wide) // 2, usable_cpus())
    print(f"smoke sweep: {len(wide)} points serial (jobs=1) ...", flush=True)
    started = time.perf_counter()
    wide_serial = run_points(wide, jobs=1)
    wide_serial_s = time.perf_counter() - started
    print(f"  {wide_serial_s:.2f} s")

    print(
        f"smoke sweep: {len(wide)} points parallel "
        f"(jobs={jobs}, effective={max(1, effective)}) ...",
        flush=True,
    )
    started = time.perf_counter()
    parallel = run_points(wide, jobs=jobs)
    parallel_s = time.perf_counter() - started
    print(f"  {parallel_s:.2f} s")

    if fingerprint(wide_serial) != fingerprint(parallel):
        print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
        return 1
    print("parity: serial and parallel sweeps identical")

    report = {
        "kernel_events_per_sec": {
            "timer_chain": round(chain),
            "post_fast_path": round(post),
            "fanout_cancel": round(fanout),
        },
        "smoke_sweep": {
            "points": len(smoke_specs()),
            "serial_wall_s": round(serial_s, 3),
        },
        "parallel_smoke": {
            "points": len(wide),
            "serial_wall_s": round(wide_serial_s, 3),
            "parallel_wall_s": round(parallel_s, 3),
            "jobs_requested": jobs,
            "jobs_effective": max(1, effective),
            "parallel_speedup": round(wide_serial_s / parallel_s, 3),
            "parity": "identical",
        },
        "pre_pr_baseline": {
            # Measured on this host at commit c77d8e5 (before the
            # hot-path work), best-of-6 with one measurement per
            # process.  Pre-PR the only event-arming primitive was
            # ``schedule``, so its chain number IS the old delivery
            # path; deliveries now ride the ``post`` fast path.
            "delivery_chain_events_per_sec": 1_025_000,
            "fanout_cancel_events_per_sec": 905_000,
            "smoke_sweep_serial_wall_s": 4.63,
        },
        "single_core_speedup_vs_baseline": {
            # New delivery path (post) vs old delivery path (schedule).
            "delivery_path": round(post / 1_025_000, 2),
            "timer_chain": round(chain / 1_025_000, 2),
            "smoke_sweep": round(4.63 / serial_s, 2),
        },
    }
    out = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_sweep.json"
    )
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
