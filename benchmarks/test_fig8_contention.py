"""Figure 8: Zipf-coefficient sweep (contention) for YCSB+T and Retwis.

Paper shape at 0.95: Carousel/TAPIR take an order-of-magnitude latency
hit, the 2PL family worse still (queueing), Natto-TS only ~2.5x over
its 0.65 value, and the mechanism ladder (LECSF -> PA -> CP -> RECSF)
monotonically pays off for the high-priority tail.
"""

from repro.experiments import figure8

from benchmarks.conftest import run_once


def test_fig8a_ycsbt(benchmark, bench_scale):
    tables = run_once(benchmark, lambda: figure8.run_ycsbt(scale=bench_scale, zipfs=(0.65, 0.95), systems=("2PL+2PC", "TAPIR", "Carousel Basic", "Natto-TS", "Natto-LECSF", "Natto-PA", "Natto-CP", "Natto-RECSF")))
    for table in tables.values():
        table.print()
    high = tables["high"]

    # Contention hurts the baselines an order of magnitude more than
    # Natto (paper: Carousel/TAPIR >5000 ms, 2PL >25 s, Natto-TS 903 ms).
    assert high.value("Natto-TS", 0.95) < 0.5 * high.value(
        "Carousel Basic", 0.95
    )
    assert high.value("Natto-TS", 0.95) < 0.5 * high.value("TAPIR", 0.95)
    assert high.value("Natto-TS", 0.95) < 0.3 * high.value("2PL+2PC", 0.95)
    # Natto's growth from 0.65 to 0.95 stays within a small factor.
    assert high.value("Natto-TS", 0.95) < 4.0 * high.value("Natto-TS", 0.65)
    # The full mechanism stack beats plain timestamps under contention.
    assert high.value("Natto-RECSF", 0.95) < high.value("Natto-TS", 0.95)


def test_fig8b_retwis(benchmark, bench_scale):
    tables = run_once(benchmark, lambda: figure8.run_retwis(scale=bench_scale, zipfs=(0.65, 0.95), systems=("2PL+2PC", "TAPIR", "Carousel Basic", "Natto-RECSF")))
    for table in tables.values():
        table.print()
    high = tables["high"]
    # Paper at 0.95: Natto-RECSF has ~10x lower latency than TAPIR,
    # Carousel, and 2PL+2PC.
    for baseline in ("TAPIR", "Carousel Basic", "2PL+2PC"):
        assert high.value("Natto-RECSF", 0.95) < 0.5 * high.value(
            baseline, 0.95
        )
