"""Figure 7(e)/(f): SmallBank on the Azure topology.

Paper shape: short transactions (1-2 users), 90% of traffic on 1K hot
accounts; Natto-TS and Natto-RECSF keep the high-priority tail far
below TAPIR and Carousel at 1500+ txn/s, while low-priority latency
stays comparable at the same goodput.
"""

from repro.experiments import figure7

from benchmarks.conftest import run_once

SYSTEMS = ("2PL+2PC(P)", "TAPIR", "Carousel Basic",
           "Natto-TS", "Natto-RECSF")
RATES = (500, 2000)


def test_fig7ef_smallbank(benchmark, bench_scale):
    tables = run_once(
        benchmark,
        lambda: figure7.run_smallbank(scale=bench_scale, systems=SYSTEMS, rates=RATES),
    )
    for table in tables.values():
        table.print()
    high = tables["high"]

    assert high.value("Natto-RECSF", 2000) < 0.5 * high.value("TAPIR", 2000)
    assert high.value("Natto-RECSF", 2000) < 0.5 * high.value(
        "Carousel Basic", 2000
    )
    assert high.value("Natto-TS", 2000) < high.value("Carousel Basic", 2000)

    low = tables["low"]
    # Prioritization does not wreck the low-priority class relative to
    # the non-prioritizing baselines.
    assert low.value("Natto-RECSF", 2000) < 1.5 * low.value(
        "Carousel Basic", 2000
    )
