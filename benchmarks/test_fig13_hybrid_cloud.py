"""Figure 13: hybrid AWS+Azure deployment, Retwis at 1000 txn/s.

Paper shape: both Natto-TS and Natto-RECSF have significantly lower
high-priority tails than every baseline in the noisier cross-provider
network.
"""

from repro.experiments import figure13

from benchmarks.conftest import run_once


def test_fig13_hybrid_cloud(benchmark, bench_scale):
    tables = run_once(benchmark, lambda: figure13.run(scale=bench_scale, systems=("2PL+2PC", "TAPIR", "Carousel Basic", "Natto-TS", "Natto-RECSF")))
    for table in tables.values():
        table.print()
    high = tables["high"]

    for natto in ("Natto-TS", "Natto-RECSF"):
        for baseline in ("2PL+2PC", "TAPIR", "Carousel Basic"):
            assert high.value(natto, "hybrid") < high.value(
                baseline, "hybrid"
            ), (natto, baseline)
