"""Figure 7(a)/(b): YCSB+T, all eleven systems, low vs high input rate.

Shape assertions from the paper:

* at 50 txn/s everyone is in the same ballpark (no contention) and
  Carousel Fast is fastest, the 2PL family slowest (~2x);
* at 350 txn/s Carousel and TAPIR tails blow up while every Natto
  variant keeps the high-priority tail within a few hundred ms;
* Natto's low-priority latency stays comparable to Carousel Basic's.
"""

from repro.experiments import figure7

from benchmarks.conftest import run_once

RATES = (50, 350)


def test_fig7ab_ycsbt(benchmark, bench_scale):
    tables = run_once(
        benchmark,
        lambda: figure7.run_ycsbt(scale=bench_scale, rates=RATES),
    )
    for table in tables.values():
        table.print()
    high = tables["high"]

    # Low rate: little contention, everyone commits in one attempt.
    for fast, slow in [
        ("Carousel Fast", "Carousel Basic"),
        ("Carousel Basic", "2PL+2PC"),
    ]:
        assert high.value(fast, 50) < high.value(slow, 50)
    # Natto-TS ~ Carousel Basic at low rate (timestamp wait is masked).
    assert high.value("Natto-TS", 50) < 1.4 * high.value("Carousel Basic", 50)

    # High rate: the paper's headline — Natto's high-priority tail is a
    # small fraction of Carousel's and TAPIR's.
    for natto in ("Natto-TS", "Natto-LECSF", "Natto-PA", "Natto-CP",
                  "Natto-RECSF"):
        assert high.value(natto, 350) < 0.6 * high.value("Carousel Basic", 350)
        assert high.value(natto, 350) < 0.6 * high.value("TAPIR", 350)
    # Prioritized 2PL beats plain 2PL but not Natto.
    assert high.value("2PL+2PC(P)", 350) < high.value("2PL+2PC", 350) * 1.05
    assert high.value("Natto-RECSF", 350) < high.value("2PL+2PC(P)", 350)
